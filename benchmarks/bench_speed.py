"""Wall-clock benchmark for the evaluation engine's speed layers.

Measures the per-layer and end-to-end gains and writes them to
``BENCH_speed.json`` (the repo's performance trajectory artifact — CI
uploads it from every run):

* **executor** — raw cycle-level simulation throughput (instructions/s)
  under both execution backends: the per-instruction closure interpreter
  (``interp``) and the fused-superblock code generator (``compiled``,
  the default); a deliberately loose timing assertion guards the hot loop
  against catastrophic regression;
* **campaign** — one Monte-Carlo fault campaign measured five ways so each
  speedup layer is attributed separately (each layer timed as the median
  of three runs, so sub-second campaigns don't flap the trend gate):

  1. ``interp`` backend, snapshots off — the PR-2 baseline configuration,
  2. ``compiled`` backend, snapshots off — layer 1 alone,
  3. ``compiled`` + golden-run snapshots, serial scalar loop — layers 1+2,
  4. the same with the batched trial engine (``--batch``: snapshot-bucketed
     groups, shared golden-prefix advance, trace-guided suffixes — the
     default configuration on the compiled backend),
  5. layer 3 sharded over ``--jobs`` workers.

  All five must produce bit-identical outcome counts, fault totals and
  detection latencies (the determinism contract, asserted);
* **sweep** — a multi-point (workload, scheme, issue-width, delay) grid
  through :meth:`Evaluator.sweep`, serial vs parallel, each from a cold
  cache in its own temp dir, asserting the resulting cache files are
  identical.

Run directly::

    python benchmarks/bench_speed.py --jobs 4            # paper-sized
    python benchmarks/bench_speed.py --quick --jobs 2    # CI smoke
    python benchmarks/bench_speed.py --quick --assert-speedup 3

Pool speedups scale with available cores (``effective_cores`` reports the
scheduler-affinity/cgroup-aware count actually available, not the raw
``os.cpu_count``); the compiled-backend and checkpointing speedups do not
need cores at all.  Not a pytest file on purpose — wall-clock A/B needs a
cold cache and a controlled process layout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.eval.experiment import Evaluator
from repro.faults.injector import FaultInjector
from repro.machine.config import MachineConfig
from repro.parallel import (
    SHARD_TRIALS,
    WorkerPool,
    effective_cores,
    resolve_jobs,
)
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload

#: Throughput floor for the (compiled) executor hot loop — observed ~4M
#: insn/s on a 2026 container core; generous headroom keeps this assertion
#: quick, not flaky.
MIN_EXECUTOR_INSN_PER_S = 250_000


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def _median3(fn, reps: int = 3):
    """Run ``fn`` ``reps`` times, return (first result, median elapsed).

    Campaign layers finish in well under a second, so a single-shot timing
    is at the mercy of scheduler noise — enough to flap the bench_trend
    gate.  The median of three is stable without being as flattering as a
    best-of.  Campaigns are deterministic, so every rep returns the same
    result and keeping the first is safe.
    """
    result, first = _time(fn)
    times = sorted([first] + [_time(fn)[1] for _ in range(reps - 1)])
    return result, times[len(times) // 2]


def _parser_casted():
    return compile_program(
        get_workload("parser").program,
        Scheme.CASTED,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
    )


def bench_executor(seconds: float = 1.0) -> dict:
    """Cycle-level simulation throughput, per execution backend."""
    cp = _parser_casted()

    def throughput(backend: str) -> float:
        ex = VLIWExecutor(cp, backend=backend)
        ex.run()  # warm up block fusion / code extraction
        t0 = time.perf_counter()
        insns = 0
        while time.perf_counter() - t0 < seconds:
            insns += ex.run().dyn_instructions
        return insns / (time.perf_counter() - t0)

    interp = throughput("interp")
    compiled = throughput("compiled")
    speedup = compiled / interp if interp > 0 else 0.0
    print(
        f"executor: interp {interp:,.0f} insn/s  "
        f"compiled {compiled:,.0f} insn/s  speedup {speedup:.2f}x"
    )
    assert compiled >= MIN_EXECUTOR_INSN_PER_S, (
        f"executor hot loop regressed: {compiled:,.0f} insn/s is below the "
        f"{MIN_EXECUTOR_INSN_PER_S:,} floor"
    )
    return {
        "insn_per_s": round(compiled),
        "insn_per_s_interp": round(interp),
        "speedup_compiled": round(speedup, 2),
    }


def bench_campaign(trials: int, jobs: int, seed: int = 2013) -> dict:
    """One campaign, measured per speed layer (see module docstring)."""
    cp = _parser_casted()

    def injector(backend: str, snapshots: bool) -> FaultInjector:
        return FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
            backend=backend, snapshots=snapshots,
        )

    baseline_inj = injector("interp", snapshots=False)
    compiled_inj = injector("compiled", snapshots=False)
    full_inj = injector("compiled", snapshots=True)

    baseline, baseline_s = _median3(
        lambda: baseline_inj.run_campaign(trials, seed, jobs=1, batch=False)
    )
    compiled, compiled_s = _median3(
        lambda: compiled_inj.run_campaign(trials, seed, jobs=1, batch=False)
    )
    serial, serial_s = _median3(
        lambda: full_inj.run_campaign(trials, seed, jobs=1, batch=False)
    )
    batched, batched_s = _median3(
        lambda: full_inj.run_campaign(trials, seed, jobs=1, batch=True)
    )
    parallel, parallel_s = _median3(
        lambda: full_inj.run_campaign(trials, seed, jobs=jobs)
    )

    def signature(res):
        return (
            res.counts,
            res.total_faults_injected,
            res.detection_latency_sum,
            res.detections_timed,
        )

    for name, res in (
        ("compiled backend", compiled),
        ("compiled+snapshots", serial),
        ("compiled+snapshots batched", batched),
        (f"compiled+snapshots jobs={jobs}", parallel),
    ):
        assert signature(res) == signature(baseline), (
            f"determinism contract violated: {name} differs from the "
            f"interp/replay baseline: {signature(res)} vs {signature(baseline)}"
        )

    speedup_compiled = baseline_s / compiled_s if compiled_s > 0 else 0.0
    speedup_checkpoint = compiled_s / serial_s if serial_s > 0 else 0.0
    speedup_vs_baseline = baseline_s / serial_s if serial_s > 0 else 0.0
    speedup_batch = serial_s / batched_s if batched_s > 0 else 0.0
    speedup_batch_vs_baseline = baseline_s / batched_s if batched_s > 0 else 0.0
    speedup_pool = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(
        f"campaign: {trials} trials (median of 3 per layer)\n"
        f"  interp, replay-from-zero   {baseline_s:6.2f}s "
        f"({trials / baseline_s:7.1f}/s)  [PR-2 baseline config]\n"
        f"  compiled, replay-from-zero {compiled_s:6.2f}s "
        f"({trials / compiled_s:7.1f}/s)  {speedup_compiled:.2f}x\n"
        f"  compiled + snapshots       {serial_s:6.2f}s "
        f"({trials / serial_s:7.1f}/s)  {speedup_checkpoint:.2f}x more, "
        f"{speedup_vs_baseline:.2f}x total\n"
        f"  + batched trials           {batched_s:6.2f}s "
        f"({trials / batched_s:7.1f}/s)  {speedup_batch:.2f}x more, "
        f"{speedup_batch_vs_baseline:.2f}x total\n"
        f"  + jobs={jobs}                  {parallel_s:6.2f}s "
        f"({trials / parallel_s:7.1f}/s)  {speedup_pool:.2f}x over serial"
    )

    # Pool-warm scale cohort: the parallel layer measured the way real
    # campaigns now run — one persistent WorkerPool reused across reps, at
    # a trial count large enough (>= 4 full task waves per worker) that the
    # adaptive shard grouping has something to amortize.  Comparing against
    # the serial *batched* engine at the same scale isolates what the pool
    # itself buys; ``pool_efficiency`` normalizes by the worker count the
    # scheduler can actually run side by side.
    pool_report: dict = {}
    if jobs >= 2:
        scale_trials = max(trials, jobs * 4 * SHARD_TRIALS)
        scale_serial, scale_serial_s = _median3(
            lambda: full_inj.run_campaign(
                scale_trials, seed, jobs=1, batch=True
            )
        )
        with WorkerPool(jobs) as pool:
            warm = full_inj.run_campaign(scale_trials, seed, jobs=jobs)
            scale_parallel, scale_parallel_s = _median3(
                lambda: full_inj.run_campaign(scale_trials, seed, jobs=jobs)
            )
            spawns, reuses = pool.spawns, pool.reuses
        assert signature(warm) == signature(scale_parallel) == signature(
            scale_serial
        ), (
            "determinism contract violated: pool-warm campaign differs from "
            "the serial batched campaign at the same scale"
        )
        assert spawns == 1, (
            f"persistent pool regressed: {spawns} worker-pool spawns across "
            f"4 campaign runs (expected exactly 1)"
        )
        speedup_warm = (
            scale_serial_s / scale_parallel_s if scale_parallel_s > 0 else 0.0
        )
        workers = min(jobs, effective_cores())
        pool_efficiency = speedup_warm / workers
        print(
            f"  pool-warm, {scale_trials} trials  "
            f"serial {scale_serial_s:6.2f}s  jobs={jobs} "
            f"{scale_parallel_s:6.2f}s  {speedup_warm:.2f}x "
            f"({pool_efficiency:.0%} of {workers} workers; "
            f"spawns={spawns} reuses={reuses})"
        )
        pool_report = {
            "scale_trials": scale_trials,
            "scale_serial_s": round(scale_serial_s, 3),
            "scale_parallel_s": round(scale_parallel_s, 3),
            "speedup_warm": round(speedup_warm, 2),
            "pool_efficiency": round(pool_efficiency, 2),
            "pool_spawns": spawns,
            "pool_reuses": reuses,
        }

    return {
        "workload": "parser",
        "scheme": "casted",
        "trials": trials,
        "shard_trials": SHARD_TRIALS,
        "timing": "median-of-3",
        "interp_serial_s": round(baseline_s, 3),
        "compiled_serial_s": round(compiled_s, 3),
        "serial_s": round(serial_s, 3),
        "batched_serial_s": round(batched_s, 3),
        "parallel_s": round(parallel_s, 3),
        "trials_per_s_serial": round(trials / serial_s, 1),
        "trials_per_s_serial_batched": round(trials / batched_s, 1),
        "trials_per_s_parallel": round(trials / parallel_s, 1),
        "speedup_compiled": round(speedup_compiled, 2),
        "speedup_checkpoint": round(speedup_checkpoint, 2),
        "speedup_vs_baseline": round(speedup_vs_baseline, 2),
        "speedup_batch": round(speedup_batch, 2),
        "speedup_batch_vs_baseline": round(speedup_batch_vs_baseline, 2),
        "speedup": round(speedup_pool, 2),
        "deterministic": True,
        **pool_report,
    }


def bench_sweep(points: list[tuple], trials: int, jobs: int, seed: int = 2013) -> dict:
    """A multi-point grid through Evaluator.sweep, cold cache each way."""

    def run(n_jobs: int, cache_dir: str) -> tuple[float, dict]:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        ev = Evaluator(seed=seed, cache=True)
        _, elapsed = _time(lambda: ev.sweep(points, trials=trials, jobs=n_jobs))
        files = {
            p.name: p.read_text() for p in Path(cache_dir).glob("*.json")
        }
        return elapsed, files

    saved = os.environ.get("REPRO_CACHE_DIR")
    try:
        with tempfile.TemporaryDirectory() as d1, tempfile.TemporaryDirectory() as d2:
            serial_s, serial_files = run(1, d1)
            parallel_s, parallel_files = run(jobs, d2)
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
    assert serial_files == parallel_files, (
        "determinism contract violated: serial and parallel sweeps produced "
        "different cache files"
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(
        f"sweep: {len(points)} points x {trials} trials  "
        f"serial {serial_s:.2f}s  jobs={jobs} {parallel_s:.2f}s  "
        f"speedup {speedup:.2f}x"
    )
    return {
        "points": len(points),
        "trials": trials,
        "cache_files": len(serial_files),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "deterministic": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel worker count (default 0 = all cores)",
    )
    parser.add_argument(
        "--trials", type=int, default=300,
        help="campaign trials (default 300, the paper's count)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: tiny trial count and a 2-point grid",
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None, metavar="X",
        help="fail unless the default campaign configuration (compiled + "
        "snapshots, serial) is at least X times faster than the interp/"
        "replay baseline",
    )
    parser.add_argument(
        "--assert-batch-speedup", type=float, default=None, metavar="X",
        help="fail unless the batched engine is at least X times faster "
        "than the interp/replay baseline (serial, same campaign)",
    )
    parser.add_argument(
        "--assert-pool-efficiency", type=float, default=None, metavar="F",
        help="fail unless the pool-warm campaign reaches at least F x "
        "min(jobs, cores) speedup over the serial batched engine; only "
        "enforced when the parallel timings are meaningful (>= 4 effective "
        "cores, >= 4 jobs, no oversubscription) — skipped with a note "
        "otherwise",
    )
    parser.add_argument(
        "--out", default="BENCH_speed.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    cores = effective_cores()
    # Pool speedup is only a meaningful measurement when the scheduler can
    # actually run workers side by side.  With fewer effective cores than
    # workers the "parallel" numbers measure oversubscription overhead, not
    # parallelism — record them, but say so loudly and mark the report so
    # downstream gates (benchmarks/bench_trend.py) skip the speedup floor.
    parallel_meaningful = jobs >= 2 and cores >= jobs
    if jobs >= 2 and cores < jobs:
        print(
            "=" * 72
            + f"\nWARNING: --jobs {jobs} but only {cores} effective core(s)"
            " (affinity/cgroup-aware).\n"
            "Parallel timings below measure pool overhead under"
            " oversubscription,\nNOT parallel speedup.  They are recorded"
            " with parallel_meaningful=false\nand excluded from"
            " parallel-speedup regression gating.\n"
            + "=" * 72,
            file=sys.stderr,
        )
    trials = 2 * SHARD_TRIALS if args.quick else args.trials
    if args.quick:
        points = [("mcf", Scheme.CASTED, 2, 1), ("mcf", Scheme.SCED, 2, 1)]
        sweep_trials = SHARD_TRIALS
    else:
        points = [
            (w, s, iw, 1)
            for w in ("parser", "mcf")
            for s in (Scheme.NOED, Scheme.SCED, Scheme.CASTED)
            for iw in (1, 2)
        ]
        sweep_trials = trials

    report = {
        "bench": "speed",
        "quick": args.quick,
        "jobs": jobs,
        "effective_cores": cores,
        "parallel_meaningful": parallel_meaningful,
        "python": sys.version.split()[0],
        "executor": bench_executor(),
        "campaign": bench_campaign(trials, jobs),
        "sweep": bench_sweep(points, sweep_trials, jobs),
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if args.assert_speedup is not None:
        got = report["campaign"]["speedup_vs_baseline"]
        assert got >= args.assert_speedup, (
            f"campaign speedup regressed: compiled+snapshots is only {got}x "
            f"the interp/replay baseline (required >= {args.assert_speedup}x)"
        )
        print(f"speedup gate passed: {got}x >= {args.assert_speedup}x")

    if args.assert_batch_speedup is not None:
        got = report["campaign"]["speedup_batch_vs_baseline"]
        assert got >= args.assert_batch_speedup, (
            f"batched speedup regressed: batched campaigns are only {got}x "
            f"the interp/replay baseline "
            f"(required >= {args.assert_batch_speedup}x)"
        )
        print(
            f"batched speedup gate passed: {got}x >= "
            f"{args.assert_batch_speedup}x"
        )

    if args.assert_pool_efficiency is not None:
        if parallel_meaningful and cores >= 4 and jobs >= 4:
            got = report["campaign"]["pool_efficiency"]
            assert got >= args.assert_pool_efficiency, (
                f"parallel efficiency regressed: the pool-warm campaign "
                f"reaches only {got:.0%} of {min(jobs, cores)} workers "
                f"(required >= {args.assert_pool_efficiency:.0%})"
            )
            print(
                f"pool efficiency gate passed: {got:.0%} >= "
                f"{args.assert_pool_efficiency:.0%}"
            )
        else:
            print(
                "note: pool-efficiency gate skipped "
                f"(jobs={jobs}, effective_cores={cores}; needs >= 4 of "
                "each without oversubscription)",
                file=sys.stderr,
            )

    if not parallel_meaningful:
        print(
            "note: parallel-speedup checks skipped "
            f"(jobs={jobs}, effective_cores={cores})",
            file=sys.stderr,
        )
    elif cores >= 4 and jobs >= 4 and not args.quick:
        for section in ("campaign", "sweep"):
            if report[section]["speedup"] < 2.0:
                print(
                    f"warning: {section} speedup "
                    f"{report[section]['speedup']}x < 2x on a "
                    f"{cores}-core machine",
                    file=sys.stderr,
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
