"""Serial-vs-parallel wall-clock benchmark for the evaluation engine.

Measures three things and writes them to ``BENCH_speed.json`` (the repo's
performance trajectory artifact — CI uploads it from every run):

* **executor** — raw cycle-level simulation throughput (instructions/s),
  with a deliberately loose timing assertion guarding the hot-loop
  micro-optimisations against catastrophic regression (an 8x margin, so
  slow CI machines never flake);
* **campaign** — one Monte-Carlo fault campaign, serial (``jobs=1``) vs
  sharded over a process pool (``--jobs``), asserting the outcome counts
  are bit-identical (the determinism contract) and reporting trials/s;
* **sweep** — a multi-point (workload, scheme, issue-width, delay) grid
  through :meth:`Evaluator.sweep`, serial vs parallel, each from a cold
  cache in its own temp dir, asserting the resulting cache files are
  identical.

Run directly::

    python benchmarks/bench_speed.py --jobs 4            # paper-sized
    python benchmarks/bench_speed.py --quick --jobs 2    # CI smoke

Speedups scale with available cores: on a single-core box the pool adds
overhead and the report simply records that (``effective_cores`` says what
the machine offered).  Not a pytest file on purpose — wall-clock A/B needs
a cold cache and a controlled process layout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.eval.experiment import Evaluator
from repro.faults.injector import FaultInjector
from repro.machine.config import MachineConfig
from repro.parallel import SHARD_TRIALS, resolve_jobs
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload

#: Throughput floor for the executor hot loop (observed ~2M insn/s on a
#: 2026 container core; 8x headroom keeps this assertion quick, not flaky).
MIN_EXECUTOR_INSN_PER_S = 250_000


def _time(fn):
    t0 = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - t0


def bench_executor(seconds: float = 1.0) -> dict:
    """Cycle-level simulation throughput on a protected workload."""
    cp = compile_program(
        get_workload("parser").program,
        Scheme.CASTED,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
    )
    ex = VLIWExecutor(cp)
    ex.run()  # warm up block-code extraction
    t0 = time.perf_counter()
    runs = 0
    insns = 0
    while time.perf_counter() - t0 < seconds:
        result = ex.run()
        runs += 1
        insns += result.dyn_instructions
    elapsed = time.perf_counter() - t0
    insn_per_s = insns / elapsed
    print(f"executor: {runs} runs, {insn_per_s:,.0f} insn/s")
    assert insn_per_s >= MIN_EXECUTOR_INSN_PER_S, (
        f"executor hot loop regressed: {insn_per_s:,.0f} insn/s is below the "
        f"{MIN_EXECUTOR_INSN_PER_S:,} floor"
    )
    return {"runs": runs, "insn_per_s": round(insn_per_s)}


def bench_campaign(trials: int, jobs: int, seed: int = 2013) -> dict:
    """One campaign, serial vs sharded over ``jobs`` workers."""
    cp = compile_program(
        get_workload("parser").program,
        Scheme.CASTED,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
    )
    injector = FaultInjector(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
    )
    serial, serial_s = _time(lambda: injector.run_campaign(trials, seed, jobs=1))
    parallel, parallel_s = _time(
        lambda: injector.run_campaign(trials, seed, jobs=jobs)
    )
    assert serial.counts == parallel.counts, (
        "determinism contract violated: jobs=1 and "
        f"jobs={jobs} outcome counts differ: {serial.counts} vs {parallel.counts}"
    )
    assert serial.total_faults_injected == parallel.total_faults_injected
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(
        f"campaign: {trials} trials  serial {serial_s:.2f}s "
        f"({trials / serial_s:.1f}/s)  jobs={jobs} {parallel_s:.2f}s "
        f"({trials / parallel_s:.1f}/s)  speedup {speedup:.2f}x"
    )
    return {
        "workload": "parser",
        "scheme": "casted",
        "trials": trials,
        "shard_trials": SHARD_TRIALS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "trials_per_s_serial": round(trials / serial_s, 1),
        "trials_per_s_parallel": round(trials / parallel_s, 1),
        "speedup": round(speedup, 2),
        "deterministic": True,
    }


def bench_sweep(points: list[tuple], trials: int, jobs: int, seed: int = 2013) -> dict:
    """A multi-point grid through Evaluator.sweep, cold cache each way."""

    def run(n_jobs: int, cache_dir: str) -> tuple[float, dict]:
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        ev = Evaluator(seed=seed, cache=True)
        _, elapsed = _time(lambda: ev.sweep(points, trials=trials, jobs=n_jobs))
        files = {
            p.name: p.read_text() for p in Path(cache_dir).glob("*.json")
        }
        return elapsed, files

    saved = os.environ.get("REPRO_CACHE_DIR")
    try:
        with tempfile.TemporaryDirectory() as d1, tempfile.TemporaryDirectory() as d2:
            serial_s, serial_files = run(1, d1)
            parallel_s, parallel_files = run(jobs, d2)
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = saved
    assert serial_files == parallel_files, (
        "determinism contract violated: serial and parallel sweeps produced "
        "different cache files"
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else 0.0
    print(
        f"sweep: {len(points)} points x {trials} trials  "
        f"serial {serial_s:.2f}s  jobs={jobs} {parallel_s:.2f}s  "
        f"speedup {speedup:.2f}x"
    )
    return {
        "points": len(points),
        "trials": trials,
        "cache_files": len(serial_files),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "deterministic": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=0,
        help="parallel worker count (default 0 = all cores)",
    )
    parser.add_argument(
        "--trials", type=int, default=300,
        help="campaign trials (default 300, the paper's count)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: tiny trial count and a 2-point grid",
    )
    parser.add_argument(
        "--out", default="BENCH_speed.json", help="output JSON path"
    )
    args = parser.parse_args(argv)

    jobs = resolve_jobs(args.jobs)
    trials = 2 * SHARD_TRIALS if args.quick else args.trials
    if args.quick:
        points = [("mcf", Scheme.CASTED, 2, 1), ("mcf", Scheme.SCED, 2, 1)]
        sweep_trials = SHARD_TRIALS
    else:
        points = [
            (w, s, iw, 1)
            for w in ("parser", "mcf")
            for s in (Scheme.NOED, Scheme.SCED, Scheme.CASTED)
            for iw in (1, 2)
        ]
        sweep_trials = trials

    report = {
        "bench": "speed",
        "quick": args.quick,
        "jobs": jobs,
        "effective_cores": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "executor": bench_executor(),
        "campaign": bench_campaign(trials, jobs),
        "sweep": bench_sweep(points, sweep_trials, jobs),
    }
    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {out}")

    if report["effective_cores"] >= 4 and jobs >= 4 and not args.quick:
        for section in ("campaign", "sweep"):
            if report[section]["speedup"] < 2.0:
                print(
                    f"warning: {section} speedup "
                    f"{report[section]['speedup']}x < 2x on a "
                    f"{report['effective_cores']}-core machine",
                    file=sys.stderr,
                )
    return 0


if __name__ == "__main__":
    sys.exit(main())
