"""Table II — benchmark programs, plus per-workload baseline statistics."""

from repro.eval.tables import render_table2
from repro.ir.interp import Interpreter
from repro.utils.tables import format_table
from repro.workloads import all_workloads


def test_table2_render(benchmark, save_result):
    text = benchmark(render_table2)
    save_result("table2_workloads", text)
    assert "cjpeg" in text


def test_workload_profile(benchmark, save_result):
    """Dynamic instruction counts and output sizes of every workload."""

    def profile():
        rows = []
        for w in all_workloads():
            r = Interpreter(w.program).run()
            rows.append(
                [
                    w.name,
                    w.program.main.instruction_count(),
                    r.dyn_instructions,
                    len(r.output),
                    r.exit_code,
                ]
            )
        return rows

    rows = benchmark.pedantic(profile, rounds=1, iterations=1)
    text = format_table(
        ["workload", "static instrs", "dynamic instrs", "outputs", "exit"],
        rows,
        title="Workload baseline profile (NOED, front-end IR)",
    )
    save_result("table2_profile", text)
    assert all(row[4] == 0 for row in rows)


def test_workload_instruction_mix(benchmark, save_result):
    """Dynamic operation-mix characterization (backs the Table II traits)."""
    from repro.eval.mixstats import dynamic_mix, render_mix_table

    def compute():
        return [dynamic_mix(w.program, w.name) for w in all_workloads()]

    profiles = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result("table2_mix", render_mix_table(profiles))
    by_name = {p.name: p for p in profiles}
    # the traits the paper's analysis leans on
    assert by_name["h263enc"].branch_density > by_name["h263dec"].branch_density
    assert by_name["cjpeg"].fraction("mul") > by_name["parser"].fraction("mul")
    assert by_name["mcf"].memory_density > 0.1
