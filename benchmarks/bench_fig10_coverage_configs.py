"""Figure 10 — h263dec fault coverage across the full configuration grid:
reliability must be architecture-independent."""

from benchmarks.conftest import TRIALS
from repro.eval.figures import render_fig10
from repro.utils.stats import confidence_interval_95  # noqa: F401 (kept for interactive use)

#: Fig. 10 sweeps 16 configurations x 4 schemes; to keep the default run
#: tractable we use the grid corners + center (the paper's conclusion is
#: flatness, which corners demonstrate); set the full grid via the constant.
CONFIG_GRID = ((1, 1), (1, 4), (2, 2), (4, 1), (4, 4))


def test_fig10_coverage_stability(benchmark, ev, save_result):
    def compute():
        from repro.pipeline import Scheme

        data = {}
        for s in (Scheme.NOED, Scheme.SCED, Scheme.DCED, Scheme.CASTED):
            data[s.value] = {}
            for iw, d in CONFIG_GRID:
                rec = ev.coverage("h263dec", s, iw, d, TRIALS)
                data[s.value][(iw, d)] = dict(rec.fractions)
        return data

    data = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "fig10_coverage_configs",
        render_fig10(data)
        + f"\n({TRIALS} trials per campaign over {len(CONFIG_GRID)} configs)",
    )

    # The paper's claim: coverage is not affected by the configuration —
    # the variation is Monte-Carlo noise.  We test it properly: no pair of
    # configurations of the same scheme may differ significantly (95%
    # two-proportion z-test).
    from itertools import combinations

    from repro.utils.stats import two_proportion_z

    for scheme in ("sced", "dced", "casted"):
        counts = [
            round((1.0 - fr["data-corrupt"] - fr["timeout"]) * TRIALS)
            for fr in data[scheme].values()
        ]
        pairs = list(combinations(counts, 2))
        # Bonferroni-corrected family-wise threshold (3 schemes x all pairs
        # at family alpha = 0.05): a |z| below this is multiple-comparison
        # noise, not a real coverage difference.
        from scipy.stats import norm

        n_tests = 3 * len(pairs)
        z_threshold = float(norm.ppf(1 - 0.025 / n_tests))
        for a, b in pairs:
            z, _ = two_proportion_z(a, TRIALS, b, TRIALS)
            assert abs(z) < z_threshold, (scheme, a, b, z)
        # and detection works everywhere
        assert all(fr["detected"] > 0.2 for fr in data[scheme].values())
