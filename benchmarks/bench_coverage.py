"""Differential soundness gate: static coverage verdicts vs measured trials.

For every workload x scheme cell (issue 2 / delay 2) and every registered
fault model, the static prover classifies each fault site
(detected / masked / sdc-possible) and the gate then runs attributed
single-fault trials: each sampled fault is mapped back to its static site
(:meth:`FaultInjector.site_of`) and its measured outcome checked against
the verdict's admissible set.  A single inadmissible outcome — a measured
detection on a statically-masked site, or a measured silent corruption on
a statically-detected site — fails the gate: the prover, a scheme pass,
or the injector is lying.

The gate also asserts the headline accuracy criterion: for the protected
schemes (SCED/DCED/CASTED) the weighted static coverage under the paper's
``reg-bit`` model must land within 10 percentage points of the measured
coverage over the attributed trials.  ``results/coverage_report.md`` gets
the per-cell static-vs-measured table.

``REPRO_TRIALS`` sizes the ``reg-bit`` trial budget per cell (default
120); ``REPRO_XVAL_TRIALS`` sizes the soundness-only budget for the other
models (default 30).
"""

from __future__ import annotations

import os

from benchmarks.conftest import RESULTS_DIR, TRIALS
from repro.analysis.coverage import cross_validate, prove_compiled
from repro.errors import SimError
from repro.faults.injector import FaultInjector
from repro.faults.models import fault_model_names
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program

#: Attributed trials per cell for the non-default models (soundness only).
SOUND_TRIALS = int(os.environ.get("REPRO_XVAL_TRIALS", "30"))

#: Protected schemes held to the 10-point static-vs-measured criterion.
ACCURACY_SCHEMES = (Scheme.SCED, Scheme.DCED, Scheme.CASTED)

#: |static - measured| bound for the protected schemes under reg-bit.
ACCURACY_POINTS = 0.10


def test_coverage_gate(benchmark, workloads):
    from repro.workloads import get_workload

    machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
    models = fault_model_names()

    def run():
        cells = []
        for w in workloads:
            program = get_workload(w).program
            for scheme in Scheme:
                compiled = compile_program(program, scheme, machine)
                for model in models:
                    try:
                        inj = FaultInjector(
                            compiled.program,
                            compiled.mem_words,
                            compiled.frame_words,
                            fault_model=model,
                        )
                    except SimError:
                        # e.g. a branch-free program under the cf model.
                        continue
                    report = prove_compiled(
                        compiled,
                        fault_models=[model],
                        weights=inj.visit_counts(),
                    )
                    proof = report.proofs[model]
                    n = TRIALS if model == "reg-bit" else SOUND_TRIALS
                    val = cross_validate(inj, proof, n_trials=n, seed=2013)
                    cells.append((w, scheme, model, proof, val))
        return cells

    cells = benchmark.pedantic(run, rounds=1, iterations=1)

    # -- gate 1: soundness — every measured outcome admissible ---------------
    violations = [
        (w, scheme.value, model, str(v))
        for (w, scheme, model, _proof, val) in cells
        for v in val.violations
    ]
    assert violations == [], violations

    # -- gate 2: accuracy — static within 10 points of measured --------------
    accuracy_rows = []
    for w, scheme, model, proof, val in cells:
        if model != "reg-bit" or scheme not in ACCURACY_SCHEMES:
            continue
        gap = abs(proof.static_coverage - val.measured_coverage)
        accuracy_rows.append((w, scheme.value, gap))
        assert gap <= ACCURACY_POINTS, (
            w,
            scheme.value,
            f"static {proof.static_coverage:.3f}",
            f"measured {val.measured_coverage:.3f}",
        )
    assert len(accuracy_rows) == len(workloads) * len(ACCURACY_SCHEMES)

    # -- report --------------------------------------------------------------
    lines = [
        "# Static coverage vs measured campaigns",
        "",
        "Per-site detectability verdicts from the static prover",
        "(`repro prove`) cross-validated against attributed single-fault",
        f"trials, issue 2 / delay 2, {TRIALS} reg-bit trials per cell",
        f"({SOUND_TRIALS} for the other fault models). Every measured",
        "outcome fell inside its site's admissible set — **zero soundness",
        "violations** across the full matrix.",
        "",
        "`static` is the visit-weighted fraction of fault sites proven",
        "detected or masked (a lower bound on coverage); `measured` is",
        "`1 - SDC - timeout` over the attributed trials.",
        "",
        "| workload | scheme | detected | masked | sdc-possible | static | measured | gap |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for w, scheme, model, proof, val in cells:
        if model != "reg-bit":
            continue
        counts = proof.counts()
        gap = proof.static_coverage - val.measured_coverage
        lines.append(
            f"| {w} | {scheme.value} | {counts['detected']} "
            f"| {counts['masked']} | {counts['sdc-possible']} "
            f"| {proof.static_coverage:.3f} | {val.measured_coverage:.3f} "
            f"| {gap:+.3f} |"
        )

    lines += [
        "",
        "## Per-scheme summary (reg-bit)",
        "",
        "| scheme | mean static | mean measured | max |gap| | sound cells |",
        "|---|---|---|---|---|",
    ]
    for scheme in Scheme:
        sel = [
            (proof, val)
            for w, s, model, proof, val in cells
            if s is scheme and model == "reg-bit"
        ]
        stat = sum(p.static_coverage for p, _ in sel) / len(sel)
        meas = sum(v.measured_coverage for _, v in sel) / len(sel)
        worst = max(
            abs(p.static_coverage - v.measured_coverage) for p, v in sel
        )
        lines.append(
            f"| {scheme.value} | {stat:.3f} | {meas:.3f} | {worst:.3f} "
            f"| {len(sel)}/{len(sel)} |"
        )

    n_models = len({model for _w, _s, model, _p, _v in cells})
    lines += [
        "",
        f"Soundness checked for {n_models} fault models over "
        f"{len(cells)} (workload, scheme, model) cells; the non-register",
        "models (`cf`, `mem`) are statically all-exposed (no control-flow",
        "signatures, no ECC), so every outcome is admissible by",
        "construction and the gate exercises the attribution machinery.",
        "",
    ]
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "coverage_report.md"
    out.write_text("\n".join(lines))
    print(f"\n[saved to results/coverage_report.md] {len(cells)} cells sound")
