"""Figures 6 + 7 — slowdown vs NOED for every benchmark over the full
(issue width 1-4) x (inter-cluster delay 1-4) grid, plus the §IV-B summary
statistics the paper quotes in prose."""

from benchmarks.conftest import JOBS
from repro.eval.figures import fig6_7_data, render_fig6_7
from repro.eval.metrics import (
    casted_vs_best_fixed,
    overall_reduction_vs,
    summarize_scheme_slowdowns,
)
from repro.pipeline import Scheme
from repro.utils.tables import format_table


def test_fig6_7_full_grid(benchmark, ev, workloads, save_result):
    # Prewarm the perf cache over the whole grid, in parallel when
    # REPRO_JOBS allows — the figure code below then only reads the memo.
    points = [
        (w, s, iw, d)
        for w in workloads
        for s in Scheme
        for iw in (1, 2, 3, 4)
        for d in (1, 2, 3, 4)
    ]
    ev.sweep(points, jobs=JOBS)
    data = benchmark.pedantic(
        lambda: fig6_7_data(ev, workloads), rounds=1, iterations=1
    )
    save_result("fig6_7_performance", render_fig6_7(data))

    # Paper shapes, asserted over the full grid:
    for w in workloads:
        sced_by_delay = [data[w][d]["sced"] for d in (1, 2, 3, 4)]
        # SCED is delay-independent
        assert all(row == sced_by_delay[0] for row in sced_by_delay), w
        # DCED slowdown grows with delay at every issue width
        for iw_idx in range(4):
            dced = [data[w][d]["dced"][iw_idx] for d in (1, 2, 3, 4)]
            assert dced[-1] >= dced[0] - 1e-9, (w, iw_idx)


def test_crossover_analysis(benchmark, ev, workloads, save_result):
    """The §II-B/§IV-B5 story in one grid per workload: who wins where,
    and whether CASTED tracks the winner."""
    from repro.eval.crossover import (
        crossover_map,
        render_crossover_grid,
        summarize_crossovers,
    )

    def compute():
        grids = [render_crossover_grid(crossover_map(ev, w)) for w in workloads]
        return grids, summarize_crossovers(ev, workloads)

    grids, summary = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result("fig6_7_crossover", "\n\n".join(grids) + "\n\n" + summary)

    # at least one benchmark must exhibit a genuine crossover
    assert any(
        crossover_map(ev, w).has_crossover for w in workloads
    )


def test_summary_statistics(benchmark, ev, workloads, save_result):
    def compute():
        rows = []
        for scheme in (Scheme.SCED, Scheme.DCED, Scheme.CASTED):
            s = summarize_scheme_slowdowns(ev, workloads, scheme)
            rows.append(
                [
                    scheme.name,
                    f"{s.stats.minimum:.2f}",
                    f"{s.stats.maximum:.2f}",
                    f"{s.stats.mean:.2f}",
                    f"{s.stats.geomean:.2f}",
                ]
            )
        comp = casted_vs_best_fixed(ev, workloads)
        red_sced = overall_reduction_vs(ev, workloads, Scheme.SCED)
        red_dced = overall_reduction_vs(ev, workloads, Scheme.DCED)
        return rows, comp, red_sced, red_dced

    rows, comp, red_sced, red_dced = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )
    table = format_table(
        ["scheme", "min", "max", "mean", "geomean"],
        rows,
        title="Slowdown vs NOED over the full grid "
        "(paper: SCED 1.34-2.22 avg 1.7; DCED 1.31-3.32 avg 2.1; "
        "CASTED 1.19-2.1 avg 1.58)",
    )
    extra = (
        f"\nCASTED vs best fixed: beats {len(comp['beats'])}, matches "
        f"{comp['matches']}, loses {len(comp['losses'])} of {comp['points']} "
        f"configs; max gain {comp['max_gain'] * 100:.1f}% "
        f"(paper: up to 21.2%)\n"
        f"Average reduction vs SCED: {red_sced * 100:.1f}% (paper 7.5%); "
        f"vs DCED: {red_dced * 100:.1f}% (paper 24.7%)"
    )
    save_result("fig6_7_summary", table + extra)

    sced_mean = float(rows[0][3])
    dced_mean = float(rows[1][3])
    casted_mean = float(rows[2][3])
    assert casted_mean < sced_mean < dced_mean  # the paper's ordering
    assert comp["max_gain"] > 0.0
    assert red_sced > 0 and red_dced > 0
