"""Table III — compiler-based error-detection schemes (qualitative), plus a
quantitative companion comparing our three implemented placements."""

from repro.eval.tables import render_table3
from repro.pipeline import Scheme
from repro.utils.tables import format_table


def test_table3_render(benchmark, save_result):
    text = benchmark(render_table3)
    save_result("table3_schemes", text)
    assert "CASTED" in text and "adaptive" in text


def test_table3_quantitative_companion(benchmark, ev, workloads, save_result):
    """Static code placement of each implemented scheme on one config."""

    def compute():
        rows = []
        for scheme in (Scheme.SCED, Scheme.DCED, Scheme.CASTED):
            cl0 = cl1 = 0
            growth = []
            for w in workloads:
                cp = ev.compiled(w, scheme, 2, 2)
                cl0 += cp.stats.per_cluster_instructions.get(0, 0)
                cl1 += cp.stats.per_cluster_instructions.get(1, 0)
                growth.append(cp.stats.code_growth)
            rows.append(
                [
                    scheme.name,
                    cl0,
                    cl1,
                    f"{cl1 / (cl0 + cl1) * 100:.0f}%",
                    f"{sum(growth) / len(growth):.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    text = format_table(
        ["scheme", "cluster0 instrs", "cluster1 instrs", "on cl1", "code growth"],
        rows,
        title="Code placement at issue 2 / delay 2 (all workloads)",
    )
    save_result("table3_placement", text)

    by_name = {r[0]: r for r in rows}
    assert by_name["SCED"][2] == 0  # everything on cluster 0
    assert by_name["DCED"][2] > 0  # fixed redundant split
    assert 0 < by_name["CASTED"][2]  # adaptive: uses both
