"""Extension experiments beyond the paper's evaluation.

1. **Core-count scaling** — the paper claims CASTED "optimizes for a wide
   range of core counts" but evaluates 2 clusters; we sweep 2-4.
2. **Detection-triggered recovery** — restart-on-detection turns the
   coverage numbers into availability numbers (transient faults do not
   repeat, so every detected trial completes correctly on re-execution).
"""

from benchmarks.conftest import TRIALS
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.recovery import run_recovery_campaign
from repro.sim.executor import VLIWExecutor
from repro.utils.tables import format_table
from repro.workloads import get_workload

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=2)


def test_extension_cluster_scaling(benchmark, save_result):
    def compute():
        rows = []
        for w in ("h263enc", "mcf"):
            prog = get_workload(w).program
            base = None
            for n in (2, 3, 4):
                machine = MachineConfig(
                    n_clusters=n, issue_width=1, inter_cluster_delay=1
                )
                cp = compile_program(prog, Scheme.CASTED, machine)
                cycles = VLIWExecutor(cp).run().cycles
                if base is None:
                    base = cycles
                used = len(
                    {i.cluster for _, _, i in cp.program.main.all_instructions()}
                )
                rows.append([f"{w} x{n}", cycles, f"{base / cycles:.3f}", used])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "extension_cluster_scaling",
        format_table(
            ["workload x clusters", "cycles", "speedup vs 2", "clusters used"],
            rows,
            title="Extension: CASTED core-count scaling (issue 1, delay 1)",
        )
        + "\nOne redundant stream saturates ~2 clusters; gains beyond that "
        "come only from spreading original code and checks.",
    )
    # extra clusters must never cost more than greedy noise
    for i in range(0, len(rows), 3):
        base = rows[i][1]
        assert all(r[1] <= base * 1.05 for r in rows[i : i + 3])


def test_extension_profile_guided(benchmark, save_result):
    """Profile-guided CASTED weighting vs the static loop-depth heuristic."""
    from repro.pipeline import collect_block_profile

    def compute():
        rows = []
        for w in ("parser", "mpeg2dec", "vpr"):
            prog = get_workload(w).program
            profile = collect_block_profile(prog)
            for iw, d in ((1, 1), (1, 3), (2, 2)):
                machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
                heur = VLIWExecutor(
                    compile_program(prog, Scheme.CASTED, machine)
                ).run().cycles
                pgo = VLIWExecutor(
                    compile_program(
                        prog, Scheme.CASTED, machine, block_profile=profile
                    )
                ).run().cycles
                rows.append(
                    [f"{w} iw{iw} d{d}", heur, pgo,
                     f"{(heur - pgo) / heur * 100:+.1f}%"]
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "extension_profile_guided",
        format_table(
            ["config", "heuristic (cycles)", "profile-guided", "gain"],
            rows,
            title="Extension: profile-guided CASTED block weighting",
        ),
    )
    assert all(r[2] <= r[1] for r in rows)  # PGO never loses on these


def test_extension_memory_latency_sensitivity(benchmark, save_result):
    """Sweep the main-memory latency (Table I fixes 150): protection
    overhead shrinks as memory stalls dominate, because stall cycles are
    common to every scheme."""
    from repro.machine.config import (
        CacheHierarchyConfig,
        MachineConfig,
        itanium2_cache,
    )

    def compute():
        rows = []
        base_cache = itanium2_cache()
        for mem_lat in (50, 150, 400):
            cache = CacheHierarchyConfig(
                levels=base_cache.levels, memory_latency=mem_lat
            )
            machine = MachineConfig(
                issue_width=2, inter_cluster_delay=2, cache=cache
            )
            prog = get_workload("h263dec").program
            noed = VLIWExecutor(
                compile_program(prog, Scheme.NOED, machine)
            ).run()
            casted = VLIWExecutor(
                compile_program(prog, Scheme.CASTED, machine)
            ).run()
            rows.append(
                [
                    mem_lat,
                    noed.cycles,
                    f"{noed.stall_cycles / noed.cycles * 100:.0f}%",
                    f"{casted.cycles / noed.cycles:.2f}",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "extension_memory_latency",
        format_table(
            ["memory latency", "NOED cycles", "stall share", "CASTED slowdown"],
            rows,
            title="Extension: main-memory latency sensitivity (h263dec)",
        ),
    )
    slowdowns = [float(r[3]) for r in rows]
    assert slowdowns == sorted(slowdowns, reverse=True)  # overhead dilutes


def test_extension_partial_redundancy(benchmark, save_result):
    """The Shoestring-style coverage/performance tradeoff (Table III's
    "partial redundancy" row): replicate only the backward slice of checked
    operands up to depth k."""
    from repro.faults.classify import Outcome
    from repro.faults.injector import FaultInjector

    def compute():
        rows = []
        prog = get_workload("parser").program
        noed = compile_program(prog, Scheme.NOED, MACHINE)
        noed_run = VLIWExecutor(noed).run()
        for depth in (0, 1, 2, 4, None):
            cp = compile_program(
                prog, Scheme.SCED, MACHINE, protect_slice_depth=depth
            )
            r = VLIWExecutor(cp).run()
            inj = FaultInjector(
                cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
            )
            res = inj.run_campaign(
                TRIALS, seed=9, reference_dyn=noed_run.dyn_instructions
            )
            ed = cp.ed_info
            rows.append(
                [
                    "full" if depth is None else f"depth {depth}",
                    ed.n_duplicates,
                    ed.n_shadow_copies,
                    f"{r.cycles / noed_run.cycles:.2f}",
                    f"{res.fraction(Outcome.DETECTED) * 100:.0f}%",
                    f"{res.fraction(Outcome.SDC) * 100:.0f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "extension_partial_redundancy",
        format_table(
            ["slice", "replicas", "boundary copies", "slowdown",
             "detected", "SDC"],
            rows,
            title="Extension: partial redundancy (parser, SCED, issue 2/delay 2)",
        )
        + "\nShallow slices trade little performance for a lot of coverage "
        "here because every\nunprotected->protected boundary needs a shadow "
        "copy — Shoestring's insight that\nslice *boundaries*, not slice "
        "sizes, drive the cost.",
    )
    # coverage improves with depth (within Monte-Carlo noise per step) and
    # the endpoints are strongly ordered
    sdc = [float(r[5].rstrip("%")) for r in rows]
    assert all(b <= a + 3.0 for a, b in zip(sdc, sdc[1:]))
    assert sdc[-1] < sdc[0] / 4


def test_extension_recovery(benchmark, save_result):
    def compute():
        machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
        rows = []
        for w in ("h263dec", "parser"):
            prog = get_workload(w).program
            noed = compile_program(prog, Scheme.NOED, machine)
            ref = VLIWExecutor(noed).run().dyn_instructions
            cp = compile_program(prog, Scheme.CASTED, machine)
            res = run_recovery_campaign(
                cp.program,
                trials=TRIALS,
                seed=31,
                mem_words=cp.mem_words,
                frame_words=cp.frame_words,
                reference_dyn=ref,
            )
            rows.append(
                [
                    w,
                    f"{res.fraction('benign') * 100:.1f}%",
                    f"{res.fraction('recovered') * 100:.1f}%",
                    f"{res.fraction('exception') * 100:.1f}%",
                    f"{res.fraction('data-corrupt') * 100:.1f}%",
                    f"{res.correct_completion_rate * 100:.1f}%",
                    f"{res.recovery_overhead * 100:.1f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "extension_recovery",
        format_table(
            ["workload", "benign", "recovered", "exception", "SDC",
             "correct completion", "re-exec overhead"],
            rows,
            title="Extension: restart-on-detection recovery (CASTED, issue 2/delay 2)",
        )
        + "\nExceptions would recover the same way with a trapping handler; "
        "they are kept separate to mirror the paper's taxonomy.",
    )
    for row in rows:
        assert float(row[2].rstrip("%")) > 20.0  # real recovery happened
        assert float(row[5].rstrip("%")) > 50.0
