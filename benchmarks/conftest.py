"""Shared benchmark fixtures.

The benchmarks regenerate the paper's tables/figures; results are cached in
``.repro_cache/`` (delete it to force re-simulation) and the rendered text
is written under ``results/`` and echoed to the terminal (run with ``-s``).

``REPRO_TRIALS`` controls the Monte-Carlo campaign size (default 120; the
paper uses 300 — set ``REPRO_TRIALS=300`` to match it exactly).

``REPRO_JOBS`` controls evaluation parallelism (default 1; 0 = all
cores): grid-heavy benchmarks prewarm the shared result cache through
``Evaluator.sweep(..., jobs=JOBS)``, so ``REPRO_JOBS=0 pytest
benchmarks/`` fans compile + simulate + campaign work out over every
core while producing bit-identical results (see docs/performance.md).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.experiment import Evaluator
from repro.parallel import resolve_jobs
from repro.workloads import workload_names

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Monte-Carlo trials per (workload, scheme, config) campaign.
TRIALS = int(os.environ.get("REPRO_TRIALS", "120"))

#: Worker processes for cache prewarms (REPRO_JOBS; 0 = all cores).
JOBS = resolve_jobs(None)


@pytest.fixture(scope="session")
def ev() -> Evaluator:
    return Evaluator(seed=2013)


@pytest.fixture(scope="session")
def workloads() -> list[str]:
    return workload_names()


@pytest.fixture(scope="session")
def save_result():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n[saved to results/{name}.txt]")

    return _save
