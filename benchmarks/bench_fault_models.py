"""Coverage comparison across fault models (robustness extension).

The paper's §IV-C coverage numbers assume its single-bit output-register
model.  This benchmark re-runs the campaign under every registered fault
model on one representative workload and tabulates how the outcome mix —
and therefore the coverage claim — moves with the model.  Replica
comparison is blind to faults that corrupt both streams identically or
strike outside the sphere of replication, so control-flow and memory
faults are where the detected fraction collapses.
"""

from benchmarks.conftest import TRIALS
from repro.faults.classify import Outcome
from repro.faults.injector import FaultInjector
from repro.faults.models import fault_model_names, get_fault_model
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.utils.tables import format_table
from repro.workloads import get_workload

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=2)
WORKLOAD = "parser"


def test_fault_model_coverage(benchmark, save_result):
    def compute():
        prog = get_workload(WORKLOAD).program
        noed = compile_program(prog, Scheme.NOED, MACHINE)
        ref = VLIWExecutor(noed).run().dyn_instructions
        cp = compile_program(prog, Scheme.CASTED, MACHINE)
        rows = []
        for model in fault_model_names():
            inj = FaultInjector(
                cp.program,
                mem_words=cp.mem_words,
                frame_words=cp.frame_words,
                fault_model=model,
            )
            res = inj.run_campaign(TRIALS, seed=17, reference_dyn=ref)
            rows.append(
                [
                    model,
                    f"{res.fraction(Outcome.BENIGN) * 100:.1f}%",
                    f"{res.caught * 100:.1f}%",
                    f"{res.fraction(Outcome.SDC) * 100:.1f}%",
                    f"{res.coverage * 100:.1f}%",
                    f"{res.mean_detection_latency:.0f}"
                    if res.detections_timed
                    else "-",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "fault_model_coverage",
        format_table(
            ["model", "benign", "caught", "SDC", "coverage", "mean latency"],
            rows,
            title=f"Fault-model sensitivity ({WORKLOAD}, CASTED, "
            "issue 2/delay 2)",
        )
        + "\n"
        + "\n".join(
            f"{name}: {get_fault_model(name).description}"
            for name in fault_model_names()
        )
        + "\nReplica comparison only sees faults inside the sphere of "
        "replication: coverage\nunder cf/mem faults needs signatures / "
        "ECC, which CASTED assumes rather than provides.",
    )
    by_model = {r[0]: r for r in rows}
    # the paper's model stays strong; cf faults must expose the gap
    assert float(by_model["reg-bit"][4].rstrip("%")) > 80.0
    assert (
        float(by_model["cf"][4].rstrip("%"))
        < float(by_model["reg-bit"][4].rstrip("%"))
    )
