"""Ablation benchmarks for the design decisions DESIGN.md calls out.

1. **Post-ED CSE** (the paper's §IV-A rationale): re-enabling late CSE after
   the CASTED passes collapses the replicas and destroys fault coverage.
2. **CASTED candidate portfolio**: greedy BUG alone (no fixed-shape
   candidates, no safety net) vs the full adaptive portfolio.
3. **Register reuse policy**: hot (LIFO) register reuse creates false
   dependences that lengthen VLIW schedules vs round-robin (FIFO).
4. **Non-blocking caches (MLP)**: serializing same-cycle misses removes the
   memory-level-parallelism benefit of spreading memory ops.
"""

from benchmarks.conftest import TRIALS
from repro.faults.classify import Outcome
from repro.faults.injector import FaultInjector
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.utils.tables import format_table
from repro.workloads import get_workload

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=2)


def _coverage(cp, trials, seed=77, reference_dyn=None):
    inj = FaultInjector(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
    )
    return inj.run_campaign(trials, seed, reference_dyn=reference_dyn)


def test_ablation_post_ed_cse_destroys_coverage(benchmark, save_result):
    """Why the paper disables late CSE/DCE after its passes."""

    def compute():
        prog = get_workload("h263dec").program
        noed = compile_program(prog, Scheme.NOED, MACHINE)
        ref = VLIWExecutor(noed).run().dyn_instructions
        safe = compile_program(prog, Scheme.SCED, MACHINE)
        unsafe = compile_program(prog, Scheme.SCED, MACHINE, unsafe_post_ed_cse=True)
        return (
            _coverage(safe, TRIALS, reference_dyn=ref),
            _coverage(unsafe, TRIALS, reference_dyn=ref),
        )

    safe, unsafe = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [
        ["CSE disabled post-ED (paper)", f"{safe.fraction(Outcome.DETECTED):.2f}",
         f"{safe.fraction(Outcome.SDC):.2f}"],
        ["CSE re-enabled post-ED", f"{unsafe.fraction(Outcome.DETECTED):.2f}",
         f"{unsafe.fraction(Outcome.SDC):.2f}"],
    ]
    save_result(
        "ablation_post_ed_cse",
        format_table(
            ["pipeline", "detected", "silent corruption"],
            rows,
            title="Ablation: late CSE after error detection (h263dec, SCED)",
        ),
    )
    assert unsafe.fraction(Outcome.SDC) > safe.fraction(Outcome.SDC)
    assert unsafe.fraction(Outcome.DETECTED) < safe.fraction(Outcome.DETECTED)


def test_ablation_casted_portfolio(benchmark, ev, save_result):
    """Greedy BUG alone vs the full adaptive portfolio."""

    def compute():
        rows = []
        for w in ("mcf", "h263enc", "vpr"):
            prog = get_workload(w).program
            for iw, d in ((1, 1), (2, 2), (4, 4)):
                machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
                full = VLIWExecutor(
                    compile_program(prog, Scheme.CASTED, machine)
                ).run().cycles
                greedy = VLIWExecutor(
                    compile_program(
                        prog,
                        Scheme.CASTED,
                        machine,
                        casted_candidates=("bug",),
                        casted_safety_net=False,
                    )
                ).run().cycles
                rows.append([f"{w} iw{iw} d{d}", greedy, full,
                             f"{(greedy - full) / greedy * 100:+.1f}%"])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "ablation_casted_portfolio",
        format_table(
            ["config", "BUG only (cycles)", "full portfolio", "portfolio gain"],
            rows,
            title="Ablation: CASTED candidate portfolio vs greedy BUG alone",
        ),
    )
    total_greedy = sum(r[1] for r in rows)
    total_full = sum(r[2] for r in rows)
    assert total_full <= total_greedy


def test_ablation_register_reuse_policy(benchmark, save_result):
    """FIFO (round-robin) vs LIFO (hot) free-register reuse."""

    def compute():
        rows = []
        for w in ("cjpeg", "mpeg2dec"):
            prog = get_workload(w).program
            fifo = VLIWExecutor(
                compile_program(prog, Scheme.SCED, MACHINE.with_(issue_width=4))
            ).run().cycles
            lifo = VLIWExecutor(
                compile_program(
                    prog, Scheme.SCED, MACHINE.with_(issue_width=4),
                    regalloc_reuse="lifo",
                )
            ).run().cycles
            rows.append([w, lifo, fifo, f"{(lifo - fifo) / lifo * 100:+.1f}%"])
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "ablation_register_reuse",
        format_table(
            ["workload", "LIFO reuse (cycles)", "FIFO reuse", "FIFO gain"],
            rows,
            title="Ablation: register reuse policy (SCED, issue 4)",
        ),
    )
    assert sum(r[2] for r in rows) <= sum(r[1] for r in rows)


def test_ablation_if_conversion(benchmark, save_result):
    """Predication (if-conversion) before error detection: fewer branches
    mean fewer check pairs, trading checking cost for speculative work —
    most visible on the branch-dense kernels."""

    def compute():
        rows = []
        for w in ("h263enc", "parser", "vpr"):
            prog = get_workload(w).program
            plain = compile_program(prog, Scheme.SCED, MACHINE)
            conv = compile_program(prog, Scheme.SCED, MACHINE, if_convert=True)
            r_plain = VLIWExecutor(plain).run()
            r_conv = VLIWExecutor(conv).run()
            assert r_plain.output == r_conv.output
            rows.append(
                [
                    w,
                    plain.ed_info.n_checks,
                    conv.ed_info.n_checks,
                    r_plain.cycles,
                    r_conv.cycles,
                    f"{(r_plain.cycles - r_conv.cycles) / r_plain.cycles * 100:+.1f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "ablation_if_conversion",
        format_table(
            ["workload", "checks", "checks (if-conv)", "cycles",
             "cycles (if-conv)", "gain"],
            rows,
            title="Ablation: if-conversion before error detection (SCED, issue 2/delay 2)",
        )
        + "\nUnder the paper's perfect branch prediction (Table I), branches"
        "\nare free, so predication's speculative work usually costs more"
        "\nthan the saved check pairs — which is why the pass is off by"
        "\ndefault and the paper's target keeps its branches.",
    )
    # predication must reduce static check counts on branchy code
    assert all(r[2] <= r[1] for r in rows)


def _streaming_kernel():
    """A memory-parallel kernel: two independent streams walked in lockstep,
    far enough apart that both miss in the same VLIW cycle — the situation
    where CASTED's spreading of memory operations buys MLP (§III-D)."""
    from repro.frontend import compile_source

    return compile_source(
        """
        global a[4096];
        global b[4096];
        func main() {
            var s = 0;
            for (var i = 0; i < 4096; i = i + 8) {
                s = s + a[i] + b[i];
            }
            out(s);
            return 0;
        }
        """,
        name="stream2",
    )


def test_ablation_mlp_overlap(benchmark, save_result):
    """Non-blocking caches: same-cycle miss overlap (paper §III-D's MLP)."""

    def compute():
        rows = []
        cases = [("stream2 (synthetic)", _streaming_kernel())]
        cases += [(w, get_workload(w).program) for w in ("h263dec", "mcf")]
        for label, prog in cases:
            cp = compile_program(prog, Scheme.CASTED, MACHINE.with_(issue_width=4))
            with_mlp = VLIWExecutor(cp, overlap_misses=True).run()
            without = VLIWExecutor(cp, overlap_misses=False).run()
            rows.append(
                [label, without.cycles, with_mlp.cycles,
                 without.stall_cycles, with_mlp.stall_cycles]
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_result(
        "ablation_mlp",
        format_table(
            ["workload", "blocking cycles", "non-blocking cycles",
             "blocking stalls", "non-blocking stalls"],
            rows,
            title="Ablation: non-blocking cache miss overlap (CASTED, issue 4)",
        ),
    )
    for row in rows:
        assert row[2] <= row[1]
        assert row[4] <= row[3]
    # the memory-parallel kernel must show a real MLP benefit
    assert rows[0][4] < rows[0][3]
