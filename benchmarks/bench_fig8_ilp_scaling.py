"""Figure 8 — ILP scaling: speedup of each scheme as issue width grows."""

from repro.eval.figures import fig8_data, render_fig8
from repro.utils.stats import mean


def test_fig8_ilp_scaling(benchmark, ev, workloads, save_result):
    data = benchmark.pedantic(
        lambda: fig8_data(ev, workloads, delay=1), rounds=1, iterations=1
    )
    save_result("fig8_ilp_scaling", render_fig8(data))

    # Paper shapes:
    for w in workloads:
        # monotone non-decreasing speedups for the single-cluster schemes
        for scheme in ("noed", "sced"):
            series = data[w][scheme]
            assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), (w, scheme)
        # §IV-B2: SCED scales better than NOED (the redundant code's ILP)
        assert data[w]["sced"][-1] >= data[w]["noed"][-1] - 1e-9, w

    # §IV-B4: DCED has a head start and scales worst on average
    sced_avg = mean(data[w]["sced"][-1] for w in workloads)
    dced_avg = mean(data[w]["dced"][-1] for w in workloads)
    assert dced_avg < sced_avg

    # §IV-B2: low-ILP 181.mcf — NOED scales poorly, SCED clearly better
    assert data["mcf"]["noed"][-1] < 1.5
    assert data["mcf"]["sced"][-1] > data["mcf"]["noed"][-1]
