"""Performance-trend ledger and regression gate over ``BENCH_speed.json``.

``bench_speed.py`` measures one snapshot; this tool gives the numbers a
memory.  ``--append`` distills a ``BENCH_speed.json`` report into one
compact JSON line in ``benchmarks/BENCH_history.jsonl`` (committed, so the
trajectory travels with the repo); ``--check`` gates a candidate report
against that history and exits non-zero on a regression.

Wall-clock numbers are only comparable on comparable hardware, so every
entry is tagged with a *cohort* key — ``<system>-<machine>-<cores>c`` plus
the ``--quick`` flag — and absolute throughput checks (trials/s,
executor insn/s) compare the candidate only against entries from the same
cohort.  Ratio checks are hardware-independent and always apply:

* ``speedup_vs_baseline`` (compiled + snapshots over the interp/replay
  baseline) must stay >= ``MIN_BASELINE_SPEEDUP``;
* ``speedup_batch_vs_baseline`` (the batched trial engine over the same
  baseline) must stay >= ``MIN_BATCH_SPEEDUP``;
* the pool speedup floor applies only when the report says the parallel
  measurement was meaningful (``parallel_meaningful``: enough effective
  cores for the worker count — see bench_speed.py) on a >= 4-core box;
* under the same conditions, the pool-warm cohort's parallel efficiency
  (``pool_efficiency``: speedup over the serial batched engine normalized
  by min(jobs, cores)) must stay >= ``MIN_POOL_EFFICIENCY``;
* within the cohort, serial campaign trials/s and executor insn/s must not
  drop more than ``MAX_DROP_FRAC`` below the cohort median.

Usage::

    python benchmarks/bench_trend.py --append                # after a bench run
    python benchmarks/bench_trend.py --check                 # gate BENCH_speed.json
    python benchmarks/bench_trend.py --check --candidate other.json
    python benchmarks/bench_trend.py --list                  # show the history
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from datetime import datetime, timezone
from pathlib import Path
from statistics import median

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.ledger import git_revision  # noqa: E402
from repro.parallel import effective_cores  # noqa: E402

DEFAULT_HISTORY = Path(__file__).resolve().parent / "BENCH_history.jsonl"
DEFAULT_REPORT = REPO_ROOT / "BENCH_speed.json"

#: Compiled+snapshots must stay at least this many times faster than the
#: interp/replay-from-zero baseline (hardware-independent ratio).
MIN_BASELINE_SPEEDUP = 3.0
#: The batched engine must likewise hold this floor over the interp/replay
#: baseline (hardware-independent ratio; absent in pre-batching reports).
MIN_BATCH_SPEEDUP = 3.0
#: Pool speedup floor, applied only to meaningful parallel measurements on
#: a >= 4-core machine.
MIN_POOL_SPEEDUP = 1.5
#: Parallel-efficiency floor for the pool-warm cohort (speedup over the
#: serial batched engine, normalized by min(jobs, cores)); applied under
#: the same meaningful-parallel conditions as the pool speedup floor.
MIN_POOL_EFFICIENCY = 0.7
#: Maximum tolerated drop of an absolute throughput below its same-cohort
#: historical median.
MAX_DROP_FRAC = 0.15


def cohort_tag(entry: dict) -> str:
    """Hardware-comparability key: same tag => absolute numbers comparable."""
    return f"{entry.get('system', '?')}-{entry.get('machine', '?')}-{entry.get('effective_cores', '?')}c"


def entry_from_report(report: dict) -> dict:
    """Distill a full BENCH_speed.json report into one history entry."""
    campaign = report.get("campaign", {})
    executor = report.get("executor", {})
    sweep = report.get("sweep", {})
    return {
        "recorded_at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "git_rev": git_revision(),
        "system": platform.system().lower(),
        "machine": platform.machine(),
        "python": report.get("python"),
        "quick": bool(report.get("quick", False)),
        "jobs": report.get("jobs"),
        "effective_cores": report.get("effective_cores", effective_cores()),
        # Reports predating the flag never verified core availability.
        "parallel_meaningful": bool(report.get("parallel_meaningful", False)),
        "insn_per_s": executor.get("insn_per_s"),
        "trials": campaign.get("trials"),
        "trials_per_s_serial": campaign.get("trials_per_s_serial"),
        "trials_per_s_serial_batched": campaign.get("trials_per_s_serial_batched"),
        "trials_per_s_parallel": campaign.get("trials_per_s_parallel"),
        "speedup_vs_baseline": campaign.get("speedup_vs_baseline"),
        "speedup_batch": campaign.get("speedup_batch"),
        "speedup_batch_vs_baseline": campaign.get("speedup_batch_vs_baseline"),
        "speedup_pool": campaign.get("speedup"),
        # Pool-warm cohort (absent in pre-pool reports and jobs<2 runs).
        "speedup_warm": campaign.get("speedup_warm"),
        "pool_efficiency": campaign.get("pool_efficiency"),
        "speedup_sweep": sweep.get("speedup"),
    }


def load_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            entries.append(json.loads(line))
        except json.JSONDecodeError:
            print(
                f"warning: {path}:{lineno}: unparsable history line skipped",
                file=sys.stderr,
            )
    return entries


def check(candidate: dict, history: list[dict]) -> list[str]:
    """All regression findings for ``candidate`` against ``history``."""
    failures: list[str] = []

    # -- hardware-independent ratio floors ---------------------------------
    svb = candidate.get("speedup_vs_baseline")
    if svb is not None and svb < MIN_BASELINE_SPEEDUP:
        failures.append(
            f"speedup_vs_baseline {svb}x is below the {MIN_BASELINE_SPEEDUP}x "
            "floor (compiled+snapshots vs interp/replay baseline)"
        )
    sbb = candidate.get("speedup_batch_vs_baseline")
    if sbb is not None and sbb < MIN_BATCH_SPEEDUP:
        failures.append(
            f"speedup_batch_vs_baseline {sbb}x is below the "
            f"{MIN_BATCH_SPEEDUP}x floor (batched engine vs interp/replay "
            "baseline)"
        )
    pool = candidate.get("speedup_pool")
    if (
        candidate.get("parallel_meaningful")
        and (candidate.get("effective_cores") or 0) >= 4
        and (candidate.get("jobs") or 0) >= 4
        and pool is not None
        and pool < MIN_POOL_SPEEDUP
    ):
        failures.append(
            f"pool speedup {pool}x is below the {MIN_POOL_SPEEDUP}x floor "
            f"on a {candidate['effective_cores']}-core machine "
            f"(jobs={candidate['jobs']})"
        )
    eff = candidate.get("pool_efficiency")
    if (
        candidate.get("parallel_meaningful")
        and (candidate.get("effective_cores") or 0) >= 4
        and (candidate.get("jobs") or 0) >= 4
        and eff is not None
        and eff < MIN_POOL_EFFICIENCY
    ):
        failures.append(
            f"parallel efficiency {eff:.0%} is below the "
            f"{MIN_POOL_EFFICIENCY:.0%} floor (pool-warm campaign vs serial "
            f"batched engine on a {candidate['effective_cores']}-core "
            f"machine, jobs={candidate['jobs']})"
        )

    # -- same-cohort absolute throughput -----------------------------------
    tag = cohort_tag(candidate)
    cohort = [
        e
        for e in history
        if cohort_tag(e) == tag and bool(e.get("quick")) == bool(candidate.get("quick"))
    ]
    if not cohort:
        print(
            f"note: no history for cohort {tag} "
            f"(quick={bool(candidate.get('quick'))}); "
            "absolute-throughput checks skipped",
            file=sys.stderr,
        )
        return failures
    for key, label in (
        ("trials_per_s_serial", "serial campaign trials/s"),
        ("trials_per_s_serial_batched", "batched campaign trials/s"),
        ("insn_per_s", "executor insn/s"),
    ):
        got = candidate.get(key)
        refs = [e[key] for e in cohort if isinstance(e.get(key), (int, float))]
        if got is None or not refs:
            continue
        ref = median(refs)
        if ref > 0 and got < (1.0 - MAX_DROP_FRAC) * ref:
            drop = 100.0 * (1.0 - got / ref)
            failures.append(
                f"{label} regressed {drop:.1f}% vs cohort median "
                f"({got:g} vs {ref:g}, {len(refs)} samples, cohort {tag}) — "
                f"allowed drop is {MAX_DROP_FRAC:.0%}"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--append", action="store_true",
        help="distill the report into one history line and append it",
    )
    mode.add_argument(
        "--check", action="store_true",
        help="gate the candidate report against the history (exit 1 on regression)",
    )
    mode.add_argument(
        "--list", action="store_true", help="print the history, one line per entry"
    )
    parser.add_argument(
        "--candidate", default=None, metavar="FILE",
        help=f"BENCH_speed.json to append/check (default {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "--history", default=str(DEFAULT_HISTORY), metavar="FILE",
        help="history JSONL path",
    )
    args = parser.parse_args(argv)
    history_path = Path(args.history)
    history = load_history(history_path)

    if args.list:
        for e in history:
            print(
                f"{e.get('recorded_at', '?'):20s}  {e.get('git_rev', '?'):8s}  "
                f"{cohort_tag(e):20s}  quick={str(bool(e.get('quick'))).lower():5s}  "
                f"serial {e.get('trials_per_s_serial', '?')}/s  "
                f"batched {e.get('trials_per_s_serial_batched', '?')}/s  "
                f"pool {e.get('speedup_pool', '?')}x  "
                f"warm-eff {e.get('pool_efficiency', '?')}  "
                f"vs-baseline {e.get('speedup_vs_baseline', '?')}x"
            )
        print(f"{len(history)} entries in {history_path}")
        return 0

    report_path = Path(args.candidate) if args.candidate else DEFAULT_REPORT
    if not report_path.exists():
        print(f"error: report {report_path} does not exist", file=sys.stderr)
        return 2
    try:
        report = json.loads(report_path.read_text())
    except json.JSONDecodeError as exc:
        print(f"error: {report_path} is not valid JSON: {exc}", file=sys.stderr)
        return 2
    candidate = entry_from_report(report)

    if args.append:
        with history_path.open("a") as fh:
            fh.write(json.dumps(candidate, sort_keys=True) + "\n")
        print(
            f"appended {cohort_tag(candidate)} entry "
            f"({candidate['git_rev']}) to {history_path}"
        )
        return 0

    failures = check(candidate, history)
    if failures:
        print(f"trend gate FAILED for {report_path}:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(
        f"trend gate passed for {report_path} "
        f"(cohort {cohort_tag(candidate)}, {len(history)} history entries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
