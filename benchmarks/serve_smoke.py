#!/usr/bin/env python
"""CI smoke for ``repro serve``: SIGKILL mid-campaign, restart, exact counts.

Self-contained (stdlib + the repo); exercises the full crash-recovery
story end to end through real processes:

1. compute the reference outcome counts with a direct in-process campaign;
2. start the daemon chaos-armed (``REPRO_CHAOS=daemon.heartbeat:2``),
   submit the same campaign as an inject job, and let the daemon SIGKILL
   itself mid-run — after at least one shard hit the checkpoint;
3. restart the daemon on the same state directory: recovery must requeue
   the interrupted job and the re-run must resume from the checkpoint;
4. assert the final counts are bit-identical to the reference, then stop
   the daemon with SIGTERM and check the exit is clean.

Exit status 0 on success.  On failure the state directory (job records,
checkpoints, per-job event logs) is left in place for CI to upload.

Usage::

    python benchmarks/serve_smoke.py [--state-dir DIR] [--trials N]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

LISTEN_PREFIX = "[serve] listening on "


def log(msg: str) -> None:
    print(f"[serve-smoke] {msg}", flush=True)


def reference_counts(workload: str, trials: int, seed: int) -> dict[str, int]:
    from repro.cli import _load_program
    from repro.faults.injector import run_campaign
    from repro.machine.config import MachineConfig
    from repro.pipeline import Scheme, compile_program
    from repro.sim.executor import VLIWExecutor

    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    program = _load_program(workload)
    compiled = compile_program(program, Scheme.CASTED, machine)
    noed = compile_program(program, Scheme.NOED, machine)
    reference = VLIWExecutor(noed).run().dyn_instructions
    res = run_campaign(
        compiled.program, trials, seed,
        mem_words=compiled.mem_words, frame_words=compiled.frame_words,
        reference_dyn=reference,
    )
    return {o.value: n for o, n in res.counts.items()}


def start_daemon(state_dir: Path, chaos: str | None = None) -> tuple:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["PYTHONUNBUFFERED"] = "1"
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", str(state_dir), "--jobs", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=REPO_ROOT,
    )
    assert proc.stdout is not None
    while True:
        line = proc.stdout.readline()
        if not line:
            raise SystemExit(
                f"FAIL: daemon exited before listening (rc={proc.poll()})"
            )
        if line.startswith(LISTEN_PREFIX):
            return proc, line[len(LISTEN_PREFIX):].strip()


def api(url: str, path: str, body: dict | None = None) -> dict:
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"{url}{path}", data=data, method="POST" if data else "GET",
        headers={"Content-Type": "application/json"} if data else {},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--state-dir", default="results/serve-smoke")
    ap.add_argument("--workload", default="workload:mcf")
    ap.add_argument("--trials", type=int, default=75)
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()
    state_dir = Path(args.state_dir)

    log(f"reference campaign: {args.workload}, {args.trials} trials")
    want = reference_counts(args.workload, args.trials, args.seed)
    log(f"reference counts: {want}")

    log("phase 1: chaos-armed daemon (SIGKILLs itself at heartbeat #2)")
    proc, url = start_daemon(state_dir, chaos="daemon.heartbeat:2")
    job = api(url, "/jobs", {
        "kind": "inject",
        "spec": {"program": args.workload, "trials": args.trials,
                 "seed": args.seed, "heartbeat": 25},
        "client": "ci",
    })
    log(f"submitted {job['id']}; waiting for the daemon to die")
    rc = proc.wait(timeout=300)
    proc.stdout.close()
    if rc == 0:
        log("FAIL: daemon exited cleanly; the chaos point never fired")
        return 1
    log(f"daemon died rc={rc} (SIGKILL)")

    store = state_dir / "jobs" / f"{job['id']}.json"
    record = json.loads(store.read_text())
    if record["state"] not in ("running", "checkpointing"):
        log(f"FAIL: crashed job record says {record['state']!r}")
        return 1
    ckpt = state_dir / "checkpoints" / f"{job['id']}.jsonl"
    shards = len(ckpt.read_text().splitlines()) - 1 if ckpt.exists() else 0
    log(f"durable state after crash: job {record['state']}, {shards} shard(s)")
    if shards < 1:
        log("FAIL: no shards checkpointed before the crash")
        return 1

    log("phase 2: restart on the same state dir; recovery must requeue")
    proc, url = start_daemon(state_dir)
    deadline = time.monotonic() + 300
    while True:
        final = api(url, f"/jobs/{job['id']}")
        if final["state"] in ("done", "failed", "cancelled"):
            break
        if time.monotonic() > deadline:
            log(f"FAIL: job stuck in {final['state']}")
            return 1
        time.sleep(0.25)

    ok = True
    if final["state"] != "done":
        log(f"FAIL: job finished {final['state']}: {final.get('error')}")
        ok = False
    elif final["restarts"] < 1:
        log("FAIL: restart counter never bumped — recovery did not run")
        ok = False
    elif final["incomplete"]:
        log("FAIL: result marked incomplete after a full resume")
        ok = False
    elif final["result"]["counts"] != want:
        log(f"FAIL: counts diverged: {final['result']['counts']} != {want}")
        ok = False
    else:
        log(f"counts bit-identical after kill -9 + restart: "
            f"{final['result']['counts']} (restarts={final['restarts']})")

    metrics = urllib.request.urlopen(f"{url}/metrics", timeout=30).read().decode()
    if "repro_serve_jobs_recovered_total" not in metrics:
        log("FAIL: /metrics missing the recovery counter")
        ok = False

    log("phase 3: graceful SIGTERM")
    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=60)
    proc.stdout.close()
    if rc != 0:
        log(f"FAIL: graceful shutdown exited rc={rc}")
        ok = False

    log("PASS" if ok else "FAIL (state dir kept for artifact upload)")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
