"""Protection-lint report — static vulnerability windows vs measured coverage.

Runs the protection linter over every workload x scheme (the same
issue 2 / delay 2 operating point as Fig. 9), verifies the whole matrix is
ERROR-free, and writes ``results/lint_report.md`` correlating the static
windows (profile-weighted, in executed instructions) with the measured
fault-injection coverage and detection latency (same units) from the
Monte-Carlo campaigns.
"""

from benchmarks.conftest import JOBS, RESULTS_DIR, TRIALS
from repro.analysis.lint import lint_program
from repro.faults.classify import Outcome
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, collect_block_profile
from repro.utils.stats import mean
from repro.workloads import get_workload


def _pearson(xs: list[float], ys: list[float]) -> float:
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs) ** 0.5
    vy = sum((y - my) ** 2 for y in ys) ** 0.5
    if vx == 0 or vy == 0:
        return 0.0
    return cov / (vx * vy)


def test_lint_report(benchmark, ev, workloads):
    machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
    points = [(w, s, 2, 2) for w in workloads for s in Scheme]
    ev.sweep(points, trials=TRIALS, jobs=JOBS)

    profiles = {w: collect_block_profile(get_workload(w).program) for w in workloads}

    def run_lints():
        out = {}
        for w in workloads:
            for scheme in Scheme:
                out[(w, scheme)] = lint_program(
                    get_workload(w).program,
                    scheme,
                    machine,
                    block_profile=profiles[w],
                )
        return out

    reports = benchmark.pedantic(run_lints, rounds=1, iterations=1)

    rows = []
    win_points: list[tuple[float, float]] = []
    for w in workloads:
        for scheme in Scheme:
            rep = reports[(w, scheme)]
            counts = rep.counts()
            assert counts["error"] == 0, (w, scheme, rep.findings)
            cov = ev.coverage(w, scheme, 2, 2, TRIALS)
            if scheme is not Scheme.NOED:
                assert rep.windows.n_defs > 0, (w, scheme)
                win_points.append(
                    (rep.windows.weighted_mean_window, cov.mean_detection_latency)
                )
            rows.append(
                (
                    w,
                    scheme.value,
                    counts["warning"],
                    counts["info"],
                    rep.windows.n_defs,
                    rep.windows.n_unchecked,
                    rep.windows.weighted_mean_window,
                    rep.windows.max_window,
                    cov.coverage,
                    cov.fraction(Outcome.SDC),
                    cov.mean_detection_latency,
                )
            )

    r = _pearson([p[0] for p in win_points], [p[1] for p in win_points])

    lines = [
        "# Protection-lint report",
        "",
        "Static sphere-of-replication audit vs measured fault injection,",
        f"issue 2 / delay 2, {TRIALS} Monte-Carlo trials per campaign.",
        "Every cell of the matrix linted with **zero ERROR findings**.",
        "",
        "`w-window` is the profile-weighted mean vulnerability window",
        "(executed instructions between a protected definition and its",
        "earliest shadow check); `det-lat` is the campaigns' measured mean",
        "detection latency in the same units. `unchecked` defs have no",
        "direct check and are covered transitively at downstream consumers.",
        "",
        "| workload | scheme | warn | info | defs | unchecked | w-window | max | coverage | SDC | det-lat |",
        "|---|---|---|---|---|---|---|---|---|---|---|",
    ]
    for (w, s, warn, info, defs, unch, wwin, wmax, cvg, sdc, lat) in rows:
        lines.append(
            f"| {w} | {s} | {warn} | {info} | {defs} | {unch} "
            f"| {wwin:.2f} | {wmax} | {cvg:.3f} | {sdc:.3f} | {lat:.1f} |"
        )
    lines += [
        "",
        f"Across the {len(win_points)} protected configurations, the static",
        "weighted-mean window and the measured detection latency correlate",
        f"with Pearson r = {r:.3f}. The static window is a lower bound on",
        "the dynamic distance a fault travels before a check can catch it:",
        "campaign latencies also include faults first observed at a distant",
        "transitive consumer, which the `unchecked` column counts.",
        "",
    ]
    out = RESULTS_DIR / "lint_report.md"
    out.write_text("\n".join(lines))
    print(f"\n[saved to results/lint_report.md] window/latency r={r:.3f}")

    # The report must cover the full matrix.
    assert len(rows) == len(workloads) * len(list(Scheme))
