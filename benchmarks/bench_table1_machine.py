"""Table I — processor configuration (plus substrate micro-benchmarks).

Regenerates the configuration table and measures the simulation substrate's
raw speed (instructions/second of the reference interpreter and the
cycle-level executor, accesses/second of the cache model) so performance
regressions in the simulator itself are visible.
"""

from repro.eval.tables import render_table1
from repro.ir.interp import Interpreter
from repro.machine.config import MachineConfig, itanium2_cache
from repro.pipeline import Scheme, compile_program
from repro.sim.cache import CacheHierarchy
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload


def test_table1_render(benchmark, save_result):
    text = benchmark(render_table1)
    save_result("table1_machine", text)
    assert "16KB" in text


def test_interpreter_throughput(benchmark):
    interp = Interpreter(get_workload("mcf").program)

    result = benchmark(interp.run)
    assert result.kind.value == "ok"


def test_executor_throughput(benchmark):
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    cp = compile_program(get_workload("mcf").program, Scheme.NOED, machine)
    executor = VLIWExecutor(cp)

    result = benchmark(executor.run)
    assert result.kind.value == "ok"


def test_cache_throughput(benchmark):
    cache = CacheHierarchy(itanium2_cache())

    def scan():
        total = 0
        for w in range(0, 20_000, 3):
            total += cache.access(w + 1, False)
        return total

    assert benchmark(scan) > 0


def test_compile_casted_speed(benchmark):
    """Compilation cost of the full CASTED pipeline on one workload."""
    machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
    program = get_workload("h263dec").program

    cp = benchmark.pedantic(
        lambda: compile_program(program, Scheme.CASTED, machine),
        rounds=3,
        iterations=1,
    )
    assert cp.stats.n_instructions > 0
