"""Figure 9 — fault-coverage breakdown for all benchmarks at issue 2 /
delay 2 (Monte-Carlo, REPRO_TRIALS trials per campaign; paper uses 300)."""

from benchmarks.conftest import JOBS, TRIALS
from repro.eval.figures import fig9_data, render_fig9
from repro.pipeline import Scheme
from repro.utils.stats import mean


def test_fig9_fault_coverage(benchmark, ev, workloads, save_result):
    # Prewarm the coverage campaigns (the expensive part) in parallel when
    # REPRO_JOBS allows; results are identical to the serial run.
    points = [(w, s, 2, 2) for w in workloads for s in Scheme]
    ev.sweep(points, trials=TRIALS, jobs=JOBS)
    data = benchmark.pedantic(
        lambda: fig9_data(ev, workloads, trials=TRIALS), rounds=1, iterations=1
    )
    save_result(
        "fig9_fault_coverage",
        render_fig9(data) + f"\n({TRIALS} Monte-Carlo trials per campaign)",
    )

    for w in workloads:
        noed = data[w]["noed"]
        assert noed["detected"] == 0.0
        for scheme in ("sced", "dced", "casted"):
            prot = data[w][scheme]
            # detection replaces silent corruption
            assert prot["data-corrupt"] < noed["data-corrupt"], (w, scheme)
            assert prot["detected"] > 0.2, (w, scheme)
            # residual SDC exists (library code) but is small
            assert prot["data-corrupt"] < 0.25, (w, scheme)

    # §IV-C: encoders mask more faults than the rest (NOED benign fraction)
    enc = mean(data[w]["noed"]["benign"] for w in ("cjpeg", "h263enc"))
    rest = mean(
        data[w]["noed"]["benign"]
        for w in workloads
        if w not in ("cjpeg", "h263enc")
    )
    assert enc > rest
