"""Text visualization helpers."""

import pytest

from repro.faults.classify import Outcome
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.viz import render_block_schedule, render_coverage_bars, render_occupancy
from tests.conftest import build_loop_program


@pytest.fixture(scope="module")
def compiled():
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    return compile_program(build_loop_program(), Scheme.DCED, machine)


class TestScheduleGrid:
    def test_contains_all_instructions(self, compiled):
        block = compiled.program.main.block("loop")
        text = render_block_schedule(
            block, compiled.schedules.blocks["loop"], compiled.machine
        )
        # every mnemonic that occurs in the block appears in the grid
        for insn in block.instructions:
            assert insn.info.mnemonic in text

    def test_has_both_clusters(self, compiled):
        text = render_block_schedule(
            compiled.program.main.block("loop"),
            compiled.schedules.blocks["loop"],
            compiled.machine,
        )
        assert "cluster 0" in text and "cluster 1" in text

    def test_cycle_count_in_header(self, compiled):
        sched = compiled.schedules.blocks["loop"]
        text = render_block_schedule(
            compiled.program.main.block("loop"), sched, compiled.machine
        )
        assert f"({sched.length} cycles)" in text

    def test_roles_annotated(self, compiled):
        text = render_block_schedule(
            compiled.program.main.block("loop"),
            compiled.schedules.blocks["loop"],
            compiled.machine,
        )
        assert "[dup]" in text and "[check]" in text


class TestOccupancy:
    def test_totals_line(self, compiled):
        text = render_occupancy(compiled)
        assert "TOTAL" in text
        for block in compiled.program.main.blocks():
            assert block.label in text

    def test_percentages_bounded(self, compiled):
        for line in render_occupancy(compiled).splitlines()[1:]:
            pct = int(line.rstrip("%").rsplit(" ", 1)[-1])
            assert 0 <= pct <= 100


class TestCoverageBars:
    DATA = {
        "noed": {
            Outcome.BENIGN.value: 0.2,
            Outcome.EXCEPTION.value: 0.3,
            Outcome.SDC.value: 0.5,
        },
        "casted": {
            Outcome.BENIGN.value: 0.1,
            Outcome.DETECTED.value: 0.7,
            Outcome.EXCEPTION.value: 0.15,
            Outcome.SDC.value: 0.05,
        },
    }

    def test_bars_render(self):
        text = render_coverage_bars(self.DATA, width=40)
        assert "legend" in text
        assert "noed" in text and "casted" in text
        assert "D" * 20 in text  # 70% of 40 chars of detection

    def test_bar_width_fixed(self):
        for line in render_coverage_bars(self.DATA, width=30).splitlines()[1:]:
            inner = line.split("|")[1]
            assert len(inner) == 30

    def test_sdc_summary(self):
        text = render_coverage_bars(self.DATA)
        assert "SDC+TO 50.0%" in text
        assert "SDC+TO  5.0%" in text


class TestCliIntegration:
    def test_show_schedule(self, capsys, tmp_path):
        from repro.cli import main

        f = tmp_path / "p.mc"
        f.write_text("func main() { out(1 + 2); return 0; }")
        assert main(["compile", str(f), "--show-schedule", "all"]) == 0
        out = capsys.readouterr().out
        assert "cluster 0" in out
        assert "TOTAL" in out


class TestDfgDot:
    def test_dot_structure(self, compiled):
        from repro.viz import dfg_to_dot

        block = compiled.program.main.block("loop")
        dot = dfg_to_dot(block)
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert "->" in dot
        # every instruction is a node
        for i in range(len(block.instructions)):
            assert f"n{i} [" in dot

    def test_roles_styled(self, compiled):
        from repro.viz import dfg_to_dot

        dot = dfg_to_dot(compiled.program.main.block("loop"))
        assert "lightblue" in dot  # replicas
        assert "diamond" in dot  # checks
