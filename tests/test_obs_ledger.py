"""Event log, metrics export, and the content-addressed run ledger."""

from __future__ import annotations

import json
import logging

import pytest

from repro import obs
from repro.errors import ReproError
from repro.obs.events import EventLog, read_events
from repro.obs.export import prometheus_name, to_json, to_prometheus, write_metrics
from repro.obs.ledger import RunLedger, diff_runs, run_id_for
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    yield
    obs.reset()


def _fake_clock(step: float = 1.0, start: float = 100.0):
    state = {"t": start}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class TestEventLog:
    def test_emit_and_read_roundtrip(self, tmp_path):
        path = tmp_path / "run.events.jsonl"
        log = EventLog(path=path, clock=_fake_clock())
        log.emit("campaign-start", trials=100, seed=7)
        log.emit("shard-done", shard=0, trials=25)
        log.close()
        events = read_events(path)
        assert [e["kind"] for e in events] == ["campaign-start", "shard-done"]
        assert events[0]["trials"] == 100 and events[0]["seed"] == 7
        assert events[1]["shard"] == 0

    def test_elapsed_is_monotone_and_relative(self, tmp_path):
        path = tmp_path / "e.jsonl"
        log = EventLog(path=path, clock=_fake_clock(step=2.0))
        log.emit("a")
        log.emit("b")
        log.close()
        a, b = read_events(path)
        assert b["elapsed_s"] > a["elapsed_s"] > 0
        assert b["ts"] > a["ts"] > 100.0

    def test_append_only_across_reopens(self, tmp_path):
        path = tmp_path / "e.jsonl"
        for kind in ("first", "second"):
            log = EventLog(path=path)
            log.emit(kind)
            log.close()
        assert [e["kind"] for e in read_events(path)] == ["first", "second"]

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"ts": 1, "kind": "ok"}\n{"ts": 2, "ki')
        events = read_events(path)
        assert [e["kind"] for e in events] == ["ok"]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('not json\n{"ts": 1, "kind": "ok"}\n')
        with pytest.raises(ValueError, match="e.jsonl:1"):
            read_events(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"kind": "a"}\n\n\n{"kind": "b"}\n')
        assert [e["kind"] for e in read_events(path)] == ["a", "b"]

    def test_in_memory_mode(self):
        log = EventLog(clock=_fake_clock())
        log.emit("x", n=1)
        assert log.events[0]["kind"] == "x" and log.events[0]["n"] == 1

    def test_telemetry_event_facade(self, tmp_path):
        tel = obs.configure(events_path=tmp_path / "e.jsonl")
        tel.event("milestone", detail="ok")
        obs.reset()  # closes the log
        (ev,) = read_events(tmp_path / "e.jsonl")
        assert ev["kind"] == "milestone" and ev["detail"] == "ok"

    def test_campaign_emits_lifecycle_events(self, tmp_path):
        from repro.faults.injector import run_campaign
        from repro.machine.config import MachineConfig
        from repro.pipeline import Scheme, compile_program
        from tests.conftest import build_loop_program

        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(6), Scheme.NOED, machine)
        obs.configure(events_path=tmp_path / "e.jsonl")
        run_campaign(
            compiled.program, trials=30, seed=3,
            mem_words=compiled.mem_words, frame_words=compiled.frame_words,
        )
        obs.reset()
        events = read_events(tmp_path / "e.jsonl")
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "campaign-start"
        assert kinds[-1] == "campaign-end"
        shard_done = [e for e in events if e["kind"] == "shard-done"]
        assert len(shard_done) == 2  # 30 trials = shards of 25 + 5
        assert {e["shard"] for e in shard_done} == {0, 1}
        end = events[-1]
        assert end["trials"] == 30
        assert sum(end["outcomes"].values()) == 30


class TestPrometheusExport:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.count("campaign.trials", 200)
        reg.count("campaign.outcome.data-corrupt", 5)
        reg.gauge("eval.points", 12)
        for v in (1.0, 3.0):
            reg.observe("campaign.detection_latency", v)
        return reg

    def test_name_sanitization(self):
        assert prometheus_name("campaign.trials") == "repro_campaign_trials"
        assert (
            prometheus_name("campaign.outcome.data-corrupt")
            == "repro_campaign_outcome_data_corrupt"
        )
        assert prometheus_name("9lives") == "repro__9lives"

    def test_counters_get_total_suffix_and_type(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_campaign_trials_total counter" in text
        assert "repro_campaign_trials_total 200" in text

    def test_histograms_export_as_summaries(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_campaign_detection_latency summary" in text
        assert "repro_campaign_detection_latency_count 2" in text
        assert "repro_campaign_detection_latency_sum 4" in text
        assert "repro_campaign_detection_latency_min 1" in text
        assert "repro_campaign_detection_latency_max 3" in text

    def test_gauges(self):
        text = to_prometheus(self._registry())
        assert "# TYPE repro_eval_points gauge" in text
        assert "repro_eval_points 12" in text

    def test_accepts_snapshot_dict(self):
        reg = self._registry()
        assert to_prometheus(reg) == to_prometheus(reg.snapshot())

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""

    def test_json_roundtrip(self):
        reg = self._registry()
        payload = json.loads(to_json(reg))
        assert payload["counters"]["campaign.trials"] == 200
        assert payload["histograms"]["campaign.detection_latency"]["count"] == 2

    def test_write_metrics_format_by_suffix(self, tmp_path):
        reg = self._registry()
        prom = write_metrics(reg, tmp_path / "m.prom")
        js = write_metrics(reg, tmp_path / "m.json")
        assert "# TYPE" in prom.read_text()
        assert json.loads(js.read_text())["counters"]["campaign.trials"] == 200


def _manifest(**over) -> dict:
    base = {
        "kind": "inject",
        "created_at": "2026-08-08T12:00:00Z",
        "workload": "workload:parser",
        "scheme": "casted",
        "fault_model": "reg-bit",
        "backend": "compiled",
        "trials": 100,
        "seed": 2013,
        "jobs": 2,
        "effective_cores": 4,
        "timings": {"wall_s": 1.5, "trials_per_s": 66.7},
        "counters": {"campaign.trials": 100, "campaign.faults_injected": 120},
    }
    base.update(over)
    return base


class TestRunLedger:
    def test_record_and_load(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record(
            _manifest(), metrics={"counters": {"campaign.trials": 100}}
        )
        rec = ledger.load(run_id)
        assert rec.manifest["scheme"] == "casted"
        assert rec.manifest["run_id"] == run_id
        assert rec.metrics["counters"]["campaign.trials"] == 100

    def test_run_id_is_content_addressed(self, tmp_path):
        assert run_id_for(_manifest()) == run_id_for(_manifest())
        assert run_id_for(_manifest()) != run_id_for(_manifest(seed=7))
        ledger = RunLedger(tmp_path / "runs")
        a = ledger.record(_manifest())
        b = ledger.record(_manifest())  # idempotent republish
        assert a == b
        assert len(ledger.list_runs()) == 1

    def test_prefix_load_and_ambiguity(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record(_manifest())
        assert ledger.load(run_id[:4]).run_id == run_id
        with pytest.raises(ReproError, match="no run"):
            ledger.load("ffffffffffff")
        with pytest.raises(ReproError, match="ambiguous"):
            ledger.record(_manifest(seed=99))
            ledger.load("")

    def test_list_newest_first(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(_manifest(created_at="2026-08-08T10:00:00Z"))
        newest = ledger.record(_manifest(created_at="2026-08-08T11:00:00Z"))
        records = ledger.list_runs()
        assert [r.run_id for r in records][0] == newest

    def test_events_and_trace_artifacts(self, tmp_path):
        src = tmp_path / "src.events.jsonl"
        log = EventLog(path=src)
        log.emit("campaign-start", trials=100)
        log.close()
        trace = [
            {"ev": "X", "name": "shard", "cat": "campaign", "ts": 0.1,
             "dur": 0.2, "depth": 0, "args": {}},
        ]
        ledger = RunLedger(tmp_path / "runs")
        run_id = ledger.record(_manifest(), events_src=src, trace_events=trace)
        rec = ledger.load(run_id)
        assert rec.events_path is not None
        assert read_events(rec.events_path)[0]["kind"] == "campaign-start"
        assert rec.trace_path is not None
        payload = json.loads(rec.trace_path.read_text())
        assert any(e.get("name") == "shard" for e in payload["traceEvents"])

    def test_no_ledger_dir(self, tmp_path):
        ledger = RunLedger(tmp_path / "missing")
        assert ledger.list_runs() == []
        with pytest.raises(ReproError, match="no run ledger"):
            ledger.load("abc")

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "env-runs"))
        assert RunLedger().root == tmp_path / "env-runs"


class TestLedgerQuarantine:
    def test_corrupt_manifest_quarantined_and_skipped(self, tmp_path, caplog):
        ledger = RunLedger(tmp_path / "runs")
        good = ledger.record(_manifest())
        bad_dir = tmp_path / "runs" / "deadbeef0000"
        bad_dir.mkdir()
        (bad_dir / "manifest.json").write_text("{ not json")
        with caplog.at_level(logging.WARNING, logger="repro.obs.ledger"):
            records = ledger.list_runs()
        assert [r.run_id for r in records] == [good]
        warnings = [
            r for r in caplog.records if "corrupt run manifest" in r.message
        ]
        assert len(warnings) == 1
        # quarantined, not destroyed
        assert (bad_dir / "manifest.json.bad").read_text() == "{ not json"
        assert not (bad_dir / "manifest.json").exists()

    def test_quarantined_run_does_not_rewarn(self, tmp_path, caplog):
        ledger = RunLedger(tmp_path / "runs")
        ledger.record(_manifest())
        bad_dir = tmp_path / "runs" / "deadbeef0000"
        bad_dir.mkdir()
        (bad_dir / "manifest.json").write_text("[1, 2]")
        ledger.list_runs()  # first scan quarantines
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.obs.ledger"):
            ledger.list_runs()
        assert not any(
            "corrupt run manifest" in r.message for r in caplog.records
        )


class TestDiffRuns:
    def test_diff_marks_config_and_deltas(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs")
        a = ledger.load(ledger.record(_manifest()))
        b = ledger.load(
            ledger.record(
                _manifest(
                    scheme="noed",
                    timings={"wall_s": 3.0, "trials_per_s": 33.3},
                    counters={"campaign.trials": 100},
                )
            )
        )
        text = diff_runs(a, b)
        assert "scheme" in text and "noed" in text and "*" in text
        assert "wall_s" in text and "+1.5" in text
        # counter missing from b is treated as zero
        assert "campaign.faults_injected" in text and "-120" in text


class TestRunsCLI:
    def _record_two(self, runs_dir) -> tuple[str, str]:
        ledger = RunLedger(runs_dir)
        a = ledger.record(_manifest())
        b = ledger.record(_manifest(scheme="noed", seed=7))
        return a, b

    def test_list_show_diff(self, tmp_path, capsys):
        from repro.cli import main

        runs_dir = str(tmp_path / "runs")
        a, b = self._record_two(runs_dir)
        assert main(["runs", "list", "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert a in out and b in out and "run ledger (2 runs)" in out

        assert main(["runs", "show", a[:6], "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert f"run {a}" in out and "casted" in out

        assert main(["runs", "diff", a, b, "--runs-dir", runs_dir]) == 0
        out = capsys.readouterr().out
        assert "run diff" in out and "scheme" in out

    def test_show_needs_one_id(self, tmp_path, capsys):
        from repro.cli import main

        runs_dir = str(tmp_path / "runs")
        self._record_two(runs_dir)
        assert main(["runs", "show", "--runs-dir", runs_dir]) == 2
        assert "exactly one run id" in capsys.readouterr().err

    def test_diff_needs_two_ids(self, tmp_path, capsys):
        from repro.cli import main

        runs_dir = str(tmp_path / "runs")
        a, _ = self._record_two(runs_dir)
        assert main(["runs", "diff", a, "--runs-dir", runs_dir]) == 2
        assert "exactly two run ids" in capsys.readouterr().err

    def test_unknown_run_id(self, tmp_path, capsys):
        from repro.cli import main

        runs_dir = str(tmp_path / "runs")
        self._record_two(runs_dir)
        assert main(["runs", "show", "ffffffffffff", "--runs-dir", runs_dir]) == 2
        assert "no run" in capsys.readouterr().err


class TestInjectLedgerCLI:
    def test_inject_records_run_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        runs_dir = str(tmp_path / "runs")
        rc = main(
            ["inject", "workload:cjpeg", "--scheme", "noed", "--trials", "30",
             "--issue", "2", "--delay", "1", "--jobs", "2",
             "--ledger", "--runs-dir", runs_dir]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "[ledger] recorded run" in err
        ledger = RunLedger(runs_dir)
        (rec,) = ledger.list_runs()
        m = rec.manifest
        assert m["kind"] == "inject"
        assert m["workload"] == "workload:cjpeg"
        assert m["scheme"] == "noed"
        assert m["trials"] == 30 and m["jobs"] == 2
        assert m["counters"]["campaign.trials"] == 30
        assert m["timings"]["wall_s"] > 0
        # all three artifacts land next to the manifest
        rec = ledger.load(rec.run_id)
        assert rec.metrics is not None
        assert rec.events_path is not None and rec.trace_path is not None
        kinds = [e["kind"] for e in read_events(rec.events_path)]
        assert "campaign-start" in kinds and "campaign-end" in kinds

    def test_metrics_out_and_events_flags(self, tmp_path, capsys):
        from repro.cli import main

        prom = tmp_path / "m.prom"
        events = tmp_path / "run.events.jsonl"
        rc = main(
            ["inject", "workload:cjpeg", "--scheme", "noed", "--trials", "5",
             "--issue", "2", "--delay", "1",
             "--metrics-out", str(prom), "--events", str(events)]
        )
        assert rc == 0
        assert "repro_campaign_trials_total 5" in prom.read_text()
        kinds = [e["kind"] for e in read_events(events)]
        assert kinds[0] == "campaign-start" and kinds[-1] == "campaign-end"


class TestStaleStageSweep:
    """Orphaned ``.stage-*`` dirs (a publisher killed mid-record) are swept."""

    def _orphan(self, root, age_s: float):
        import os
        import time

        stage = root / f".stage-99999-{int(age_s)}"
        stage.mkdir(parents=True)
        (stage / "manifest.json").write_text("{}")
        old = time.time() - age_s
        os.utime(stage, (old, old))
        return stage

    def test_old_stage_swept_on_record(self, tmp_path, caplog):
        root = tmp_path / "runs"
        root.mkdir()
        stale = self._orphan(root, age_s=7200)
        with caplog.at_level(logging.WARNING, logger="repro.obs.ledger"):
            RunLedger(root).record(_manifest())
        assert not stale.exists()
        assert any("stage" in r.message for r in caplog.records)

    def test_fresh_stage_left_alone(self, tmp_path):
        root = tmp_path / "runs"
        root.mkdir()
        live = self._orphan(root, age_s=10)  # a concurrent publisher
        RunLedger(root).record(_manifest())
        assert live.exists()

    def test_sweep_on_list_runs(self, tmp_path):
        root = tmp_path / "runs"
        root.mkdir()
        stale = self._orphan(root, age_s=7200)
        assert RunLedger(root).list_runs() == []
        assert not stale.exists()

    def test_sweep_runs_once_per_instance(self, tmp_path):
        root = tmp_path / "runs"
        root.mkdir()
        ledger = RunLedger(root)
        ledger.list_runs()
        stale = self._orphan(root, age_s=7200)
        ledger.list_runs()  # second call on the same instance: no sweep
        assert stale.exists()
        RunLedger(root).list_runs()  # a fresh instance sweeps it
        assert not stale.exists()
