import pytest

from repro.errors import IRError
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.registers import GP, PR


def add(dest, a, b):
    return Instruction(Opcode.ADD, dests=(dest,), srcs=(a, b))


class TestShapeValidation:
    def test_valid_add(self):
        insn = add(GP(0), GP(1), GP(2))
        assert insn.dest == GP(0)
        assert insn.reads() == (GP(1), GP(2))

    def test_add_with_immediate_drops_last_src(self):
        insn = Instruction(Opcode.ADD, dests=(GP(0),), srcs=(GP(1),), imm=5)
        assert insn.imm == 5

    def test_wrong_src_count(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, dests=(GP(0),), srcs=(GP(1),))

    def test_wrong_register_class(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, dests=(GP(0),), srcs=(GP(1), PR(0)))

    def test_missing_dest(self):
        with pytest.raises(IRError):
            Instruction(Opcode.ADD, srcs=(GP(1), GP(2)))

    def test_store_has_no_dest(self):
        with pytest.raises(IRError):
            Instruction(Opcode.STORE, dests=(GP(0),), srcs=(GP(1), GP(2)), imm=0)

    def test_movi_requires_imm(self):
        with pytest.raises(IRError):
            Instruction(Opcode.MOVI, dests=(GP(0),))

    def test_imm_rejected_where_not_allowed(self):
        with pytest.raises(IRError):
            Instruction(Opcode.MOV, dests=(GP(0),), srcs=(GP(1),), imm=3)

    def test_branch_target_arity(self):
        with pytest.raises(IRError):
            Instruction(Opcode.BRT, srcs=(PR(0),), targets=("one",))
        Instruction(Opcode.BRT, srcs=(PR(0),), targets=("a", "b"))

    def test_chkbr_needs_one_target(self):
        Instruction(Opcode.CHKBR, srcs=(PR(0),), targets=("__detect__",))
        with pytest.raises(IRError):
            Instruction(Opcode.CHKBR, srcs=(PR(0),), targets=())


class TestMetadata:
    def test_uids_unique(self):
        a = add(GP(0), GP(1), GP(2))
        b = add(GP(0), GP(1), GP(2))
        assert a.uid != b.uid

    def test_clone_fresh_uid_same_shape(self):
        a = add(GP(0), GP(1), GP(2))
        c = a.clone()
        assert c.uid != a.uid
        assert c.opcode is a.opcode
        assert c.dests == a.dests and c.srcs == a.srcs

    def test_protectable(self):
        assert add(GP(0), GP(1), GP(2)).protectable
        lib = add(GP(0), GP(1), GP(2))
        lib.from_library = True
        assert not lib.protectable
        dup = add(GP(0), GP(1), GP(2))
        dup.role = Role.DUP
        assert not dup.protectable
        store = Instruction(Opcode.STORE, srcs=(GP(0), GP(1)), imm=0)
        assert not store.protectable

    def test_redundant_roles(self):
        insn = add(GP(0), GP(1), GP(2))
        assert not insn.is_redundant
        for role in (Role.DUP, Role.SHADOW_COPY, Role.CHECK):
            insn.role = role
            assert insn.is_redundant
        insn.role = Role.SPILL
        assert not insn.is_redundant

    def test_replace_srcs_and_dests(self):
        insn = add(GP(0), GP(1), GP(2))
        insn.replace_srcs({GP(1): GP(9)})
        assert insn.srcs == (GP(9), GP(2))
        insn.replace_dests({GP(0): GP(7)})
        assert insn.dests == (GP(7),)

    def test_str_contains_tags(self):
        insn = add(GP(0), GP(1), GP(2))
        insn.role = Role.DUP
        insn.cluster = 1
        text = str(insn)
        assert "dup" in text and "cl1" in text


class TestOpInfoTable:
    def test_every_opcode_covered(self):
        assert set(OP_INFO) == set(Opcode)

    def test_replicable_categories(self):
        assert OP_INFO[Opcode.ADD].replicable
        assert OP_INFO[Opcode.LOAD].replicable
        assert not OP_INFO[Opcode.STORE].replicable
        assert not OP_INFO[Opcode.OUT].replicable
        assert not OP_INFO[Opcode.BRT].replicable
        assert not OP_INFO[Opcode.JMP].replicable
        assert not OP_INFO[Opcode.HALT].replicable
        assert not OP_INFO[Opcode.CHKBR].replicable

    def test_memory_flags(self):
        assert OP_INFO[Opcode.LOAD].is_mem and OP_INFO[Opcode.LOAD].is_load
        assert OP_INFO[Opcode.STOREFP].is_store
        assert OP_INFO[Opcode.LOADFP].is_load
        assert not OP_INFO[Opcode.OUT].is_mem

    def test_mnemonics_unique(self):
        mnemonics = [info.mnemonic for info in OP_INFO.values()]
        assert len(mnemonics) == len(set(mnemonics))
