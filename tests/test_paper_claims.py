"""Shape-level assertions of the paper's evaluation claims (§IV).

These run on a reduced sweep (two contrasting workloads, corner
configurations) so the suite stays fast; the full-grid numbers live in the
benchmark harness and EXPERIMENTS.md.
"""

import pytest

from repro.eval.experiment import Evaluator
from repro.eval.metrics import slowdown
from repro.faults.classify import Outcome
from repro.pipeline import Scheme

WORKLOADS = ("mcf", "h263enc")


@pytest.fixture(scope="module")
def ev():
    return Evaluator(seed=2013, cache=False)


class TestPerformanceShapes:
    def test_sced_improves_with_issue_width(self, ev):
        """§IV-B1: SCED's performance improves dramatically as width grows."""
        for w in WORKLOADS:
            assert slowdown(ev, w, Scheme.SCED, 4, 1) < slowdown(
                ev, w, Scheme.SCED, 1, 1
            )

    def test_sced_immune_to_delay(self, ev):
        for w in WORKLOADS:
            assert ev.perf(w, Scheme.SCED, 2, 1).cycles == ev.perf(
                w, Scheme.SCED, 2, 4
            ).cycles

    def test_dced_degrades_with_delay(self, ev):
        """§IV-B3: the bigger the delay, the worse DCED performs."""
        for w in WORKLOADS:
            assert ev.perf(w, Scheme.DCED, 2, 4).cycles > ev.perf(
                w, Scheme.DCED, 2, 1
            ).cycles

    def test_dced_wins_when_narrow_sced_wins_when_wide(self, ev):
        """§IV-B5: the crossover between the fixed schemes."""
        w = "mcf"
        assert (
            ev.perf(w, Scheme.DCED, 1, 1).cycles
            < ev.perf(w, Scheme.SCED, 1, 1).cycles
        )
        assert (
            ev.perf(w, Scheme.SCED, 4, 4).cycles
            < ev.perf(w, Scheme.DCED, 4, 4).cycles
        )

    def test_casted_tracks_the_best_fixed(self, ev):
        """§IV-B6: CASTED at least roughly matches the better fixed scheme."""
        for w in WORKLOADS:
            for iw, d in ((1, 1), (1, 4), (2, 2), (4, 1), (4, 4)):
                best = min(
                    ev.perf(w, Scheme.SCED, iw, d).cycles,
                    ev.perf(w, Scheme.DCED, iw, d).cycles,
                )
                casted = ev.perf(w, Scheme.CASTED, iw, d).cycles
                assert casted <= best * 1.05, (w, iw, d)

    def test_casted_sometimes_beats_the_best(self, ev):
        """§IV-B6: CASTED outperforms the best fixed scheme somewhere."""
        wins = 0
        for w in WORKLOADS:
            for iw in (1, 2, 4):
                for d in (1, 2, 4):
                    best = min(
                        ev.perf(w, Scheme.SCED, iw, d).cycles,
                        ev.perf(w, Scheme.DCED, iw, d).cycles,
                    )
                    if ev.perf(w, Scheme.CASTED, iw, d).cycles < best:
                        wins += 1
        assert wins >= 1

    def test_slowdown_ranges_reasonable(self, ev):
        """§IV-B: SCED 1.34-2.22, DCED 1.31-3.32, CASTED 1.19-2.1 in the
        paper; ours must land in the same regime (1 < x < 3.5)."""
        for w in WORKLOADS:
            for scheme in (Scheme.SCED, Scheme.DCED, Scheme.CASTED):
                for iw, d in ((1, 1), (2, 2), (4, 4)):
                    s = slowdown(ev, w, scheme, iw, d)
                    assert 1.0 < s < 3.5, (w, scheme, iw, d, s)

    def test_dced_overhead_grows_with_width(self, ev):
        """§IV-B4: the 'strange phenomenon' — DCED's *relative* overhead
        increases with issue width (NOED scales, DCED already spent its
        parallelism)."""
        w = "mcf"
        assert slowdown(ev, w, Scheme.DCED, 4, 1) > slowdown(
            ev, w, Scheme.DCED, 1, 1
        )


class TestIlpShapes:
    def test_sced_scales_better_than_noed(self, ev):
        """§IV-B2: the redundant code adds ILP."""
        from repro.eval.metrics import ilp_scaling

        for w in WORKLOADS:
            noed = ilp_scaling(ev, w, Scheme.NOED)
            sced = ilp_scaling(ev, w, Scheme.SCED)
            assert sced[-1] > noed[-1], w

    def test_dced_has_a_head_start(self, ev):
        """§IV-B4: DCED scales worse than SCED."""
        from repro.eval.metrics import ilp_scaling

        for w in WORKLOADS:
            assert ilp_scaling(ev, w, Scheme.DCED)[-1] < ilp_scaling(
                ev, w, Scheme.SCED
            )[-1]


class TestCoverageShapes:
    TRIALS = 150

    def test_protection_removes_most_sdc(self, ev):
        """Fig. 9: protected schemes leave only the library-residual SDC."""
        for w in WORKLOADS:
            noed = ev.coverage(w, Scheme.NOED, 2, 2, self.TRIALS)
            for scheme in (Scheme.SCED, Scheme.DCED, Scheme.CASTED):
                prot = ev.coverage(w, scheme, 2, 2, self.TRIALS)
                assert prot.fraction(Outcome.SDC) < noed.fraction(Outcome.SDC)
                assert prot.fraction(Outcome.DETECTED) > 0.25

    def test_schemes_have_equivalent_coverage(self, ev):
        """Fig. 9/10: placement does not change what is detected."""
        from repro.utils.stats import confidence_interval_95

        for w in WORKLOADS:
            fracs = [
                ev.coverage(w, s, 2, 2, self.TRIALS).coverage
                for s in (Scheme.SCED, Scheme.DCED, Scheme.CASTED)
            ]
            # all within each other's 95% confidence bands
            for f in fracs:
                lo, hi = confidence_interval_95(
                    int(f * self.TRIALS), self.TRIALS
                )
                assert lo <= max(fracs) + 1e-9
                assert hi >= min(fracs) - 1e-9

    def test_coverage_stable_across_configs(self, ev):
        """Fig. 10: architecture configuration does not affect coverage."""
        vals = [
            ev.coverage("mcf", Scheme.CASTED, iw, d, self.TRIALS).coverage
            for iw, d in ((1, 1), (2, 2), (4, 4))
        ]
        assert max(vals) - min(vals) < 0.15
