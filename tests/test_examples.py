"""The example scripts must run clean end to end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str], capsys) -> str:
    old = sys.argv
    sys.argv = [name] + argv
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", [], capsys)
        assert "CASTED" in out and "slowdown" in out
        assert "identical output" in out

    def test_ir_pipeline_tour(self, capsys):
        out = run_example("ir_pipeline_tour.py", [], capsys)
        assert "after replication" in out
        assert "after check emission" in out
        assert "final loop schedule" in out

    def test_custom_workload(self, capsys):
        out = run_example("custom_workload.py", [], capsys)
        assert "fault campaign" in out
        assert "coverage" in out

    @pytest.mark.heavy
    def test_adaptive_placement(self, capsys):
        out = run_example("adaptive_placement.py", ["mcf"], capsys)
        assert "best fixed" in out
        assert "CASTED" in out

    @pytest.mark.heavy
    def test_fault_injection_campaign(self, capsys):
        out = run_example("fault_injection_campaign.py", ["mcf", "60"], capsys)
        assert "detected" in out

    @pytest.mark.heavy
    def test_recovery_demo(self, capsys):
        out = run_example("recovery_demo.py", ["mcf", "60"], capsys)
        assert "recovered" in out
