"""The parallel evaluation engine: sharded campaigns, concurrent sweeps.

The load-bearing property throughout is the determinism contract: for a
given seed, outcome counts / records / cache files are identical whether
the work runs serially or fanned out over a process pool.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.eval.experiment import Evaluator
from repro.faults.injector import CampaignResult, FaultInjector
from repro.machine.config import MachineConfig
from repro.obs.progress import ProgressEvent, ProgressTracker
from repro.parallel import (
    SHARD_TRIALS,
    effective_cores,
    parallel_map,
    plan_shards,
    resolve_jobs,
)
from repro.pipeline import Scheme, compile_program
from repro.workloads import get_workload
from tests.conftest import build_loop_program


class TestResolveJobs:
    def test_explicit(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(1) == 1

    def test_zero_means_all_effective_cores(self):
        assert resolve_jobs(0) == effective_cores()

    def test_none_defaults_to_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        monkeypatch.setenv("REPRO_JOBS", "0")
        assert resolve_jobs(None) == effective_cores()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestEffectiveCores:
    def test_positive_and_bounded_by_cpu_count(self):
        n = effective_cores()
        assert 1 <= n <= (os.cpu_count() or 1)

    def test_honours_scheduler_affinity(self):
        if not hasattr(os, "sched_getaffinity"):  # pragma: no cover
            pytest.skip("no scheduler affinity on this platform")
        assert effective_cores() <= len(os.sched_getaffinity(0))

    def test_resolve_jobs_zero_uses_it(self, monkeypatch):
        import repro.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "effective_cores", lambda: 3)
        assert parallel_mod.resolve_jobs(0) == 3

    def test_cgroup_quota_rounds_up(self, monkeypatch):
        import repro.parallel as parallel_mod

        monkeypatch.setattr(
            parallel_mod, "_cgroup_cpu_quota", lambda: None
        )
        assert parallel_mod.effective_cores() >= 1


class TestPlanShards:
    def test_exact_multiple(self):
        assert plan_shards(50, 25) == [25, 25]

    def test_remainder(self):
        assert plan_shards(60, 25) == [25, 25, 10]

    def test_small_and_empty(self):
        assert plan_shards(7, 25) == [7]
        assert plan_shards(0, 25) == []

    def test_plan_independent_of_jobs(self):
        # the whole contract: the decomposition is a function of the trial
        # count alone
        assert sum(plan_shards(313)) == 313

    def test_invalid(self):
        with pytest.raises(ValueError):
            plan_shards(-1)
        with pytest.raises(ValueError):
            plan_shards(10, 0)


def _double(x):
    return x * 2


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


class TestParallelMap:
    def test_inline_preserves_order(self):
        assert parallel_map(_double, [1, 2, 3], jobs=1) == [2, 4, 6]

    def test_pool_preserves_order(self):
        assert parallel_map(_double, list(range(8)), jobs=2) == [
            0, 2, 4, 6, 8, 10, 12, 14,
        ]

    def test_on_result_fires_per_task(self):
        seen = []
        parallel_map(_double, [1, 2, 3], jobs=2, on_result=lambda i, r: seen.append((i, r)))
        assert sorted(seen) == [(0, 2), (1, 4), (2, 6)]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError, match="boom"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], jobs=2)


@pytest.fixture(scope="module")
def loop_injector_pair():
    """Injectors over two different binaries (for determinism + merge tests)."""
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    small = compile_program(build_loop_program(8), Scheme.NOED, machine)
    sced = compile_program(build_loop_program(8), Scheme.SCED, machine)
    return (
        FaultInjector(small.program, mem_words=small.mem_words,
                      frame_words=small.frame_words),
        FaultInjector(sced.program, mem_words=sced.mem_words,
                      frame_words=sced.frame_words),
    )


class TestCampaignDeterminism:
    def test_jobs_do_not_change_outcomes_loop(self, loop_injector_pair):
        inj, _ = loop_injector_pair
        serial = inj.run_campaign(trials=60, seed=11, jobs=1)
        parallel = inj.run_campaign(trials=60, seed=11, jobs=4)
        assert serial.counts == parallel.counts
        assert serial.total_faults_injected == parallel.total_faults_injected
        assert serial.trials == parallel.trials == 60

    def test_jobs_do_not_change_outcomes_protected(self, loop_injector_pair):
        _, inj = loop_injector_pair
        serial = inj.run_campaign(trials=55, seed=3, jobs=1)
        parallel = inj.run_campaign(trials=55, seed=3, jobs=3)
        assert serial.counts == parallel.counts
        assert serial.total_faults_injected == parallel.total_faults_injected

    def test_jobs_do_not_change_outcomes_workload(self):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        cp = compile_program(get_workload("mcf").program, Scheme.CASTED, machine)
        inj = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        serial = inj.run_campaign(trials=2 * SHARD_TRIALS, seed=2013, jobs=1)
        parallel = inj.run_campaign(trials=2 * SHARD_TRIALS, seed=2013, jobs=2)
        assert serial.counts == parallel.counts
        assert serial.total_faults_injected == parallel.total_faults_injected

    def test_shards_reproduce_independently(self, loop_injector_pair):
        """A shard's outcomes depend only on (seed, shard_index)."""
        inj, _ = loop_injector_pair
        a = inj.run_shard(1, 20, seed=9)
        b = inj.run_shard(1, 20, seed=9)
        c = inj.run_shard(2, 20, seed=9)
        assert a == b
        assert a != c  # different stream (vanishingly unlikely to collide)

    def test_parallel_progress_aggregates(self, loop_injector_pair):
        inj, _ = loop_injector_pair
        events: list[ProgressEvent] = []
        res = inj.run_campaign(
            trials=60, seed=5, jobs=2, progress=events.append, heartbeat=25
        )
        assert events, "no heartbeats fired"
        assert events[-1].done == res.trials == 60
        assert sum(events[-1].counts.values()) == 60


class TestMergedValidation:
    def test_merge_same_binary_ok(self, loop_injector_pair):
        inj, _ = loop_injector_pair
        a = inj.run_campaign(trials=20, seed=1)
        b = inj.run_campaign(trials=30, seed=2)
        m = a.merged(b)
        assert m.trials == 50
        assert m.golden_dyn == a.golden_dyn

    def test_merge_different_binaries_rejected(self, loop_injector_pair):
        inj_a, inj_b = loop_injector_pair
        a = inj_a.run_campaign(trials=10, seed=1)
        b = inj_b.run_campaign(trials=10, seed=1)
        assert a.golden_dyn != b.golden_dyn
        with pytest.raises(ValueError, match="golden_dyn"):
            a.merged(b)

    def test_merge_plain_results(self):
        a = CampaignResult(trials=5, counts={}, golden_dyn=100)
        b = CampaignResult(trials=5, counts={}, golden_dyn=200)
        with pytest.raises(ValueError):
            a.merged(b)


class TestProgressAdvance:
    def test_advance_crosses_heartbeat_boundaries(self):
        events = []
        t = ProgressTracker(100, events.append, every=25)
        t.advance(10, {})   # 10: no heartbeat
        t.advance(20, {})   # 30: crossed 25
        t.advance(40, {})   # 70: crossed 50
        t.advance(30, {})   # 100: crossed 75 + end
        assert [e.done for e in events] == [30, 70, 100]

    def test_advance_zero_is_noop(self):
        events = []
        t = ProgressTracker(10, events.append, every=1)
        t.advance(0, {})
        assert not events

    def test_advance_negative_rejected(self):
        t = ProgressTracker(10, None, every=1)
        with pytest.raises(ValueError):
            t.advance(-1, {})

    def test_step_still_fires_like_before(self):
        events = []
        t = ProgressTracker(9, events.append, every=4)
        for _ in range(9):
            t.step({})
        assert [e.done for e in events] == [4, 8, 9]


class TestEvaluatorAtomicStore:
    def test_no_temp_files_left(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ev = Evaluator(seed=5, cache=True)
        ev.perf("mcf", Scheme.NOED, 1, 1)
        files = list(tmp_path.iterdir())
        assert files and all(p.suffix == ".json" for p in files)
        assert not list(tmp_path.glob("*.tmp"))

    def test_store_overwrites_corrupt_entry_atomically(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ev = Evaluator(seed=5, cache=True)
        rec = ev.perf("mcf", Scheme.NOED, 1, 1)
        path = next(tmp_path.glob("*.json"))
        path.write_text('{"trunca')  # simulate an interrupted legacy writer
        ev2 = Evaluator(seed=5, cache=True)
        rec2 = ev2.perf("mcf", Scheme.NOED, 1, 1)
        assert rec2 == rec
        json.loads(path.read_text())  # healed on disk


class TestSweepDeterminism:
    POINTS = [("mcf", Scheme.CASTED, 2, 1), ("mcf", Scheme.NOED, 1, 1)]

    @staticmethod
    def _cache_contents(d: Path) -> dict[str, dict]:
        return {p.name: json.loads(p.read_text()) for p in d.glob("*.json")}

    def test_parallel_sweep_matches_serial_cache_files(
        self, tmp_path, monkeypatch
    ):
        d1, d2 = tmp_path / "serial", tmp_path / "parallel"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(d1))
        serial = Evaluator(seed=7, cache=True).sweep(
            self.POINTS, trials=SHARD_TRIALS, jobs=1
        )
        monkeypatch.setenv("REPRO_CACHE_DIR", str(d2))
        parallel = Evaluator(seed=7, cache=True).sweep(
            self.POINTS, trials=SHARD_TRIALS, jobs=2
        )
        assert serial == parallel
        c1, c2 = self._cache_contents(d1), self._cache_contents(d2)
        assert c1 and c1 == c2

    def test_sweep_returns_records_in_point_order(self):
        ev = Evaluator(seed=7, cache=False)
        results = ev.sweep(self.POINTS, jobs=1)
        assert [r["perf"].scheme for r in results] == ["casted", "noed"]
        assert all(r["coverage"] is None for r in results)

    def test_sweep_accepts_scheme_strings_and_uses_cache(self):
        ev = Evaluator(seed=7, cache=False)
        a = ev.sweep([("mcf", "noed", 2, 1)], jobs=1)[0]["perf"]
        b = ev.perf("mcf", Scheme.NOED, 2, 1)
        assert a == b

    def test_sweep_progress_counts_computed_points(self):
        ev = Evaluator(seed=7, cache=False)
        events = []
        ev.sweep(self.POINTS, jobs=1, progress=events.append)
        assert events[-1].done == events[-1].total == len(self.POINTS)
        # everything cached now: a second sweep computes nothing
        events2 = []
        ev.sweep(self.POINTS, jobs=1, progress=events2.append)
        assert not events2


class TestCliJobs:
    def test_inject_jobs(self, capsys, tmp_path):
        from repro.cli import main

        f = tmp_path / "p.mc"
        f.write_text(
            "func main() { var s = 0;"
            " for (var i = 0; i < 15; i = i + 1) { s = s + i; }"
            " out(s); return 0; }"
        )
        assert main(
            ["inject", str(f), "--scheme", "noed", "--trials", "30", "--jobs", "2"]
        ) == 0
        assert "30 faults" in capsys.readouterr().out

    def test_sweep_jobs(self, capsys):
        from repro.cli import main

        assert main(
            ["sweep", "workload:mcf", "--issues", "1", "2", "--delays", "1",
             "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "iw1 d1" in out and "iw2 d1" in out

    def test_compile_multiple_programs(self, capsys):
        from repro.cli import main

        assert main(
            ["compile", "workload:mcf", "workload:vpr", "--scheme", "noed",
             "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "workload:mcf under noed" in out
        assert "workload:vpr under noed" in out

    def test_run_multiple_programs(self, capsys):
        from repro.cli import main

        assert main(["run", "workload:mcf", "workload:vpr", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert out.count("IPC") == 2
        assert "== workload:mcf ==" in out
