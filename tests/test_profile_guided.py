"""Profile-guided CASTED placement (extension)."""

import pytest

from repro.ir.interp import Interpreter
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, collect_block_profile, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload
from tests.conftest import build_loop_program


class TestCollectBlockProfile:
    def test_counts_match_trace(self, loop_program):
        profile = collect_block_profile(loop_program)
        assert profile == {"entry": 1, "loop": 10, "exit": 1}

    def test_profile_deterministic(self):
        prog = get_workload("mcf").program
        assert collect_block_profile(prog) == collect_block_profile(prog)


class TestProfileGuidedCasted:
    def test_still_functionally_correct(self, machine):
        prog = build_loop_program()
        golden = Interpreter(prog).run()
        profile = collect_block_profile(prog)
        cp = compile_program(prog, Scheme.CASTED, machine, block_profile=profile)
        assert VLIWExecutor(cp).run().output == golden.output

    def test_never_slower_on_known_hard_case(self):
        """parser at issue 1 / delay 3 was the heuristic's worst case."""
        prog = get_workload("parser").program
        profile = collect_block_profile(prog)
        machine = MachineConfig(issue_width=1, inter_cluster_delay=3)
        heur = VLIWExecutor(
            compile_program(prog, Scheme.CASTED, machine)
        ).run().cycles
        pgo = VLIWExecutor(
            compile_program(prog, Scheme.CASTED, machine, block_profile=profile)
        ).run().cycles
        assert pgo <= heur

    def test_profile_keys_surviving_blocks(self, machine):
        """CFG simplification merges blocks, but every label that survives
        to the back end keeps its profile count (labels are never renamed),
        so the weighting stays meaningful."""
        prog = get_workload("mcf").program
        profile = collect_block_profile(prog)
        cp = compile_program(prog, Scheme.CASTED, machine, block_profile=profile)
        compiled_labels = set(cp.program.main.block_labels())
        covered = [lb for lb in compiled_labels if lb in profile]
        assert len(covered) >= len(compiled_labels) // 2
        # the hottest surviving block must carry a loop-grade count
        assert max(profile.get(lb, 0) for lb in compiled_labels) > 100

    def test_empty_profile_falls_back_gracefully(self, machine):
        prog = build_loop_program()
        golden = Interpreter(prog).run()
        cp = compile_program(prog, Scheme.CASTED, machine, block_profile={})
        assert VLIWExecutor(cp).run().output == golden.output

    @pytest.mark.parametrize("name", ["parser", "vpr"])
    def test_workloads_equivalent(self, name, machine):
        prog = get_workload(name).program
        golden = Interpreter(prog).run()
        profile = collect_block_profile(prog)
        cp = compile_program(prog, Scheme.CASTED, machine, block_profile=profile)
        assert VLIWExecutor(cp).run().output == golden.output
