"""Differential fuzzing of the whole pipeline.

Hypothesis generates random (but always well-formed) minic programs; each
one must behave *identically* under

* the sequential reference interpreter on front-end IR (golden),
* the full pipeline (optimizations -> error detection -> assignment ->
  regalloc -> scheduling) for every scheme, executed both by the reference
  interpreter and by the cycle-level VLIW executor.

Any divergence pinpoints a mis-compilation in some pass combination; the
schedule validator additionally checks every produced schedule.  This is
the single highest-leverage test in the suite: it has no opinion about
*what* the programs compute, only that protection must never change it.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir.interp import ExitKind, Interpreter
from repro.machine.config import MachineConfig
from repro.passes.schedule_check import validate_compiled
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor

# ---------------------------------------------------------------------------
# Random program generation.
#
# Programs draw from a fixed set of scalar variables (a..f), one global
# array, arithmetic that cannot trap unexpectedly (division is by a non-zero
# constant), bounded loops (the loop variable is reserved and always
# terminates), and library calls.  Every generated program halts.
# ---------------------------------------------------------------------------

_VARS = ["va", "vb", "vc", "vd"]
_ARRAY_SIZE = 16


@st.composite
def _expr(draw, depth: int) -> str:
    choices = ["lit", "var", "arr"]
    if depth < 2:
        choices += ["bin", "bin", "cmp", "call", "unary"]
    kind = draw(st.sampled_from(choices))
    if kind == "lit":
        return str(draw(st.integers(-64, 64)))
    if kind == "var":
        return draw(st.sampled_from(_VARS))
    if kind == "arr":
        idx = draw(_expr(depth + 1))
        return f"arr[({idx}) & {_ARRAY_SIZE - 1}]"
    if kind == "unary":
        op = draw(st.sampled_from(["-", "~", "!"]))
        return f"{op}({draw(_expr(depth + 1))})"
    if kind == "cmp":
        op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
        return f"(({draw(_expr(depth + 1))}) {op} ({draw(_expr(depth + 1))}))"
    if kind == "call":
        return f"mix({draw(_expr(depth + 1))})"
    op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^", "%", "/", ">>", "<<"]))
    left = draw(_expr(depth + 1))
    if op in ("%", "/"):
        return f"(({left}) {op} {draw(st.integers(1, 9))})"
    if op in (">>", "<<"):
        return f"(({left}) {op} {draw(st.integers(0, 7))})"
    return f"(({left}) {op} ({draw(_expr(depth + 1))}))"


@st.composite
def _stmt(draw, depth: int, loop_id: list[int]) -> str:
    choices = ["assign", "assign", "store", "out"]
    if depth < 2:
        choices += ["if", "loop"]
    kind = draw(st.sampled_from(choices))
    pad = "    " * (depth + 1)
    if kind == "assign":
        var = draw(st.sampled_from(_VARS))
        return f"{pad}{var} = {draw(_expr(0))};"
    if kind == "store":
        idx = draw(_expr(1))
        return f"{pad}arr[({idx}) & {_ARRAY_SIZE - 1}] = {draw(_expr(0))};"
    if kind == "out":
        return f"{pad}out({draw(_expr(0))});"
    if kind == "if":
        cond = draw(_expr(0))
        body = draw(_block(depth + 1, loop_id))
        if draw(st.booleans()):
            other = draw(_block(depth + 1, loop_id))
            return f"{pad}if ({cond}) {{\n{body}\n{pad}}} else {{\n{other}\n{pad}}}"
        return f"{pad}if ({cond}) {{\n{body}\n{pad}}}"
    # bounded loop with a reserved, monotone induction variable
    loop_id[0] += 1
    iv = f"it{loop_id[0]}"
    n = draw(st.integers(1, 6))
    body = draw(_block(depth + 1, loop_id))
    return (
        f"{pad}for (var {iv} = 0; {iv} < {n}; {iv} = {iv} + 1) {{\n"
        f"{body}\n{pad}}}"
    )


@st.composite
def _block(draw, depth: int, loop_id: list[int]) -> str:
    n = draw(st.integers(1, 3 if depth else 5))
    return "\n".join(draw(_stmt(depth, loop_id)) for _ in range(n))


@st.composite
def minic_programs(draw) -> str:
    loop_id = [0]
    body = draw(_block(0, loop_id))
    decls = "\n".join(f"    var {v} = {draw(st.integers(-20, 20))};" for v in _VARS)
    return f"""
global arr[{_ARRAY_SIZE}] = {{ 3, 1, 4, 1, 5, 9, 2, 6 }};
lib func mix(x) {{
    return x * 1103515245 + 12345;
}}
func main() {{
{decls}
{body}
    out(va + vb);
    out(vc ^ vd);
    return 0;
}}
"""


MACHINES = [
    MachineConfig(issue_width=1, inter_cluster_delay=1),
    MachineConfig(issue_width=2, inter_cluster_delay=3),
]


class TestDifferentialFuzz:
    @given(minic_programs())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_all_schemes_agree_with_golden(self, source):
        program = compile_source(source)
        golden = Interpreter(program).run(max_steps=2_000_000)
        assert golden.kind in (ExitKind.OK, ExitKind.EXCEPTION)
        machine = MACHINES[len(source) % len(MACHINES)]
        for scheme in Scheme:
            cp = compile_program(program, scheme, machine)
            validate_compiled(cp.program, cp.schedules, machine)
            ref = Interpreter(
                cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
            ).run(max_steps=4_000_000)
            assert ref.kind is golden.kind, (scheme, ref.trap)
            if golden.kind is ExitKind.OK:
                assert ref.output == golden.output, scheme
                assert ref.exit_code == golden.exit_code, scheme
                sim = VLIWExecutor(cp).run()
                assert sim.output == golden.output, scheme
                assert sim.kind is ExitKind.OK, scheme

    @given(minic_programs())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_tiny_register_files_still_correct(self, source):
        """Heavy spilling must never change behaviour."""
        from repro.errors import PassError

        program = compile_source(source)
        golden = Interpreter(program).run(max_steps=2_000_000)
        if golden.kind is not ExitKind.OK:
            return
        machine = MachineConfig(
            issue_width=2, inter_cluster_delay=1, gp_per_cluster=8, pr_per_cluster=6
        )
        try:
            cp = compile_program(program, Scheme.SCED, machine)
        except PassError as exc:
            # PR spilling is documented as unsupported: a branch-heavy
            # program can legitimately exhaust a 6-entry predicate file.
            # The property under test is about *GP* spilling.
            if "predicate register pressure" in str(exc):
                return
            raise
        sim = VLIWExecutor(cp).run()
        assert sim.output == golden.output

    @given(minic_programs())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_compiled_backend_agrees_with_interpreter(self, source):
        """The fused-superblock backend is bit-identical to the closure
        interpreter — functionally on front-end IR and cycle-exactly on a
        protected, scheduled binary."""
        program = compile_source(source)
        ref = Interpreter(program, backend="interp").run(
            max_steps=2_000_000, record_trace=True
        )
        fused = Interpreter(program, backend="compiled").run(
            max_steps=2_000_000, record_trace=True
        )
        assert fused == ref
        if ref.kind is not ExitKind.OK:
            return
        machine = MACHINES[len(source) % len(MACHINES)]
        cp = compile_program(program, Scheme.CASTED, machine)
        sim_ref = VLIWExecutor(cp, backend="interp").run()
        sim_fused = VLIWExecutor(cp, backend="compiled").run()
        assert sim_fused == sim_ref

    @given(minic_programs(), st.integers(0, 2**32))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_checkpointed_campaigns_match_replay_on_fuzzed_programs(
        self, source, seed
    ):
        """Snapshot-resume campaigns are bit-identical to replay-from-zero,
        whatever the program shape (snapshots forced on even for tiny
        programs by zeroing the eligibility floor)."""
        from repro.faults import injector as injector_mod
        from repro.faults.injector import FaultInjector

        program = compile_source(source)
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        cp = compile_program(program, Scheme.CASTED, machine)
        golden = Interpreter(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        ).run(max_steps=2_000_000)
        if golden.kind is not ExitKind.OK:
            return
        plain = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
            snapshots=False,
        )
        saved = injector_mod.SNAPSHOT_MIN_DYN
        injector_mod.SNAPSHOT_MIN_DYN = 0
        try:
            ckpt = FaultInjector(
                cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
                snapshot_count=8,
            )
        finally:
            injector_mod.SNAPSHOT_MIN_DYN = saved
        a = plain.run_campaign(trials=6, seed=seed)
        b = ckpt.run_campaign(trials=6, seed=seed)
        assert (a.counts, a.total_faults_injected, a.detection_latency_sum) == (
            b.counts, b.total_faults_injected, b.detection_latency_sum
        )

    @given(minic_programs(), st.integers(0, 2**32))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_single_fault_never_escapes_undetected_to_wrong_exit(self, source, seed):
        """A protected binary's fault outcomes stay within the taxonomy and
        campaigns never crash, whatever the program shape."""
        from repro.faults.injector import FaultInjector

        program = compile_source(source)
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        cp = compile_program(program, Scheme.CASTED, machine)
        golden = Interpreter(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        ).run(max_steps=2_000_000)
        if golden.kind is not ExitKind.OK:
            return
        injector = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        res = injector.run_campaign(trials=5, seed=seed)
        assert sum(res.counts.values()) == 5
