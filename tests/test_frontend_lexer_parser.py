import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import TokenKind, tokenize
from repro.frontend.parser import parse


class TestLexer:
    def test_kinds(self):
        toks = tokenize("func main() { var x = 0x1f; }")
        kinds = [t.kind for t in toks]
        assert TokenKind.KEYWORD in kinds
        assert TokenKind.IDENT in kinds
        assert toks[-1].kind is TokenKind.EOF

    def test_hex_literal(self):
        toks = tokenize("0xFF")
        assert toks[0].text == "0xFF"
        assert int(toks[0].text, 0) == 255

    def test_multichar_ops(self):
        toks = tokenize("a <= b << 2 && c != d")
        ops = [t.text for t in toks if t.kind is TokenKind.OP]
        assert ops == ["<=", "<<", "&&", "!="]

    def test_comments(self):
        toks = tokenize("a // line\n/* block\nmore */ b")
        idents = [t.text for t in toks if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(ParseError):
            tokenize("/* never closed")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            tokenize("a $ b")

    def test_line_col_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)

    def test_bad_hex(self):
        with pytest.raises(ParseError):
            tokenize("0x")


class TestParser:
    def test_module_structure(self):
        m = parse(
            """
            global g[4] = { 1, 2 };
            lib func helper(x) { return x; }
            func main() { return 0; }
            """
        )
        assert len(m.globals_) == 1
        assert m.globals_[0].init == (1, 2)
        assert m.function("helper").is_library
        assert not m.function("main").is_library

    def test_negative_global_init(self):
        m = parse("global g[2] = { -3, 4 };\nfunc main() { return 0; }")
        assert m.globals_[0].init == (-3, 4)

    def test_precedence(self):
        m = parse("func main() { var x = 1 + 2 * 3; return 0; }")
        decl = m.function("main").body[0]
        assert isinstance(decl.init, ast.Binary)
        assert decl.init.op == "+"
        assert isinstance(decl.init.right, ast.Binary)
        assert decl.init.right.op == "*"

    def test_left_associativity(self):
        m = parse("func main() { var x = 10 - 4 - 3; return 0; }")
        e = m.function("main").body[0].init
        assert e.op == "-"
        assert isinstance(e.left, ast.Binary)  # (10-4)-3

    def test_logical_precedence(self):
        m = parse("func main() { var x = 1 < 2 && 3 < 4 || 0; return 0; }")
        e = m.function("main").body[0].init
        assert e.op == "||"
        assert e.left.op == "&&"

    def test_unary_chain(self):
        m = parse("func main() { var x = - - 5; var y = !~x; return 0; }")
        e = m.function("main").body[0].init
        assert isinstance(e, ast.Unary) and isinstance(e.operand, ast.Unary)

    def test_if_else_if(self):
        m = parse(
            "func main() { if (1) { } else if (2) { } else { } return 0; }"
        )
        stmt = m.function("main").body[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body[0], ast.If)

    def test_for_variants(self):
        m = parse(
            """
            func main() {
                for (var i = 0; i < 3; i = i + 1) { }
                for (;;) { break; }
                return 0;
            }
            """
        )
        f1, f2 = m.function("main").body[0], m.function("main").body[1]
        assert isinstance(f1.init, ast.VarDecl)
        assert f2.init is None and f2.cond is None and f2.step is None

    def test_array_assignment_and_index(self):
        m = parse(
            "global a[4];\nfunc main() { a[1] = a[0] + 1; return 0; }"
        )
        stmt = m.function("main").body[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.target, ast.Index)

    def test_call_args(self):
        m = parse(
            "func f(a, b) { return a; }\nfunc main() { var x = f(1, 2 + 3); return 0; }"
        )
        call = m.function("main").body[0].init
        assert isinstance(call, ast.Call)
        assert len(call.args) == 2

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("func main() { var x = 1 return 0; }")

    def test_unbalanced_braces(self):
        with pytest.raises(ParseError):
            parse("func main() { return 0;")

    def test_garbage_toplevel(self):
        with pytest.raises(ParseError):
            parse("var x = 1;")

    def test_array_read_as_expression_statement(self):
        # "a[0];" is an expression statement, not an assignment
        m = parse("global a[1];\nfunc main() { a[0]; return 0; }")
        stmt = m.function("main").body[0]
        assert isinstance(stmt, ast.ExprStmt)
