"""Workload registry + per-kernel character assertions (paper Table II)."""

import pytest

from repro.ir.interp import ExitKind, Interpreter
from repro.isa.opcodes import Opcode
from repro.workloads import all_workloads, get_workload, workload_names

EXPECTED = {
    "cjpeg": "MediaBench2",
    "h263dec": "MediaBench2",
    "mpeg2dec": "MediaBench2",
    "h263enc": "MediaBench2",
    "vpr": "SPEC CINT2000",
    "mcf": "SPEC CINT2000",
    "parser": "SPEC CINT2000",
}


class TestRegistry:
    def test_all_seven_present(self):
        assert set(workload_names()) == set(EXPECTED)

    def test_suites(self):
        for w in all_workloads():
            assert w.suite == EXPECTED[w.name]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("gcc")

    def test_program_cached(self):
        w = get_workload("mcf")
        assert w.program is w.program

    def test_all_have_library_code(self):
        for w in all_workloads():
            libs = [
                i for _, _, i in w.program.main.all_instructions() if i.from_library
            ]
            assert libs, f"{w.name} must exercise the unprotected-library channel"


class TestExecution:
    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_runs_clean(self, name):
        r = Interpreter(get_workload(name).program).run()
        assert r.kind is ExitKind.OK
        assert r.exit_code == 0
        assert len(r.output) >= 3, "needs enough output for SDC detection"

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_deterministic(self, name):
        a = Interpreter(get_workload(name).program).run()
        b = Interpreter(get_workload(name).program).run()
        assert a.output == b.output

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_size_in_budget(self, name):
        r = Interpreter(get_workload(name).program).run()
        assert 20_000 < r.dyn_instructions < 400_000, r.dyn_instructions


def _dynamic_mix(name):
    """Dynamic opcode-category frequencies of a workload."""
    prog = get_workload(name).program
    r = Interpreter(prog).run(record_trace=True)
    counts = {"mem": 0, "branch": 0, "mul": 0, "total": 0}
    for label in r.block_trace:
        for insn in prog.main.block(label).instructions:
            counts["total"] += 1
            if insn.info.is_mem:
                counts["mem"] += 1
            if insn.info.is_branch:
                counts["branch"] += 1
            if insn.opcode is Opcode.MUL:
                counts["mul"] += 1
    return counts


class TestCharacter:
    """The traits the paper's discussion relies on."""

    def test_mcf_is_serial(self):
        """mcf barely speeds up with issue width (paper §IV-B2)."""
        from repro.eval.metrics import ilp_scaling
        from repro.eval import Evaluator
        from repro.pipeline import Scheme

        ev = Evaluator(cache=False)
        scaling = ilp_scaling(ev, "mcf", Scheme.NOED)
        assert scaling[-1] < 1.4

    def test_encoders_multiply_heavy(self):
        mix = _dynamic_mix("cjpeg")
        assert mix["mul"] / mix["total"] > 0.10

    def test_h263enc_branch_dense(self):
        enc = _dynamic_mix("h263enc")
        dec = _dynamic_mix("h263dec")
        assert enc["branch"] / enc["total"] > dec["branch"] / dec["total"]

    def test_parser_branchy(self):
        mix = _dynamic_mix("parser")
        assert mix["branch"] / mix["total"] > 0.10

    def test_h263enc_check_dense_after_ed(self):
        """More branches -> more checks -> denser checking code (§IV-B2)."""
        from repro.passes.base import PassContext
        from repro.passes.error_detection import ErrorDetectionPass

        def check_density(name):
            prog = get_workload(name).program.clone()
            ctx = PassContext()
            ErrorDetectionPass().run(prog, ctx)
            info = ctx.artifacts["error_detection"]
            return info.n_checks / info.n_original

        assert check_density("h263enc") > check_density("cjpeg")

    def test_cjpeg_masks_faults(self):
        """Encoding benchmarks mask more faults (paper §IV-C)."""
        from repro.faults.injector import FaultInjector
        from repro.faults.classify import Outcome

        res = {}
        for name in ("cjpeg", "mcf"):
            inj = FaultInjector(get_workload(name).program)
            res[name] = inj.run_campaign(trials=150, seed=7)
        assert (
            res["cjpeg"].fraction(Outcome.BENIGN)
            > res["mcf"].fraction(Outcome.BENIGN)
        )
