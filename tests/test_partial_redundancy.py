"""Partial redundancy (extension): check policies + criticality slicing."""

import pytest

from repro.faults.classify import Outcome
from repro.faults.injector import FaultInjector
from repro.ir.interp import Interpreter
from repro.machine.config import MachineConfig
from repro.passes.base import PassContext
from repro.passes.checks import FULL_POLICY, CheckPolicy
from repro.passes.error_detection import ErrorDetectionPass
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload
from tests.conftest import build_loop_program

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=1)


class TestCheckPolicy:
    def test_full_policy_opcodes(self):
        ops = {o.name for o in FULL_POLICY.checked_opcodes()}
        assert ops == {"STORE", "OUT", "BRT", "BRF"}

    def test_branchless_policy(self):
        ops = CheckPolicy(branches=False).checked_opcodes()
        assert all(o.name not in ("BRT", "BRF") for o in ops)

    def test_fewer_checks_without_branch_checking(self):
        full = build_loop_program()
        ctx = PassContext()
        ErrorDetectionPass().run(full, ctx)
        n_full = ctx.artifacts["error_detection"].n_checks

        lean = build_loop_program()
        ctx2 = PassContext()
        ErrorDetectionPass(check_policy=CheckPolicy(branches=False)).run(lean, ctx2)
        n_lean = ctx2.artifacts["error_detection"].n_checks
        assert 0 < n_lean < n_full

    def test_semantics_preserved(self):
        golden = Interpreter(build_loop_program()).run()
        for policy in (
            CheckPolicy(branches=False),
            CheckPolicy(stores=False),
            CheckPolicy(stores=False, branches=False, outs=False),
        ):
            cp = compile_program(
                build_loop_program(), Scheme.SCED, MACHINE, check_policy=policy
            )
            assert VLIWExecutor(cp).run().output == golden.output

    def test_policy_affects_performance(self):
        prog = get_workload("h263enc").program  # branch-dense
        full = VLIWExecutor(
            compile_program(prog, Scheme.SCED, MACHINE)
        ).run().cycles
        lean = VLIWExecutor(
            compile_program(
                prog, Scheme.SCED, MACHINE, check_policy=CheckPolicy(branches=False)
            )
        ).run().cycles
        assert lean < full


class TestCriticalitySlicing:
    def test_depth_zero_duplicates_nothing(self):
        prog = build_loop_program()
        ctx = PassContext()
        ErrorDetectionPass(protect_slice_depth=0).run(prog, ctx)
        info = ctx.artifacts["error_detection"]
        assert info.n_duplicates == 0
        assert info.n_checks == 0  # no shadows -> nothing to compare

    def test_depth_grows_protection_monotonically(self):
        counts = []
        for depth in (1, 2, 4, None):
            prog = get_workload("parser").program.clone()
            ctx = PassContext()
            ErrorDetectionPass(protect_slice_depth=depth).run(prog, ctx)
            counts.append(ctx.artifacts["error_detection"].n_duplicates)
        assert counts == sorted(counts)
        assert counts[0] > 0
        assert counts[-1] > counts[0]

    def test_semantics_preserved_at_every_depth(self):
        golden = Interpreter(build_loop_program()).run()
        for depth in (0, 1, 3):
            cp = compile_program(
                build_loop_program(), Scheme.SCED, MACHINE,
                protect_slice_depth=depth,
            )
            assert VLIWExecutor(cp).run().output == golden.output, depth

    def test_negative_depth_rejected(self):
        from repro.errors import PassError

        with pytest.raises(PassError):
            ErrorDetectionPass(protect_slice_depth=-1)

    def test_tradeoff_coverage_vs_depth(self):
        """Silent corruption shrinks monotonically as the slice deepens.

        Note the performance side is *not* monotone: shallow slices pay a
        shadow-copy at every boundary between unprotected producers and
        protected consumers, which can cost as much as the duplication it
        avoids — the reason Shoestring selects slices with cheap boundaries
        rather than by plain depth (measured in the extension benchmark).
        """
        prog = get_workload("parser").program
        noed = compile_program(prog, Scheme.NOED, MACHINE)
        ref = VLIWExecutor(noed).run().dyn_instructions

        def measure(depth):
            cp = compile_program(
                prog, Scheme.SCED, MACHINE, protect_slice_depth=depth
            )
            cycles = VLIWExecutor(cp).run().cycles
            inj = FaultInjector(
                cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
            )
            res = inj.run_campaign(120, seed=9, reference_dyn=ref)
            return cycles, res.fraction(Outcome.SDC)

        c1, sdc1 = measure(1)
        c4, sdc4 = measure(4)
        cf, sdcf = measure(None)
        assert sdc1 > sdc4 >= sdcf  # deeper slice -> better coverage
        # a mid-depth slice avoids both most boundary copies and some
        # duplication: not slower than full protection
        assert c4 <= cf * 1.02
