"""Property tests: random valid instructions round-trip through the
textual IR printer/parser losslessly."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.parser import parse_instruction
from repro.ir.printer import format_instruction
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.registers import Reg, RegClass


@st.composite
def registers(draw, rclass: RegClass) -> Reg:
    if draw(st.booleans()):
        return Reg(rclass, draw(st.integers(0, 200)))
    return Reg(
        rclass,
        draw(st.integers(0, 63)),
        virtual=False,
        cluster=draw(st.integers(0, 3)),
    )


@st.composite
def instructions(draw) -> Instruction:
    opcode = draw(st.sampled_from(sorted(Opcode, key=lambda o: o.value)))
    info = OP_INFO[opcode]

    srcs = [draw(registers(rc)) for rc in info.in_classes]
    imm = None
    if info.needs_imm:
        imm = draw(st.integers(-(2**31), 2**31))
    elif info.allow_imm and draw(st.booleans()) and srcs:
        srcs.pop()  # immediate replaces the last register input
        imm = draw(st.integers(-(2**31), 2**31))

    dests = ()
    if info.out_class is not None:
        dests = (draw(registers(info.out_class)),)

    if opcode is Opcode.CHKBR:
        targets: tuple[str, ...] = ("__detect__",)
    else:
        n = info.n_targets
        targets = tuple(f"blk{draw(st.integers(0, 99))}" for _ in range(n))

    role = Role.CHECK if opcode is Opcode.CHKBR else draw(st.sampled_from(list(Role)))
    insn = Instruction(
        opcode,
        dests=dests,
        srcs=tuple(srcs),
        imm=imm,
        targets=targets,
        role=role,
        from_library=draw(st.booleans()),
    )
    if draw(st.booleans()):
        insn.cluster = draw(st.integers(0, 3))
    if draw(st.booleans()):
        insn.dup_of = draw(st.integers(0, 10**6))
    return insn


class TestPrinterParserFuzz:
    @given(instructions())
    @settings(max_examples=300, deadline=None)
    def test_roundtrip_lossless(self, insn):
        text = format_instruction(insn)
        parsed = parse_instruction(text)
        assert parsed.opcode is insn.opcode
        assert parsed.dests == insn.dests
        assert parsed.srcs == insn.srcs
        assert parsed.imm == insn.imm
        assert parsed.targets == insn.targets
        assert parsed.role is insn.role
        assert parsed.from_library == insn.from_library
        assert parsed.cluster == insn.cluster
        assert parsed.dup_of == insn.dup_of

    @given(instructions())
    @settings(max_examples=100, deadline=None)
    def test_print_is_fixpoint(self, insn):
        once = format_instruction(insn)
        twice = format_instruction(parse_instruction(once))
        assert once == twice
