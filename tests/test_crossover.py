"""Crossover analysis module."""

import pytest

from repro.eval.crossover import (
    crossover_map,
    render_crossover_grid,
    summarize_crossovers,
)
from repro.eval.experiment import Evaluator
from repro.pipeline import Scheme


@pytest.fixture(scope="module")
def ev():
    return Evaluator(seed=1, cache=False)


@pytest.fixture(scope="module")
def mcf_map(ev):
    return crossover_map(ev, "mcf", issue_widths=(1, 2, 4), delays=(1, 4))


class TestCrossoverMap:
    def test_covers_grid(self, mcf_map):
        assert len(mcf_map.cells) == 6

    def test_mcf_has_crossover(self, mcf_map):
        """mcf shows the canonical flip: DCED narrow, SCED wide."""
        assert mcf_map.has_crossover
        narrow = next(
            c for c in mcf_map.cells if c.issue_width == 1 and c.delay == 1
        )
        wide = next(
            c for c in mcf_map.cells if c.issue_width == 4 and c.delay == 4
        )
        assert narrow.winner is Scheme.DCED
        assert wide.winner is Scheme.SCED

    def test_margins_are_fractions(self, mcf_map):
        for c in mcf_map.cells:
            assert 0.0 <= c.margin < 1.0
            assert c.casted_vs_winner > 0.5

    def test_casted_tracks_winner(self, mcf_map):
        assert mcf_map.worst_tracking() < 1.05


class TestRendering:
    def test_grid(self, mcf_map):
        text = render_crossover_grid(mcf_map, delays=(1, 4), issue_widths=(1, 2, 4))
        assert "mcf" in text
        assert "S" in text and "D" in text
        assert "legend" in text.lower() or "winner" in text

    def test_summary(self, ev):
        text = summarize_crossovers(ev, ["mcf"])
        assert "mcf" in text and "crossover" in text
