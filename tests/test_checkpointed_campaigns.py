"""Checkpointed fault injection: snapshot/resume determinism.

A checkpointing injector replays the golden run once, records architectural
snapshots, and then starts every trial from the nearest snapshot at or
before its earliest fault.  The whole feature is only admissible because it
is *invisible* in the results: every test here asserts bit-identical
outcomes between replay-from-zero and snapshot-resume, across snapshot
intervals, backends, fault models and ``jobs`` settings.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.frontend import compile_source
from repro.faults.injector import FaultInjector
from repro.ir.interp import FaultSpec, Interpreter, Snapshot
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program

# Small but snapshot-eligible kernel (~19k dynamic instructions, well above
# SNAPSHOT_MIN_DYN): memory traffic, data-dependent branches and output on
# every iteration, so reg/cf/mem faults all have visible targets.
_SRC = """
global arr[32] = { 3, 1, 4, 1, 5, 9, 2, 6 };
lib func mix(x) {
    return x * 1103515245 + 12345;
}
func main() {
    var acc = 0;
    for (var i = 0; i < 400; i = i + 1) {
        var j = i & 31;
        arr[j] = mix(arr[j] + i);
        acc = acc ^ arr[j];
        if (acc & 1) {
            acc = acc + 3;
        } else {
            acc = acc - 1;
        }
        out(acc & 255);
    }
    out(acc);
    return 0;
}
"""

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=1)


@pytest.fixture(scope="module")
def casted():
    return compile_program(compile_source(_SRC), Scheme.CASTED, MACHINE)


def _injector(cp, **kwargs) -> FaultInjector:
    return FaultInjector(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words, **kwargs
    )


def _signature(res) -> tuple:
    return (
        res.counts,
        res.trials,
        res.total_faults_injected,
        res.detection_latency_sum,
        res.detections_timed,
    )


class TestSnapshotCapture:
    def test_snapshots_cover_the_run(self, casted):
        inj = _injector(cp=casted)
        assert inj._snapshots, "program is large enough to checkpoint"
        dyns = [s.dyn for s in inj._snapshots]
        assert dyns == sorted(dyns)
        assert len(dyns) == len(set(dyns))
        assert dyns[-1] < inj.golden.dyn_instructions
        for snap in inj._snapshots:
            assert isinstance(snap, Snapshot)
            assert snap.label in {b.label for b in inj.program.main.blocks()}

    def test_snapshot_resume_replays_golden_exactly(self, casted):
        """Fault-free resume from any snapshot finishes like the golden run."""
        inj = _injector(cp=casted)
        for snap in inj._snapshots[:: max(1, len(inj._snapshots) // 8)]:
            res = inj.interp.run(resume_from=snap)
            assert res.kind == inj.golden.kind
            assert res.exit_code == inj.golden.exit_code
            assert res.output == inj.golden.output
            assert res.dyn_instructions == inj.golden.dyn_instructions

    def test_tiny_programs_skip_snapshots(self):
        cp = compile_program(
            compile_source(
                "func main() { out(1 + 2); return 0; }"
            ),
            Scheme.NOED,
            MACHINE,
        )
        inj = _injector(cp=cp)
        assert inj._snapshots == []
        # ...and trials still work through the replay-from-zero path.
        res = inj.run_campaign(trials=3, seed=9)
        assert res.trials == 3

    def test_snapshots_disabled_on_request(self, casted):
        inj = _injector(cp=casted, snapshots=False)
        assert inj._snapshots == []


class TestTrialEquivalence:
    def test_single_trials_identical_with_and_without_snapshots(self, casted):
        """Same faults, same RunResult, whether replayed or resumed."""
        plain = _injector(cp=casted, snapshots=False)
        ckpt = _injector(cp=casted)
        golden_dyn = plain.golden.dyn_instructions
        probe_points = [
            0, 1, golden_dyn // 3, golden_dyn // 2, golden_dyn - 2
        ]
        for dyn_index in probe_points:
            for kind, arg in (("reg", None), ("cf", None), ("mem", 5)):
                faults = (FaultSpec(dyn_index=dyn_index, bit=3, kind=kind, arg=arg),)
                a = plain.interp.run(faults=faults, max_steps=plain.max_steps)
                snap = ckpt._snapshot_for(faults)
                b = ckpt.interp.run(
                    faults=faults, max_steps=ckpt.max_steps, resume_from=snap
                )
                assert (a.kind, a.exit_code, a.output, a.dyn_instructions) == (
                    b.kind, b.exit_code, b.output, b.dyn_instructions
                ), (dyn_index, kind)

    def test_snapshot_selection_never_overshoots_fault(self, casted):
        inj = _injector(cp=casted)
        for dyn_index in (0, 7, 1000, inj.golden.dyn_instructions - 1):
            snap = inj._snapshot_for((FaultSpec(dyn_index=dyn_index),))
            if snap is not None:
                assert snap.dyn <= dyn_index
            # multi-fault trials key off the earliest fault
            faults = (
                FaultSpec(dyn_index=dyn_index),
                FaultSpec(dyn_index=max(0, dyn_index // 2)),
            )
            snap = inj._snapshot_for(faults)
            if snap is not None:
                assert snap.dyn <= min(f.dyn_index for f in faults)


class TestCampaignDeterminism:
    TRIALS = 60
    SEED = 2013

    def test_counts_identical_across_snapshot_intervals(self, casted):
        reference = _injector(cp=casted, snapshots=False).run_campaign(
            self.TRIALS, self.SEED
        )
        for snapshot_count in (1, 4, 16):
            res = _injector(cp=casted, snapshot_count=snapshot_count).run_campaign(
                self.TRIALS, self.SEED
            )
            assert _signature(res) == _signature(reference), snapshot_count

    def test_counts_identical_across_backends(self, casted):
        reference = _injector(
            cp=casted, backend="interp", snapshots=False
        ).run_campaign(self.TRIALS, self.SEED)
        res = _injector(cp=casted, backend="compiled").run_campaign(
            self.TRIALS, self.SEED
        )
        assert _signature(res) == _signature(reference)

    def test_counts_identical_across_jobs(self, casted):
        inj = _injector(cp=casted)
        serial = inj.run_campaign(self.TRIALS, self.SEED, jobs=1)
        pooled = inj.run_campaign(self.TRIALS, self.SEED, jobs=2)
        assert _signature(pooled) == _signature(serial)

    def test_counts_identical_under_rate_matching(self, casted):
        """Multi-fault (binomial rate-matched) trials resume correctly too."""
        reference_dyn = 3000  # << golden dyn => several faults per trial
        plain = _injector(cp=casted, snapshots=False).run_campaign(
            self.TRIALS, self.SEED, reference_dyn=reference_dyn
        )
        ckpt = _injector(cp=casted).run_campaign(
            self.TRIALS, self.SEED, reference_dyn=reference_dyn
        )
        assert plain.total_faults_injected > self.TRIALS  # rate matching engaged
        assert _signature(ckpt) == _signature(plain)

    @pytest.mark.parametrize("model", ["burst", "cf", "mem", "opcode"])
    def test_counts_identical_per_fault_model(self, casted, model):
        plain = _injector(
            cp=casted, fault_model=model, snapshots=False
        ).run_campaign(30, self.SEED)
        ckpt = _injector(cp=casted, fault_model=model).run_campaign(30, self.SEED)
        assert _signature(ckpt) == _signature(plain)


class TestTelemetry:
    def test_restore_counters(self, casted):
        inj = _injector(cp=casted)
        tel = obs.configure()
        try:
            inj.run_campaign(25, seed=4)
            restores = tel.metrics.counters.get("campaign.snapshot_restores", 0)
            skipped = tel.metrics.counters.get("campaign.cycles_skipped", 0)
        finally:
            obs.reset()
        assert 0 < restores <= 25
        assert skipped > 0

    def test_no_restore_counters_without_snapshots(self, casted):
        inj = _injector(cp=casted, snapshots=False)
        tel = obs.configure()
        try:
            inj.run_campaign(25, seed=4)
            assert "campaign.snapshot_restores" not in tel.metrics.counters
        finally:
            obs.reset()
