"""The paper's §II-B motivating examples, reconstructed.

Example 1 (Fig. 2): single-issue clusters — SCED is resource constrained,
DCED wins, CASTED does at least as well as DCED.

Example 2 (Fig. 3): two-wide clusters — SCED accommodates the ILP, DCED
suffers the inter-core delay on every check, CASTED does at least as well
as SCED.
"""


from repro.ir.builder import IRBuilder
from repro.ir.program import GlobalArray, Program
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor


def example_kernel(iters=200):
    """A small DFG like the paper's examples: a few dependent ALU ops
    feeding a store, inside a loop so timing differences accumulate."""
    b = IRBuilder("main")
    f = b.function
    b.add_and_enter("entry")
    i = f.new_gp()
    b.movi_to(i, 0)
    b.jmp("loop")
    b.add_and_enter("loop")
    a = b.add(i, 3)          # A
    c = b.mul(a, 5)          # B (longer latency)
    d = b.xor(a, c)          # C
    e = b.add(d, 7)          # D
    addr = b.add(i, 1)
    b.store(addr, e)         # N.R. instruction with checks before it
    i2 = b.add(i, 1)
    b.mov_to(i, i2)
    p = b.cmplt(i, iters)
    b.brt(p, "loop", "exit")
    b.add_and_enter("exit")
    b.out(i)
    b.halt(0)
    return Program(f, [GlobalArray("buf", iters + 2)])


def cycles(scheme, iw, d):
    machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
    cp = compile_program(example_kernel(), scheme, machine)
    return VLIWExecutor(cp).run().cycles


class TestExample1SingleIssue:
    """Fig. 2: issue width 1, delay 1."""

    def test_dced_outperforms_resource_constrained_sced(self):
        assert cycles(Scheme.DCED, 1, 1) < cycles(Scheme.SCED, 1, 1)

    def test_casted_at_least_matches_dced(self):
        assert cycles(Scheme.CASTED, 1, 1) <= cycles(Scheme.DCED, 1, 1) * 1.02


class TestExample2WideIssue:
    """Fig. 3: issue width 2, large delay."""

    def test_sced_outperforms_delay_bound_dced(self):
        assert cycles(Scheme.SCED, 2, 3) < cycles(Scheme.DCED, 2, 3)

    def test_casted_at_least_matches_sced(self):
        assert cycles(Scheme.CASTED, 2, 3) <= cycles(Scheme.SCED, 2, 3) * 1.02


class TestCheckMigration:
    """§III-D: CASTED moves even check instructions across clusters."""

    def test_checks_move_on_narrow_machines(self):
        machine = MachineConfig(issue_width=1, inter_cluster_delay=1)
        cp = compile_program(example_kernel(), Scheme.CASTED, machine)
        from repro.isa.instruction import Role

        check_clusters = {
            i.cluster
            for _, _, i in cp.program.main.all_instructions()
            if i.role is Role.CHECK
        }
        orig_clusters = {
            i.cluster
            for _, _, i in cp.program.main.all_instructions()
            if i.role is Role.ORIG
        }
        # At issue 1 the work must spread: some checks and/or originals land
        # on both clusters (unlike DCED's fixed split).
        assert len(check_clusters | orig_clusters) == 2
