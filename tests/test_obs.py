"""The telemetry layer: metrics, spans, Chrome export, progress, wiring."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.chrome import export_chrome_trace, to_chrome_events
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressEvent, ProgressTracker
from repro.obs.report import summarize_trace
from repro.obs.telemetry import NULL_SPAN, Telemetry
from repro.obs.trace import Tracer, read_trace
from repro.ir.interp import ExitKind
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from tests.conftest import build_loop_program


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Every test starts and ends with the disabled global default."""
    obs.reset()
    yield
    obs.reset()


def _fake_clock(step: float = 1.0):
    """Deterministic strictly-increasing clock."""
    state = {"t": 0.0}

    def clock() -> float:
        state["t"] += step
        return state["t"]

    return clock


class TestNoOpPath:
    def test_default_is_disabled(self):
        tel = obs.get_telemetry()
        assert not tel.enabled

    def test_disabled_span_is_shared_singleton(self):
        tel = obs.get_telemetry()
        sp1 = tel.span("a", cat="x", foo=1)
        sp2 = tel.span("b")
        assert sp1 is NULL_SPAN and sp2 is NULL_SPAN
        with sp1 as s:
            s.set(bar=2)  # must be accepted and ignored

    def test_disabled_metrics_record_nothing(self):
        tel = obs.get_telemetry()
        tel.count("c")
        tel.gauge("g", 3.0)
        tel.observe("h", 1.0)
        with tel.timer("t"):
            pass
        tel.instant("i")
        assert tel.metrics is None and tel.tracer is None

    def test_telemetry_without_backends_is_disabled(self):
        assert not Telemetry().enabled

    def test_executor_results_identical_with_and_without_telemetry(self):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(8), Scheme.CASTED, machine)
        off = VLIWExecutor(compiled).run()
        obs.configure(keep_events=True)
        on = VLIWExecutor(compiled).run()
        obs.reset()
        assert off == on


class TestSpans:
    def test_nesting_depths(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("outer", cat="a"):
            with tracer.span("inner", cat="a"):
                tracer.instant("tick", cat="a")
            with tracer.span("sibling", cat="a"):
                pass
        names = {e["name"]: e for e in tracer.events}
        assert names["outer"]["depth"] == 0
        assert names["inner"]["depth"] == 1
        assert names["sibling"]["depth"] == 1
        assert names["tick"]["depth"] == 2  # inside outer > inner

    def test_spans_emit_on_close_innermost_first(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [e["name"] for e in tracer.events] == ["inner", "outer"]

    def test_span_contains_children_in_time(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.events
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]

    def test_set_args_before_close(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("s", cat="c", a=1) as sp:
            sp.set(b=2, a=3)
        (ev,) = tracer.events
        assert ev["args"] == {"a": 3, "b": 2}

    def test_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path=path, clock=_fake_clock())
        with tracer.span("s", cat="c"):
            tracer.instant("i", cat="c", k="v")
        tracer.close()
        events = read_trace(path)
        assert [e["ev"] for e in events] == ["I", "X"]
        assert events[0]["args"] == {"k": "v"}

    def test_read_trace_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "I"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_trace(path)


class TestMetrics:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.count("c")
        reg.count("c", 4)
        reg.gauge("g", 1.0)
        reg.gauge("g", 2.5)
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        snap = reg.snapshot()
        assert snap["counters"]["c"] == 5
        assert snap["gauges"]["g"] == 2.5
        h = snap["histograms"]["h"]
        assert (h["count"], h["min"], h["max"], h["total"]) == (3, 1.0, 3.0, 6.0)
        assert h["mean"] == pytest.approx(2.0)

    def test_timer_feeds_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("t.seconds"):
            pass
        assert reg.histograms["t.seconds"].count == 1
        assert reg.histograms["t.seconds"].total >= 0.0

    def test_render_contains_every_metric(self):
        reg = MetricsRegistry()
        reg.count("my.counter")
        reg.gauge("my.gauge", 7)
        reg.observe("my.hist", 1)
        text = reg.render()
        for name in ("my.counter", "my.gauge", "my.hist"):
            assert name in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()


class TestChromeExport:
    def _trace_events(self):
        tracer = Tracer(clock=_fake_clock())
        with tracer.span("pipeline", cat="compile", n=2):
            with tracer.span("pass:dce", cat="pass"):
                pass
        with tracer.span("campaign", cat="campaign"):
            tracer.instant("trial", cat="campaign", outcome="benign")
        return tracer.events

    def test_schema_validity(self, tmp_path):
        out = tmp_path / "chrome.json"
        export_chrome_trace(self._trace_events(), out)
        payload = json.loads(out.read_text())
        assert set(payload) >= {"traceEvents", "displayTimeUnit"}
        events = payload["traceEvents"]
        assert events, "no events exported"
        for ev in events:
            assert {"ph", "pid", "tid", "name"} <= set(ev)
            if ev["ph"] == "X":
                assert ev["dur"] >= 0.0 and isinstance(ev["ts"], float)
            if ev["ph"] == "i":
                assert ev["s"] == "t"

    def test_timestamps_in_microseconds(self):
        events = to_chrome_events(self._trace_events())
        xs = [e for e in events if e["ph"] == "X"]
        src = [e for e in self._trace_events() if e["ev"] == "X"]
        assert xs[0]["ts"] == pytest.approx(src[0]["ts"] * 1e6)
        assert xs[0]["dur"] == pytest.approx(src[0]["dur"] * 1e6)

    def test_categories_get_named_lanes(self):
        events = to_chrome_events(self._trace_events())
        meta = [e for e in events if e["ph"] == "M" and e["name"] == "thread_name"]
        lanes = {m["args"]["name"] for m in meta}
        assert {"compile", "pass", "campaign"} <= lanes
        # every lane gets a distinct tid
        tids = [m["tid"] for m in meta]
        assert len(tids) == len(set(tids))


class TestProgress:
    def test_heartbeat_invocation_count(self):
        events: list[ProgressEvent] = []
        tracker = ProgressTracker(
            12, events.append, every=5, clock=_fake_clock(0.5)
        )
        for i in range(12):
            tracker.step({"benign": i + 1})
        # heartbeats at 5, 10, and the final trial
        assert [e.done for e in events] == [5, 10, 12]
        assert tracker.n_events == 3

    def test_event_fields(self):
        events: list[ProgressEvent] = []
        tracker = ProgressTracker(4, events.append, every=2, clock=_fake_clock(1.0))
        for i in range(4):
            tracker.step({"sdc": i + 1})
        last = events[-1]
        assert last.total == 4 and last.fraction == 1.0
        assert last.eta_s == 0.0
        assert last.rate > 0.0
        assert last.counts == {"sdc": 4}
        assert "4/4 trials (100%)" in last.render()

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            ProgressTracker(5, None, every=0)

    def test_campaign_invokes_progress(self):
        from repro.faults.injector import FaultInjector

        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(6), Scheme.NOED, machine)
        injector = FaultInjector(
            compiled.program,
            mem_words=compiled.mem_words,
            frame_words=compiled.frame_words,
        )
        events: list[ProgressEvent] = []
        res = injector.run_campaign(
            trials=9, seed=7, progress=events.append, heartbeat=4
        )
        assert [e.done for e in events] == [4, 8, 9]
        assert sum(events[-1].counts.values()) == res.trials == 9


class TestPipelineInstrumentation:
    def test_compile_emits_pass_spans_and_metrics(self):
        tel = obs.configure(keep_events=True)
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compile_program(build_loop_program(5), Scheme.CASTED, machine)
        obs.reset()
        spans = {e["name"] for e in tel.tracer.events if e["ev"] == "X"}
        assert "pipeline" in spans
        for name in ("pass:dce", "pass:error-detection", "pass:assign-casted",
                     "pass:regalloc", "pass:schedule"):
            assert name in spans, name
        args = next(
            e["args"] for e in tel.tracer.events
            if e["name"] == "pass:error-detection"
        )
        # error detection grows the program; the delta must be recorded
        assert args["instructions_after"] > args["instructions_before"]
        winners = [
            k for k in tel.metrics.counters if k.startswith("assign.casted.winner.")
        ]
        assert len(winners) == 1  # exactly one portfolio winner per compile
        assert tel.metrics.histograms["sched.block_length"].count > 0
        assert tel.metrics.histograms["sched.slot_pressure"].max <= 1.0

    def test_executor_records_issue_and_stall_attribution(self):
        tel = obs.configure(keep_events=True)
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(8), Scheme.CASTED, machine)
        result = VLIWExecutor(compiled).run()
        obs.reset()
        counters = tel.metrics.counters
        issue_total = sum(
            v for k, v in counters.items() if k.startswith("sim.issue.")
        )
        assert issue_total == result.dyn_instructions
        assert counters["sim.cycles"] == result.cycles
        stall_total = sum(
            v for k, v in counters.items() if k.startswith("sim.stalls.block.")
        )
        assert stall_total == result.stall_cycles
        assert counters["sim.cache.accesses"] == result.cache.accesses
        sim_spans = [e for e in tel.tracer.events if e["name"] == "sim.run"]
        assert len(sim_spans) == 1
        assert sim_spans[0]["args"]["kind"] == "ok"

    def test_campaign_trace_has_per_trial_events(self):
        from repro.faults.injector import run_campaign

        tel = obs.configure(keep_events=True)
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(5), Scheme.NOED, machine)
        run_campaign(
            compiled.program, trials=7, seed=3,
            mem_words=compiled.mem_words, frame_words=compiled.frame_words,
        )
        obs.reset()
        trials = [
            e for e in tel.tracer.events
            if e["ev"] == "I" and e["name"] == "trial"
        ]
        assert len(trials) == 7
        assert all("outcome" in e["args"] for e in trials)
        camp = next(e for e in tel.tracer.events if e["name"] == "campaign")
        assert camp["args"]["trials"] == 7

    def test_report_summarizes_pipeline_and_campaign(self):
        tel = obs.configure(keep_events=True)
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(5), Scheme.DCED, machine)
        VLIWExecutor(compiled).run()
        from repro.faults.injector import run_campaign

        run_campaign(
            compiled.program, trials=5, seed=3,
            mem_words=compiled.mem_words, frame_words=compiled.frame_words,
        )
        obs.reset()
        text = summarize_trace(tel.tracer.events)
        assert "span summary" in text
        assert "pipeline passes" in text
        assert "error-detection" in text
        assert "fault campaigns" in text


class TestEvaluatorCache:
    def test_corrupt_disk_cache_falls_through(self, tmp_path, monkeypatch, caplog):
        import logging

        from repro.eval.experiment import CACHE_VERSION, Evaluator

        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = f"v{CACHE_VERSION}_perf_cjpeg_noed_iw2_d0"
        (tmp_path / f"{key}.json").write_text("{ this is not json")
        tel = obs.configure()
        ev = Evaluator(seed=2013)
        with caplog.at_level(logging.WARNING, logger="repro.eval.experiment"):
            rec = ev.perf("cjpeg", Scheme.NOED, 2, 0)
        obs.reset()
        assert rec.cycles > 0
        assert any("corrupt result cache" in r.message for r in caplog.records)
        assert tel.metrics.counters["eval.cache.corrupt"] == 1
        # the recompute must repair the cache file in place...
        assert json.loads((tmp_path / f"{key}.json").read_text())["cycles"] == rec.cycles
        # ...and the corrupt original is quarantined, not destroyed
        assert (tmp_path / f"{key}.json.bad").read_text() == "{ this is not json"

    def test_quarantined_cache_does_not_rewarn(self, tmp_path, monkeypatch, caplog):
        """A second evaluator over the same cache dir loads the repaired
        entry silently — the corrupt file no longer shadows the key."""
        import logging

        from repro.eval.experiment import CACHE_VERSION, Evaluator

        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = f"v{CACHE_VERSION}_perf_cjpeg_noed_iw2_d0"
        (tmp_path / f"{key}.json").write_text("{ this is not json")
        first = Evaluator(seed=2013).perf("cjpeg", Scheme.NOED, 2, 0)
        caplog.clear()  # drop the (expected) warning from the first run
        with caplog.at_level(logging.WARNING, logger="repro.eval.experiment"):
            again = Evaluator(seed=2013).perf("cjpeg", Scheme.NOED, 2, 0)
        assert again.cycles == first.cycles
        assert not any("corrupt result cache" in r.message for r in caplog.records)

    def test_wrong_shape_cache_falls_through(self, tmp_path, monkeypatch):
        from repro.eval.experiment import CACHE_VERSION, Evaluator

        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        key = f"v{CACHE_VERSION}_perf_cjpeg_noed_iw2_d0"
        (tmp_path / f"{key}.json").write_text("[1, 2, 3]")
        ev = Evaluator(seed=2013)
        assert ev.perf("cjpeg", Scheme.NOED, 2, 0).cycles > 0
        assert (tmp_path / f"{key}.json.bad").exists()


class TestFunctionalRun:
    def test_public_functional_run_matches_trace(self):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        compiled = compile_program(build_loop_program(4), Scheme.DCED, machine)
        executor = VLIWExecutor(compiled)
        result = executor.functional_run(record_trace=True)
        assert result.kind is ExitKind.OK
        assert result.block_trace
        assert result.block_trace[0] == compiled.program.main.entry.label
        # without the flag no trace is recorded
        assert executor.functional_run().block_trace == ()


class TestCLI:
    def test_trace_flag_end_to_end(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "run.jsonl"
        chrome = tmp_path / "run.chrome.json"
        rc = main(
            ["inject", "workload:cjpeg", "--scheme", "noed", "--trials", "5",
             "--issue", "2", "--delay", "1",
             "--trace", str(trace), "--metrics"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "telemetry metrics" in out
        events = read_trace(trace)
        names = {e["name"] for e in events}
        assert "pipeline" in names and "campaign" in names
        assert any(e["name"] == "trial" for e in events)

        rc = main(["report", "trace", "--file", str(trace), "--chrome", str(chrome)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "span summary" in out and "fault campaigns" in out
        payload = json.loads(chrome.read_text())
        assert payload["traceEvents"]

    def test_report_trace_requires_file(self, capsys):
        from repro.cli import main

        assert main(["report", "trace"]) == 2
        assert "needs --file" in capsys.readouterr().err

    def test_report_trace_missing_file(self, capsys):
        from repro.cli import main

        assert main(["report", "trace", "--file", "/nonexistent/t.jsonl"]) == 2
