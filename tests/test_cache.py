"""Set-associative write-back cache hierarchy."""


from repro.machine.config import (
    CacheHierarchyConfig,
    CacheLevelConfig,
    itanium2_cache,
)
from repro.sim.cache import CacheHierarchy


def small_hierarchy():
    """Tiny, easy-to-reason-about geometry: L1 4 sets x 2 ways x 64B."""
    return CacheHierarchy(
        CacheHierarchyConfig(
            levels=(
                CacheLevelConfig("L1", 512, 64, 2, 1),
                CacheLevelConfig("L2", 2048, 64, 4, 5),
            ),
            memory_latency=50,
        )
    )


WORDS_PER_BLOCK = 64 // 8  # 8


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = small_hierarchy()
        assert c.access(0, False) == 50  # cold: memory
        assert c.access(0, False) == 1  # L1 hit
        assert c.access(1, False) == 1  # same 64B block

    def test_block_granularity(self):
        c = small_hierarchy()
        c.access(0, False)
        assert c.access(WORDS_PER_BLOCK, False) == 50  # next block: miss

    def test_l2_hit_after_l1_eviction(self):
        c = small_hierarchy()
        # Fill one L1 set (4 sets; blocks mapping to set 0: block 0, 4, 8...)
        c.access(0 * WORDS_PER_BLOCK * 4, False)
        c.access(1 * WORDS_PER_BLOCK * 4, False)
        c.access(2 * WORDS_PER_BLOCK * 4, False)  # evicts the LRU line from L1
        lat = c.access(0, False)  # evicted from L1, still in L2
        assert lat == 5

    def test_lru_order(self):
        c = small_hierarchy()
        a, b, d = (i * WORDS_PER_BLOCK * 4 for i in range(3))
        c.access(a, False)
        c.access(b, False)
        c.access(a, False)  # refresh a: b is now LRU
        c.access(d, False)  # evicts b
        assert c.access(a, False) == 1
        assert c.access(b, False) == 5  # b fell to L2

    def test_store_write_allocate(self):
        c = small_hierarchy()
        assert c.access(0, True) == 50  # store miss allocates
        assert c.access(0, False) == 1

    def test_writeback_counted(self):
        c = small_hierarchy()
        c.access(0, True)  # dirty line in set 0
        c.access(WORDS_PER_BLOCK * 4, False)
        c.access(WORDS_PER_BLOCK * 8, False)  # evicts dirty line 0
        assert c.stats.writebacks >= 1

    def test_stats_accumulate(self):
        c = small_hierarchy()
        c.access(0, False)
        c.access(0, False)
        assert c.stats.accesses == 2
        assert c.stats.hits["L1"] == 1
        assert c.stats.misses["L1"] == 1
        assert c.stats.hit_rate("L1") == 0.5

    def test_reset(self):
        c = small_hierarchy()
        c.access(0, False)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0, False) == 50  # cold again


class TestItanium2Geometry:
    def test_latencies(self):
        c = CacheHierarchy(itanium2_cache())
        assert c.access(0, False) == 150
        assert c.access(0, False) == 1

    def test_l1_capacity(self):
        c = CacheHierarchy(itanium2_cache())
        # touch 16KB of distinct data: all should then hit in L1
        n_blocks = 16 * 1024 // 64
        for i in range(n_blocks):
            c.access(i * 8, False)
        hits_before = c.stats.hits["L1"]
        for i in range(n_blocks):
            c.access(i * 8, False)
        assert c.stats.hits["L1"] == hits_before + n_blocks

    def test_l2_block_size_is_128(self):
        c = CacheHierarchy(itanium2_cache())
        c.access(0, False)  # fills L1(64B) and L2/L3 (128B)
        # second half of the 128B L2 block: L1 miss (different 64B block),
        # but L2 hit
        assert c.access(8, False) == 5

    def test_sequential_scan_mostly_hits(self):
        c = CacheHierarchy(itanium2_cache())
        for w in range(1024):
            c.access(w, False)
        # 1 miss per 8-word block
        assert c.stats.misses["L1"] == 1024 // 8
