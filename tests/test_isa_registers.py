import pytest

from repro.isa.registers import GP, PR, Reg, RegClass


class TestReg:
    def test_virtual_constructors(self):
        r = GP(3)
        assert r.is_gp and r.virtual and r.cluster == -1
        p = PR(1)
        assert p.is_pr

    def test_physical(self):
        r = GP(5, virtual=False, cluster=1)
        assert not r.virtual and r.cluster == 1
        assert str(r) == "c1.r5"

    def test_virtual_str(self):
        assert str(GP(2)) == "vr2"
        assert str(PR(0)) == "vp0"

    def test_hashable_and_equal(self):
        assert GP(1) == GP(1)
        assert GP(1) != PR(1)
        assert GP(1) != GP(1, virtual=False, cluster=0)
        assert len({GP(1), GP(1), GP(2)}) == 2

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Reg(RegClass.GP, -1)

    def test_physical_requires_cluster(self):
        with pytest.raises(ValueError):
            Reg(RegClass.GP, 0, virtual=False)

    def test_virtual_must_not_have_cluster(self):
        with pytest.raises(ValueError):
            Reg(RegClass.GP, 0, virtual=True, cluster=0)
