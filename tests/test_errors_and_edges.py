"""Error hierarchy + miscellaneous edge cases across modules."""

import pytest

from repro.errors import (
    ArithmeticTrap,
    IRError,
    MemoryFault,
    ParseError,
    ReproError,
    ScheduleError,
    SimTrap,
    Watchdog,
)


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for exc in (IRError, ParseError, ScheduleError, SimTrap, MemoryFault):
            assert issubclass(exc, ReproError)

    def test_traps_are_sim_traps(self):
        for exc in (MemoryFault, ArithmeticTrap, Watchdog):
            assert issubclass(exc, SimTrap)

    def test_trap_kinds_distinct(self):
        kinds = {
            MemoryFault("x").kind,
            ArithmeticTrap("x").kind,
            Watchdog("x").kind,
        }
        assert len(kinds) == 3

    def test_parse_error_position(self):
        e = ParseError("bad", 3, 7)
        assert "3:7" in str(e)
        assert e.line == 3 and e.col == 7

    def test_parse_error_without_position(self):
        assert str(ParseError("bad")) == "bad"

    def test_sim_trap_cycle(self):
        assert MemoryFault("x", cycle=42).cycle == 42


class TestPipelineEdges:
    def test_scheme_properties(self):
        from repro.pipeline import Scheme

        assert not Scheme.NOED.protected
        assert all(
            s.protected for s in (Scheme.SCED, Scheme.DCED, Scheme.CASTED)
        )

    def test_dced_rejects_single_cluster(self):
        from repro.errors import PassError
        from repro.machine.config import MachineConfig
        from repro.pipeline import Scheme, compile_program
        from tests.conftest import build_loop_program

        machine = MachineConfig(n_clusters=1, issue_width=2, inter_cluster_delay=0)
        with pytest.raises(PassError):
            compile_program(build_loop_program(), Scheme.DCED, machine)

    def test_sced_works_on_single_cluster(self):
        from repro.machine.config import MachineConfig
        from repro.pipeline import Scheme, compile_program
        from repro.ir.interp import ExitKind
        from repro.sim.executor import VLIWExecutor
        from tests.conftest import build_loop_program

        machine = MachineConfig(n_clusters=1, issue_width=2, inter_cluster_delay=0)
        cp = compile_program(build_loop_program(), Scheme.SCED, machine)
        assert VLIWExecutor(cp).run().kind is ExitKind.OK

    def test_bad_casted_candidates_rejected(self):
        from repro.errors import PassError
        from repro.passes.assignment.casted import CastedAssignmentPass

        with pytest.raises(PassError):
            CastedAssignmentPass(candidates=("magic",))
        with pytest.raises(PassError):
            CastedAssignmentPass(candidates=())

    def test_bad_regalloc_policy_rejected(self):
        from repro.errors import RegAllocError
        from repro.passes.regalloc import LinearScanAllocator

        with pytest.raises(RegAllocError):
            LinearScanAllocator(reuse_policy="random")


class TestPassManagerEdges:
    def test_pass_failure_wrapped(self):
        from repro.errors import PassError
        from repro.passes.base import FunctionPass
        from repro.passes.pass_manager import PassManager
        from tests.conftest import build_loop_program

        class Exploder(FunctionPass):
            name = "exploder"

            def run(self, program, ctx):
                raise RuntimeError("boom")

        with pytest.raises(PassError, match="exploder"):
            PassManager([Exploder()]).run(build_loop_program())

    def test_malformed_ir_detected_between_passes(self):
        from repro.errors import PassError
        from repro.passes.base import FunctionPass
        from repro.passes.pass_manager import PassManager
        from tests.conftest import build_loop_program

        class Corruptor(FunctionPass):
            name = "corruptor"

            def run(self, program, ctx):
                # drop the terminator of the entry block
                program.main.entry.instructions.pop()
                return True

        with pytest.raises(PassError, match="malformed IR"):
            PassManager([Corruptor()]).run(build_loop_program())

    def test_verify_can_be_disabled(self):
        from repro.passes.base import FunctionPass
        from repro.passes.pass_manager import PassManager
        from tests.conftest import build_loop_program

        class Noop(FunctionPass):
            name = "noop"

            def run(self, program, ctx):
                return False

        ctx = PassManager([Noop()], verify=False).run(build_loop_program())
        assert ctx is not None


class TestCompileStatsDetails:
    def test_pass_stats_exposed(self, machine):
        from repro.pipeline import Scheme, compile_program
        from tests.conftest import build_loop_program

        cp = compile_program(build_loop_program(), Scheme.CASTED, machine)
        assert "error-detection" in cp.pass_stats
        assert "assign-casted" in cp.pass_stats
        assert "regalloc" in cp.pass_stats
        assert "schedule" in cp.pass_stats
        ed = cp.pass_stats["error-detection"]
        assert ed["duplicates"] > 0
        assert ed["code_growth"] > 1.5

    def test_licm_runs_in_pipeline(self, machine):
        from repro.pipeline import Scheme, compile_program
        from repro.workloads import get_workload

        cp = compile_program(get_workload("cjpeg").program, Scheme.NOED, machine)
        assert cp.pass_stats.get("licm", {}).get("hoisted", 0) > 0
