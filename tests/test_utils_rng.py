from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import derive_seed, make_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_parent_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_label_collision_with_concatenation(self):
        # ("ab",) must differ from ("a", "b")
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    @given(st.integers(0, 2**63), st.text(max_size=20))
    def test_in_range(self, parent, label):
        s = derive_seed(parent, label)
        assert 0 <= s < 2**64


class TestMakeRng:
    def test_same_stream(self):
        a = make_rng(5, "x").integers(0, 1000, size=10)
        b = make_rng(5, "x").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_streams(self):
        a = make_rng(5, "x").integers(0, 10**9)
        b = make_rng(5, "y").integers(0, 10**9)
        assert a != b

    def test_plain_seed(self):
        a = make_rng(42).integers(0, 10**9)
        b = make_rng(42).integers(0, 10**9)
        assert a == b
