import pytest

from repro.errors import ParseError
from repro.ir.builder import IRBuilder
from repro.ir.interp import Interpreter
from repro.ir.parser import parse_instruction, parse_program
from repro.ir.printer import format_instruction, print_program
from repro.ir.program import GlobalArray, Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import GP, PR
from tests.conftest import build_loop_program


class TestInstructionRoundTrip:
    CASES = [
        Instruction(Opcode.ADD, dests=(GP(1),), srcs=(GP(2), GP(3))),
        Instruction(Opcode.ADD, dests=(GP(1),), srcs=(GP(2),), imm=-5),
        Instruction(Opcode.MOVI, dests=(GP(0),), imm=123),
        Instruction(Opcode.LOAD, dests=(GP(1),), srcs=(GP(2),), imm=4),
        Instruction(Opcode.STORE, srcs=(GP(1), GP(2)), imm=0),
        Instruction(Opcode.LOADFP, dests=(GP(1),), imm=3),
        Instruction(Opcode.STOREFP, srcs=(GP(1),), imm=3),
        Instruction(Opcode.CMPLT, dests=(PR(0),), srcs=(GP(1), GP(2))),
        Instruction(Opcode.PNE, dests=(PR(2),), srcs=(PR(0), PR(1))),
        Instruction(Opcode.BRT, srcs=(PR(0),), targets=("a", "b")),
        Instruction(Opcode.JMP, targets=("x",)),
        Instruction(Opcode.HALT, imm=3),
        Instruction(Opcode.CHKBR, srcs=(PR(0),), targets=("__detect__",), role=Role.CHECK),
        Instruction(Opcode.SELECT, dests=(GP(0),), srcs=(PR(0), GP(1), GP(2))),
        Instruction(
            Opcode.MOV,
            dests=(GP(0, virtual=False, cluster=1),),
            srcs=(GP(1, virtual=False, cluster=0),),
        ),
    ]

    @pytest.mark.parametrize("insn", CASES, ids=lambda i: i.info.mnemonic)
    def test_roundtrip(self, insn):
        parsed = parse_instruction(format_instruction(insn))
        assert parsed.opcode is insn.opcode
        assert parsed.dests == insn.dests
        assert parsed.srcs == insn.srcs
        assert parsed.imm == insn.imm
        assert parsed.targets == insn.targets
        assert parsed.role is insn.role

    def test_tags_roundtrip(self):
        insn = Instruction(Opcode.ADD, dests=(GP(1),), srcs=(GP(2), GP(3)))
        insn.role = Role.DUP
        insn.cluster = 1
        insn.from_library = True
        insn.dup_of = 42
        parsed = parse_instruction(format_instruction(insn))
        assert parsed.role is Role.DUP
        assert parsed.cluster == 1
        assert parsed.from_library
        assert parsed.dup_of == 42

    def test_bad_mnemonic(self):
        with pytest.raises(ParseError):
            parse_instruction("frobnicate vr1")

    def test_bad_register(self):
        with pytest.raises(ParseError):
            parse_instruction("add vq1, vr2, vr3")

    def test_bad_shape(self):
        with pytest.raises(ParseError):
            parse_instruction("add vr1, vr2, vr3, vr4")


class TestProgramRoundTrip:
    def test_loop_program_semantics_preserved(self):
        prog = build_loop_program()
        text = print_program(prog)
        reparsed = parse_program(text)
        r1 = Interpreter(prog).run()
        r2 = Interpreter(reparsed).run()
        assert r1.output == r2.output
        assert r1.exit_code == r2.exit_code
        assert r1.dyn_instructions == r2.dyn_instructions

    def test_globals_roundtrip(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        b.halt(0)
        prog = Program(b.function, [GlobalArray("t", 4, (1, 2)), GlobalArray("u", 2)])
        text = print_program(prog)
        reparsed = parse_program(text)
        assert reparsed.globals["t"].init == (1, 2)
        assert reparsed.globals["u"].n_words == 2

    def test_double_roundtrip_fixpoint(self):
        prog = build_loop_program()
        text1 = print_program(prog)
        text2 = print_program(parse_program(text1))
        assert text1 == text2

    def test_workload_roundtrip(self):
        from repro.workloads import get_workload

        prog = get_workload("mcf").program
        reparsed = parse_program(print_program(prog))
        r1 = Interpreter(prog).run()
        r2 = Interpreter(reparsed).run()
        assert r1.output == r2.output

    def test_comments_ignored(self):
        text = print_program(build_loop_program())
        text = "; leading comment\n" + text.replace(
            "entry:", "entry:  ; the entry block"
        )
        parse_program(text)

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_program("nonsense")
        with pytest.raises(ParseError):
            parse_program("program {\nfunc main {\n}\n}")  # no blocks


def _assert_identical(p1, p2):
    """Instruction-for-instruction structural identity of two programs."""
    f1s, f2s = p1.functions(), p2.functions()
    assert [f.name for f in f1s] == [f.name for f in f2s]
    for f1, f2 in zip(f1s, f2s):
        assert f1.block_labels() == f2.block_labels()
        for label in f1.block_labels():
            i1s = f1.block(label).instructions
            i2s = f2.block(label).instructions
            assert len(i1s) == len(i2s), f"{f1.name}.{label} length differs"
            for k, (a, b) in enumerate(zip(i1s, i2s)):
                where = f"{f1.name}.{label}[{k}]"
                assert a.opcode is b.opcode, where
                assert a.dests == b.dests, where
                assert a.srcs == b.srcs, where
                assert a.imm == b.imm, where
                assert a.targets == b.targets, where
                assert a.role is b.role, where
                assert a.from_library == b.from_library, where
                assert a.cluster == b.cluster, where
                assert a.dup_of == b.dup_of, where


class TestCompiledRoundTripProperty:
    """parse(print(p)) is the identity on every fully compiled program.

    The property holds across the whole workload x scheme matrix — i.e. over
    physical registers, cluster tags, every role, dup_of links and spill
    code, not just the front-end IR the older round-trip tests cover.
    """

    @pytest.mark.parametrize(
        "name",
        [
            "cjpeg", "h263dec", "h263enc", "mcf",
            "mpeg2dec", "parser", "vpr",
        ],
    )
    def test_workload_scheme_matrix(self, name, scheme, machine):
        from repro.pipeline import compile_program
        from repro.workloads import get_workload

        compiled = compile_program(
            get_workload(name).program, scheme, machine
        )
        reparsed = parse_program(print_program(compiled.program))
        _assert_identical(compiled.program, reparsed)

    def test_multi_function_program_roundtrips(self):
        from repro.ir.builder import IRBuilder

        b = IRBuilder("main")
        b.add_and_enter("entry")
        b.out(b.movi(1))
        b.halt(0)
        prog = Program(b.function)
        b2 = IRBuilder("helper")
        b2.add_and_enter("h_entry")
        b2.out(b2.movi(2))
        b2.halt(0)
        prog.add_function(b2.function)
        reparsed = parse_program(print_program(prog))
        _assert_identical(prog, reparsed)
