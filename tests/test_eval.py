"""Evaluator caching + metrics + figure/table renderers."""

import pytest

from repro.faults.classify import Outcome
from repro.eval.experiment import Evaluator
from repro.eval.metrics import ilp_scaling, slowdown, summarize_scheme_slowdowns
from repro.eval.figures import (
    fig6_7_data,
    fig8_data,
    fig9_data,
    render_fig6_7,
    render_fig8,
    render_fig9,
)
from repro.eval.tables import render_table1, render_table2, render_table3
from repro.pipeline import Scheme


@pytest.fixture(scope="module")
def ev():
    return Evaluator(seed=99, cache=False)


class TestEvaluator:
    def test_perf_record_fields(self, ev):
        rec = ev.perf("mcf", Scheme.NOED, 2, 1)
        assert rec.cycles > 0
        assert rec.exit_code == 0
        assert rec.compute_cycles == rec.cycles - rec.stall_cycles

    def test_memoization(self, ev):
        a = ev.perf("mcf", Scheme.NOED, 2, 1)
        b = ev.perf("mcf", Scheme.NOED, 2, 1)
        assert a == b

    def test_single_cluster_schemes_ignore_delay(self, ev):
        a = ev.perf("mcf", Scheme.SCED, 2, 1)
        b = ev.perf("mcf", Scheme.SCED, 2, 4)
        assert a.cycles == b.cycles
        assert a.delay == b.delay == 0  # normalized key

    def test_disk_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        ev1 = Evaluator(seed=5, cache=True)
        rec1 = ev1.perf("mcf", Scheme.NOED, 1, 1)
        assert list(tmp_path.glob("*.json"))
        ev2 = Evaluator(seed=5, cache=True)
        rec2 = ev2.perf("mcf", Scheme.NOED, 1, 1)
        assert rec1 == rec2

    def test_coverage_record(self, ev):
        rec = ev.coverage("mcf", Scheme.NOED, 2, 2, trials=30)
        assert rec.trials == 30
        total = sum(rec.fractions.values())
        assert total == pytest.approx(1.0)
        assert 0.0 <= rec.coverage <= 1.0

    def test_coverage_protected_uses_rate_matching(self, ev):
        rec = ev.coverage("mcf", Scheme.SCED, 2, 2, trials=30)
        assert rec.total_faults > rec.trials  # > 1 flip per trial on average


class TestMetrics:
    def test_slowdown_noed_is_one(self, ev):
        assert slowdown(ev, "mcf", Scheme.NOED, 2, 1) == 1.0

    def test_slowdown_protected_above_one(self, ev):
        assert slowdown(ev, "mcf", Scheme.SCED, 2, 1) > 1.0

    def test_ilp_scaling_starts_at_one(self, ev):
        scaling = ilp_scaling(ev, "mcf", Scheme.NOED)
        assert scaling[0] == 1.0
        assert all(b >= a - 1e-9 for a, b in zip(scaling, scaling[1:]))

    def test_summary(self, ev):
        s = summarize_scheme_slowdowns(
            ev, ["mcf"], Scheme.SCED, issue_widths=(1, 2), delays=(1,)
        )
        assert s.scheme is Scheme.SCED
        assert s.stats.n == 2


class TestGoldenRunDedupe:
    def test_injector_shared_across_recompiles(self):
        """Separate compiles of the same point share one golden run.

        Printed programs embed process-global instruction uids in their
        ``!of`` tags, so the content key must canonicalize them — a fresh
        compile of the same source still has to hit the cache.
        """
        from repro.eval.experiment import _cached_injector

        cp1 = Evaluator(seed=1, cache=False).compiled("mcf", Scheme.CASTED, 2, 1)
        cp2 = Evaluator(seed=2, cache=False).compiled("mcf", Scheme.CASTED, 2, 1)
        assert _cached_injector(cp1, "reg-bit") is _cached_injector(cp2, "reg-bit")

    def test_shared_injector_campaign_matches_fresh(self):
        from repro.eval.experiment import _cached_injector
        from repro.faults.injector import FaultInjector

        cp = Evaluator(seed=3, cache=False).compiled("mcf", Scheme.CASTED, 2, 1)
        shared = _cached_injector(cp, "reg-bit").run_campaign(25, 42, jobs=1)
        fresh = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
            fault_model="reg-bit",
        ).run_campaign(25, 42, jobs=1)
        assert shared.counts == fresh.counts
        assert shared.total_faults_injected == fresh.total_faults_injected
        assert shared.detection_latency_sum == fresh.detection_latency_sum

    def test_different_fault_models_do_not_share(self):
        from repro.eval.experiment import _cached_injector

        cp = Evaluator(seed=4, cache=False).compiled("mcf", Scheme.CASTED, 2, 1)
        a = _cached_injector(cp, "reg-bit")
        b = _cached_injector(cp, "cf")
        assert a is not b


class TestRenderers:
    def test_fig6_7(self, ev):
        data = fig6_7_data(ev, ["mcf"], issue_widths=(1, 2), delays=(1,))
        text = render_fig6_7(data, issue_widths=(1, 2))
        assert "mcf" in text and "d1 sced" in text and "iw2" in text

    def test_fig8(self, ev):
        data = fig8_data(ev, ["mcf"])
        text = render_fig8(data)
        assert "mcf noed" in text and "mcf casted" in text

    def test_fig9(self, ev):
        data = fig9_data(ev, ["mcf"], trials=20)
        text = render_fig9(data)
        assert Outcome.BENIGN.value in text and Outcome.SDC.value in text
        assert "%" in text

    def test_table1(self):
        text = render_table1()
        assert "L1" in text and "16KB" in text and "150" in text

    def test_table2(self):
        text = render_table2()
        for name in ("cjpeg", "181.mcf", "197.parser"):
            assert name in text

    def test_table3(self):
        text = render_table3()
        assert "SWIFT" in text and "CASTED" in text and "adaptive" in text
