"""Chaos harness: spawn the serve daemon as a subprocess and kill it.

The seeded kill points come from :mod:`repro.chaos` — the daemon (and its
pool workers) SIGKILL *themselves* when an armed ``REPRO_CHAOS`` point
fires, so the death lands at a deterministic place in the execution
instead of wherever an external signal happens to arrive.  This module
only handles process plumbing: spawning ``python -m repro serve``,
waiting for the listening line, and cleaning up.

Kill points currently wired in the product code:

* ``daemon.job-start``   — runner thread, right after a job goes running;
* ``daemon.heartbeat``   — runner thread, every campaign progress beat;
* ``worker.shard``       — pool worker, before executing each shard.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LISTEN_PREFIX = "[serve] listening on "


class DaemonError(AssertionError):
    """The daemon did not behave as the harness expected."""


class Daemon:
    """One ``repro serve`` subprocess (ephemeral port, isolated state dir)."""

    def __init__(
        self,
        state_dir: str | Path,
        jobs: int = 1,
        chaos: str | None = None,
        chaos_flag: str | Path | None = None,
        extra_args: list[str] | None = None,
    ) -> None:
        self.state_dir = Path(state_dir)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        env.pop("REPRO_CHAOS", None)
        env.pop("REPRO_CHAOS_FLAG", None)
        if chaos:
            env["REPRO_CHAOS"] = chaos
        if chaos_flag:
            env["REPRO_CHAOS_FLAG"] = str(chaos_flag)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--state-dir", str(state_dir),
                "--jobs", str(jobs),
                *(extra_args or []),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.url = self._wait_listening()

    def _wait_listening(self, timeout: float = 30.0) -> str:
        """Read stdout until the daemon prints its listen line."""
        deadline = time.monotonic() + timeout
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise DaemonError(
                    f"daemon exited before listening "
                    f"(rc={self.proc.poll()})"
                )
            if line.startswith(LISTEN_PREFIX):
                return line[len(LISTEN_PREFIX):].strip()
        raise DaemonError(f"daemon not listening within {timeout}s")

    # -- death -----------------------------------------------------------------
    def kill9(self) -> None:
        """SIGKILL the daemon (the crash the service must survive)."""
        if self.proc.poll() is None:
            self.proc.kill()
        self.proc.wait(timeout=10)
        self._drain()

    def wait_dead(self, timeout: float = 60.0) -> int:
        """Wait for a chaos-armed daemon to kill itself; return its rc."""
        try:
            rc = self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.kill9()
            raise DaemonError(
                f"daemon still alive after {timeout}s (chaos point never "
                "fired?)"
            ) from None
        self._drain()
        return rc

    def terminate(self) -> None:
        """Graceful stop (SIGTERM): daemon requeues its current job."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self.kill9()
        self._drain()

    def _drain(self) -> None:
        if self.proc.stdout is not None:
            try:
                self.proc.stdout.read()
            except (OSError, ValueError):
                pass
            self.proc.stdout.close()

    def __enter__(self) -> Daemon:
        return self

    def __exit__(self, *exc) -> None:
        self.kill9()
