"""Differential fuzzing of the cache hierarchy against a naive reference.

The reference model is written for obviousness (explicit LRU lists, no
shared state tricks); the production model for speed.  Random access
streams must produce identical latencies and statistics.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.config import CacheHierarchyConfig, CacheLevelConfig
from repro.sim.cache import CacheHierarchy


class _ReferenceLevel:
    def __init__(self, cfg: CacheLevelConfig) -> None:
        self.cfg = cfg
        self.n_sets = cfg.n_sets
        # per set: list of [tag, dirty], index 0 = LRU
        self.sets: list[list[list]] = [[] for _ in range(self.n_sets)]

    def find(self, block: int):
        s = self.sets[block % self.n_sets]
        tag = block // self.n_sets
        for entry in s:
            if entry[0] == tag:
                return entry
        return None

    def touch(self, block: int) -> None:
        s = self.sets[block % self.n_sets]
        tag = block // self.n_sets
        for i, entry in enumerate(s):
            if entry[0] == tag:
                s.append(s.pop(i))
                return

    def insert(self, block: int) -> bool:
        """Returns True if a dirty line was evicted."""
        s = self.sets[block % self.n_sets]
        tag = block // self.n_sets
        for i, entry in enumerate(s):
            if entry[0] == tag:
                s.append(s.pop(i))
                return False
        dirty_evicted = False
        if len(s) >= self.cfg.associativity:
            victim = s.pop(0)
            dirty_evicted = victim[1]
        s.append([tag, False])
        return dirty_evicted

    def set_dirty(self, block: int) -> None:
        entry = self.find(block)
        if entry:
            self.touch(block)
            entry[1] = True


class _ReferenceHierarchy:
    def __init__(self, config: CacheHierarchyConfig) -> None:
        self.config = config
        self.levels = [_ReferenceLevel(c) for c in config.levels]
        self.writebacks = 0

    def access(self, word_addr: int, is_store: bool) -> int:
        byte_addr = word_addr * 8
        hit_at = None
        latency = self.config.memory_latency
        for i, level in enumerate(self.levels):
            block = byte_addr // level.cfg.block_bytes
            if level.find(block) is not None:
                level.touch(block)
                hit_at = i
                latency = level.cfg.latency
                break
        fill_until = hit_at if hit_at is not None else len(self.levels)
        for i in range(fill_until - 1, -1, -1):
            block = byte_addr // self.levels[i].cfg.block_bytes
            if self.levels[i].insert(block):
                self.writebacks += 1
        if is_store:
            l1 = self.levels[0]
            l1.set_dirty(byte_addr // l1.cfg.block_bytes)
        return latency


def tiny_config() -> CacheHierarchyConfig:
    return CacheHierarchyConfig(
        levels=(
            CacheLevelConfig("L1", 512, 64, 2, 1),
            CacheLevelConfig("L2", 2048, 128, 2, 5),
        ),
        memory_latency=40,
    )


accesses = st.lists(
    st.tuples(st.integers(0, 200), st.booleans()), min_size=1, max_size=400
)


class TestCacheAgainstReference:
    @given(accesses)
    @settings(max_examples=80, deadline=None)
    def test_latencies_match(self, stream):
        fast = CacheHierarchy(tiny_config())
        ref = _ReferenceHierarchy(tiny_config())
        for addr, is_store in stream:
            assert fast.access(addr, is_store) == ref.access(addr, is_store)

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_writebacks_match(self, stream):
        fast = CacheHierarchy(tiny_config())
        ref = _ReferenceHierarchy(tiny_config())
        for addr, is_store in stream:
            fast.access(addr, is_store)
            ref.access(addr, is_store)
        assert fast.stats.writebacks == ref.writebacks

    @given(accesses)
    @settings(max_examples=40, deadline=None)
    def test_stats_consistent(self, stream):
        fast = CacheHierarchy(tiny_config())
        for addr, is_store in stream:
            fast.access(addr, is_store)
        assert fast.stats.accesses == len(stream)
        for name in ("L1", "L2"):
            h = fast.stats.hits[name]
            m = fast.stats.misses[name]
            assert h + m <= len(stream)
            assert h >= 0 and m >= 0
