"""minic built-in functions (abs/min/max -> ISA ops)."""

import pytest

from repro.errors import SemanticError
from repro.frontend import compile_source
from repro.ir.interp import Interpreter
from repro.isa.opcodes import Opcode
from repro.isa.semantics import to_signed


def run_body(body: str):
    return Interpreter(
        compile_source(f"func main() {{ {body} return 0; }}")
    ).run()


class TestBuiltins:
    def test_abs(self):
        r = run_body("out(abs(-7)); out(abs(7)); out(abs(0));")
        assert r.output == (7, 7, 0)

    def test_min_max(self):
        r = run_body("out(min(3, -5)); out(max(3, -5)); out(min(2, 2));")
        assert tuple(map(to_signed, r.output)) == (-5, 3, 2)

    def test_nested(self):
        r = run_body("out(max(abs(-4), min(9, 6)));")
        assert r.output == (6,)

    def test_lowered_to_single_instructions(self):
        prog = compile_source("func main() { out(abs(min(1, 2))); return 0; }")
        ops = [i.opcode for _, _, i in prog.main.all_instructions()]
        assert Opcode.ABS in ops
        assert Opcode.MIN in ops
        # no inlined call plumbing (ret-value movs) for builtins
        assert Opcode.JMP not in ops

    def test_in_expressions_and_conditions(self):
        r = run_body(
            "var a = -9; if (abs(a) > 5) { out(1); } else { out(0); }"
        )
        assert r.output == (1,)

    def test_arity_checked(self):
        with pytest.raises(SemanticError, match="expects 2 args"):
            compile_source("func main() { out(min(1)); return 0; }")
        with pytest.raises(SemanticError, match="expects 1 args"):
            compile_source("func main() { out(abs(1, 2)); return 0; }")

    def test_cannot_redefine_builtin(self):
        with pytest.raises(SemanticError, match="built-in"):
            compile_source(
                "func abs(x) { return x; }\nfunc main() { return 0; }"
            )

    def test_protected_like_everything_else(self):
        from repro.machine.config import MachineConfig
        from repro.pipeline import Scheme, compile_program
        from repro.sim.executor import VLIWExecutor

        prog = compile_source(
            """
            func main() {
                var s = 0;
                for (var i = -10; i < 10; i = i + 1) {
                    s = s + abs(i) + max(i, 0);
                }
                out(s);
                return 0;
            }
            """
        )
        golden = Interpreter(prog).run()
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        for scheme in Scheme:
            cp = compile_program(prog, scheme, machine)
            assert VLIWExecutor(cp).run().output == golden.output
