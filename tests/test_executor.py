"""Cycle-level VLIW executor: differential correctness + timing sanity."""

import pytest

from repro.ir.interp import ExitKind, Interpreter
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload, workload_names
from tests.conftest import build_loop_program


def run_both(cp):
    sim = VLIWExecutor(cp).run()
    ref = Interpreter(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
    ).run()
    return sim, ref


class TestDifferentialEquivalence:
    @pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
    def test_loop_program(self, scheme, machine):
        cp = compile_program(build_loop_program(), scheme, machine)
        sim, ref = run_both(cp)
        assert sim.kind is ref.kind
        assert sim.output == ref.output
        assert sim.exit_code == ref.exit_code
        assert sim.dyn_instructions == ref.dyn_instructions

    @pytest.mark.parametrize("name", workload_names())
    def test_workloads_casted(self, name, machine):
        cp = compile_program(get_workload(name).program, Scheme.CASTED, machine)
        sim, ref = run_both(cp)
        assert sim.output == ref.output
        assert sim.exit_code == ref.exit_code

    @pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
    def test_one_workload_all_schemes(self, scheme, machine):
        cp = compile_program(get_workload("vpr").program, scheme, machine)
        sim, ref = run_both(cp)
        assert sim.output == ref.output


class TestTiming:
    def test_cycles_at_least_static_minimum(self, machine):
        cp = compile_program(build_loop_program(), Scheme.NOED, machine)
        sim = VLIWExecutor(cp).run()
        # every instruction needs an issue slot
        lower_bound = sim.dyn_instructions / (
            machine.n_clusters * machine.issue_width
        )
        assert sim.cycles >= lower_bound

    def test_stalls_are_cache_misses(self, machine):
        cp = compile_program(build_loop_program(), Scheme.NOED, machine)
        sim = VLIWExecutor(cp).run()
        assert sim.stall_cycles > 0  # cold misses on buf
        assert sim.cache.misses["L1"] > 0
        assert sim.cycles > sim.stall_cycles

    def test_memory_free_program_never_stalls(self, machine):
        cp = compile_program(
            build_loop_program(with_memory=False), Scheme.NOED, machine
        )
        sim = VLIWExecutor(cp).run()
        assert sim.stall_cycles == 0
        assert sim.cache.accesses == 0

    def test_wider_issue_not_slower(self):
        cycles = {}
        for iw in (1, 2, 4):
            machine = MachineConfig(issue_width=iw, inter_cluster_delay=1)
            cp = compile_program(get_workload("mcf").program, Scheme.SCED, machine)
            cycles[iw] = VLIWExecutor(cp).run().cycles
        assert cycles[1] >= cycles[2] >= cycles[4]

    def test_noed_ignores_delay(self):
        a = MachineConfig(issue_width=2, inter_cluster_delay=1)
        b = MachineConfig(issue_width=2, inter_cluster_delay=4)
        ca = compile_program(build_loop_program(), Scheme.NOED, a)
        cb = compile_program(build_loop_program(), Scheme.NOED, b)
        assert VLIWExecutor(ca).run().cycles == VLIWExecutor(cb).run().cycles

    def test_watchdog(self, machine):
        cp = compile_program(build_loop_program(1000), Scheme.NOED, machine)
        r = VLIWExecutor(cp, max_cycles=50).run()
        assert r.kind is ExitKind.TIMEOUT

    def test_block_visits_counted(self, machine):
        cp = compile_program(build_loop_program(10), Scheme.NOED, machine)
        sim = VLIWExecutor(cp).run()
        assert sim.block_visits == 1 + 10 + 1  # entry + 10 loop + exit

    def test_deterministic(self, machine):
        cp = compile_program(get_workload("parser").program, Scheme.DCED, machine)
        ex = VLIWExecutor(cp)
        a = ex.run()
        b = ex.run()
        assert a.cycles == b.cycles
        assert a.output == b.output


class TestMLP:
    def test_same_cycle_misses_overlap(self):
        """Two independent loads scheduled in one cycle share their stall."""
        from repro.ir.builder import IRBuilder
        from repro.ir.program import GlobalArray, Program

        # Two loads to far-apart blocks, independent -> same cycle at iw 2.
        b = IRBuilder("main")
        b.add_and_enter("entry")
        a1 = b.movi(1)
        a2 = b.movi(900)
        v1 = b.load(a1)
        v2 = b.load(a2)
        b.out(b.add(v1, v2))
        b.halt(0)
        prog2 = Program(b.function, [GlobalArray("g", 1200)])

        # Same program but loads serialized by a data dependence.
        b = IRBuilder("main")
        b.add_and_enter("entry")
        a1 = b.movi(1)
        v1 = b.load(a1)
        # shra(v1, 63) is 0 at runtime but opaque to the optimizer
        a2 = b.add(b.shra(v1, 63), 900)
        v2 = b.load(a2)
        b.out(b.add(v1, v2))
        b.halt(0)
        prog_serial = Program(b.function, [GlobalArray("g", 1200)])

        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        par = VLIWExecutor(compile_program(prog2, Scheme.NOED, machine)).run()
        ser = VLIWExecutor(compile_program(prog_serial, Scheme.NOED, machine)).run()
        assert par.stall_cycles < ser.stall_cycles
