"""Dynamic instruction-mix profiling."""


from repro.eval.mixstats import dynamic_mix, render_mix_table, render_role_table
from repro.pipeline import Scheme, compile_program
from repro.workloads import get_workload
from tests.conftest import build_loop_program


class TestDynamicMix:
    def test_totals_match_interpreter(self, loop_program):
        from repro.ir.interp import Interpreter

        mix = dynamic_mix(loop_program, "loop")
        golden = Interpreter(loop_program).run()
        assert mix.total == golden.dyn_instructions
        assert sum(mix.by_category.values()) == mix.total

    def test_categories_sane(self, loop_program):
        mix = dynamic_mix(loop_program, "loop")
        assert mix.fraction("load") > 0
        assert mix.fraction("store") > 0
        assert mix.fraction("control") > 0
        assert mix.fraction("div") == 0.0
        assert 0 < mix.memory_density < 1
        assert 0 < mix.branch_density < 1

    def test_unprotected_code_has_orig_role_only(self, loop_program):
        mix = dynamic_mix(loop_program, "loop")
        assert mix.role_fraction("orig") == 1.0

    def test_protected_code_role_split(self, machine):
        cp = compile_program(build_loop_program(), Scheme.SCED, machine)
        mix = dynamic_mix(
            cp.program, "sced", mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        assert mix.role_fraction("dup") > 0.2
        assert mix.role_fraction("check") > 0.05
        assert mix.role_fraction("orig") < 0.7

    def test_check_branches_counted_separately(self, machine):
        cp = compile_program(build_loop_program(), Scheme.SCED, machine)
        mix = dynamic_mix(
            cp.program, "sced", mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        assert mix.fraction("check-branch") > 0

    def test_workload_characters_visible(self):
        enc = dynamic_mix(get_workload("h263enc").program, "h263enc")
        jpg = dynamic_mix(get_workload("cjpeg").program, "cjpeg")
        mcf = dynamic_mix(get_workload("mcf").program, "mcf")
        assert enc.branch_density > jpg.branch_density
        assert jpg.fraction("mul") > mcf.fraction("mul")


class TestRendering:
    def test_mix_table(self, loop_program):
        text = render_mix_table([dynamic_mix(loop_program, "loop")])
        assert "loop" in text and "alu" in text and "%" in text

    def test_role_table(self, machine):
        cp = compile_program(build_loop_program(), Scheme.DCED, machine)
        mix = dynamic_mix(
            cp.program, "dced", mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        text = render_role_table([mix])
        assert "dup" in text and "check" in text
