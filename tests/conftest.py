"""Shared fixtures."""

from __future__ import annotations

import os

import pytest

os.environ.setdefault("REPRO_CACHE", "0")  # tests never touch the disk cache

from repro.ir.builder import IRBuilder
from repro.ir.program import GlobalArray, Program
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme


def build_loop_program(n: int = 10, with_memory: bool = True) -> Program:
    """A small loop: writes i*i into buf, sums it, outputs the sum."""
    b = IRBuilder("main")
    f = b.function
    b.add_and_enter("entry")
    i = f.new_gp()
    acc = f.new_gp()
    b.movi_to(i, 0)
    b.movi_to(acc, 0)
    b.jmp("loop")
    b.add_and_enter("loop")
    sq = b.mul(i, i)
    if with_memory:
        addr = b.add(i, 1)  # buf starts at word 1
        b.store(addr, sq)
        val = b.load(addr)
    else:
        val = sq
    acc2 = b.add(acc, val)
    b.mov_to(acc, acc2)
    i2 = b.add(i, 1)
    b.mov_to(i, i2)
    p = b.cmplt(i, n)
    b.brt(p, "loop", "exit")
    b.add_and_enter("exit")
    b.out(acc)
    b.halt(0)
    globals_ = [GlobalArray("buf", max(n, 1))] if with_memory else []
    return Program(f, globals_)


@pytest.fixture
def loop_program() -> Program:
    return build_loop_program()


@pytest.fixture
def machine() -> MachineConfig:
    return MachineConfig(issue_width=2, inter_cluster_delay=1)


@pytest.fixture(params=list(Scheme), ids=lambda s: s.value)
def scheme(request) -> Scheme:
    return request.param


def pytest_addoption(parser):
    parser.addoption(
        "--heavy",
        action="store_true",
        default=False,
        help="run the heavy whole-sweep integration tests",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--heavy"):
        return
    skip = pytest.mark.skip(reason="needs --heavy")
    for item in items:
        if "heavy" in item.keywords:
            item.add_marker(skip)


def pytest_configure(config):
    config.addinivalue_line("markers", "heavy: long-running sweep tests")
