"""Campaign resilience: crashed workers, checkpoints, interrupted resumes.

The worker-crash contract under test (see ``parallel_map``): a task whose
worker raises — or whose worker process *dies* — is retried up to
``retries`` extra times on a fresh pool; a worker death cannot be
attributed to one task, so a pool crash charges an attempt to every
in-flight task.  After exhaustion the task reports to ``on_failure``
(slot ``None``) instead of aborting the map, and the campaign driver
turns exhausted shards into a ``partial`` result.
"""

import json
import os

import pytest

import repro.faults.injector as injector_mod
from repro.faults.checkpoint import CampaignCheckpoint, CheckpointError
from repro.faults.injector import CampaignResult, FaultInjector
from repro.parallel import parallel_map
from tests.conftest import build_loop_program


def _double(x):
    return x * 2


def _raise_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x * 2


def _exit_on_three(x):
    if x == 3:
        os._exit(1)  # simulate an OOM-kill / segfault: no exception, no cleanup
    return x * 2


def _exit_once(task):
    """Crash the worker the first time it sees the flag file missing."""
    x, flag = task
    if x == 3 and not os.path.exists(flag):
        open(flag, "w").close()
        os._exit(1)
    return x * 2


class TestParallelMapFailures:
    def test_raising_task_propagates_by_default(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_raise_on_three, [1, 2, 3, 4], jobs=2)

    def test_raising_task_inline_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_raise_on_three, [3], jobs=1)

    def test_on_failure_degrades_instead_of_raising(self):
        failures = []
        out = parallel_map(
            _raise_on_three, [1, 2, 3, 4], jobs=2,
            on_failure=lambda i, exc: failures.append((i, str(exc))),
        )
        assert out == [2, 4, None, 8]
        assert failures == [(2, "boom")]

    def test_on_failure_inline(self):
        failures = []
        out = parallel_map(
            _raise_on_three, [3], jobs=1,
            on_failure=lambda i, exc: failures.append(i),
        )
        assert out == [None]
        assert failures == [0]

    def test_killed_worker_exhausts_then_degrades(self):
        failures = []
        out = parallel_map(
            _exit_on_three, [1, 2, 3, 4], jobs=2, retries=1,
            on_failure=lambda i, exc: failures.append(i),
        )
        assert out[2] is None
        assert 2 in failures
        # every surviving task completed despite sharing pools with the crasher
        assert [out[i] for i in (0, 1, 3)] == [2, 4, 8]

    def test_killed_worker_without_on_failure_raises(self):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            parallel_map(_exit_on_three, [1, 2, 3, 4], jobs=2, retries=0)

    def test_transient_crash_retries_cleanly(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        tasks = [(x, flag) for x in (1, 2, 3, 4)]
        failures = []
        out = parallel_map(
            _exit_once, tasks, jobs=2, retries=2,
            on_failure=lambda i, exc: failures.append(i),
        )
        assert out == [2, 4, 6, 8]
        assert failures == []


HEADER = {
    "seed": 1, "trials": 50, "fault_model": "reg-bit",
    "golden_dyn": 123, "shard_trials": 25, "reference_dyn": None,
}


class TestCheckpointFile:
    def test_fresh_load_writes_header(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ck = CampaignCheckpoint(path, HEADER)
        assert ck.load(resume=False) == {}
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["format"] == "repro-campaign-checkpoint"

    def test_append_then_resume_round_trip(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ck = CampaignCheckpoint(path, HEADER)
        ck.load(resume=False)
        rec = {"shard": 0, "trials": 25, "counts": {"benign": 25},
               "faults": 25, "latencies": []}
        ck.append(rec)
        got = CampaignCheckpoint(path, HEADER).load(resume=True)
        assert got == {0: rec}

    def test_resume_without_file_starts_fresh(self, tmp_path):
        ck = CampaignCheckpoint(tmp_path / "missing.jsonl", HEADER)
        assert ck.load(resume=True) == {}

    def test_identity_mismatch_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        CampaignCheckpoint(path, HEADER).load(resume=False)
        other = dict(HEADER, seed=2)
        with pytest.raises(CheckpointError, match="seed"):
            CampaignCheckpoint(path, other).load(resume=True)

    def test_torn_tail_dropped_and_healed(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ck = CampaignCheckpoint(path, HEADER)
        ck.load(resume=False)
        rec = {"shard": 0, "trials": 25, "counts": {"benign": 25},
               "faults": 25, "latencies": []}
        ck.append(rec)
        with open(path, "a") as f:
            f.write('{"shard": 1, "trials": 2')  # crash mid-append
        got = CampaignCheckpoint(path, HEADER).load(resume=True)
        assert got == {0: rec}
        # healed: the torn line is gone, so appends stay well-formed
        assert path.read_text().endswith(json.dumps(rec) + "\n")
        # ...and preserved as evidence in the quarantine file
        bad = path.with_name(f"{path.name}.bad")
        assert bad.read_text().startswith('{"shard": 1, "trials": 2')

    def test_torn_tail_quarantine_warns_once(self, tmp_path, caplog):
        import logging

        path = tmp_path / "c.jsonl"
        ck = CampaignCheckpoint(path, HEADER)
        ck.load(resume=False)
        with open(path, "a") as f:
            f.write('{"shard": 0, "tri')
        with caplog.at_level(logging.WARNING, logger="repro.faults.checkpoint"):
            CampaignCheckpoint(path, HEADER).load(resume=True)
        warnings = [r for r in caplog.records if "torn" in r.message]
        assert len(warnings) == 1

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ck = CampaignCheckpoint(path, HEADER)
        ck.load(resume=False)
        with open(path, "a") as f:
            f.write("garbage\n")
            f.write(json.dumps({"shard": 1, "trials": 25,
                                "counts": {}, "faults": 25,
                                "latencies": []}) + "\n")
        with pytest.raises(CheckpointError, match="line 2"):
            CampaignCheckpoint(path, HEADER).load(resume=True)

    def test_unknown_outcome_rejected(self, tmp_path):
        path = tmp_path / "c.jsonl"
        ck = CampaignCheckpoint(path, HEADER)
        ck.load(resume=False)
        ck.append({"shard": 0, "trials": 25, "counts": {"vaporized": 25},
                   "faults": 25, "latencies": []})
        with pytest.raises(ValueError):
            CampaignCheckpoint(path, HEADER).load(resume=True)


@pytest.fixture(scope="module")
def loop_injector():
    return FaultInjector(build_loop_program())


class TestCampaignCheckpointResume:
    TRIALS = 60  # 3 shards at SHARD_TRIALS=25

    def _truncate_to_shards(self, path, k):
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[: 1 + k]) + "\n")

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_kill_and_resume_bit_identical(self, loop_injector, tmp_path, jobs):
        """Interrupted after k shards + resumed == uninterrupted, any --jobs."""
        full = loop_injector.run_campaign(trials=self.TRIALS, seed=11)
        path = tmp_path / "c.jsonl"
        loop_injector.run_campaign(trials=self.TRIALS, seed=11, checkpoint=path)
        self._truncate_to_shards(path, 1)  # "crash" with one shard recorded
        resumed = loop_injector.run_campaign(
            trials=self.TRIALS, seed=11, checkpoint=path, resume=True, jobs=jobs
        )
        assert resumed.counts == full.counts
        assert resumed.total_faults_injected == full.total_faults_injected
        assert resumed.detection_latency_sum == full.detection_latency_sum
        assert resumed.trials == full.trials == self.TRIALS
        assert not resumed.partial

    def test_resume_with_everything_done_runs_nothing(self, loop_injector, tmp_path):
        path = tmp_path / "c.jsonl"
        full = loop_injector.run_campaign(trials=self.TRIALS, seed=11, checkpoint=path)
        resumed = loop_injector.run_campaign(
            trials=self.TRIALS, seed=11, checkpoint=path, resume=True
        )
        assert resumed.counts == full.counts

    def test_without_resume_checkpoint_is_truncated(self, loop_injector, tmp_path):
        path = tmp_path / "c.jsonl"
        loop_injector.run_campaign(trials=self.TRIALS, seed=11, checkpoint=path)
        loop_injector.run_campaign(trials=25, seed=12, checkpoint=path)
        lines = path.read_text().splitlines()
        assert json.loads(lines[0])["seed"] == 12
        assert len(lines) == 2  # header + the single fresh shard

    def test_resume_foreign_campaign_raises(self, loop_injector, tmp_path):
        path = tmp_path / "c.jsonl"
        loop_injector.run_campaign(trials=self.TRIALS, seed=11, checkpoint=path)
        with pytest.raises(CheckpointError):
            loop_injector.run_campaign(
                trials=self.TRIALS, seed=99, checkpoint=path, resume=True
            )


class TestCampaignDegradation:
    """Shard loss (all retries exhausted) must not lose the campaign."""

    def _lossy_parallel_map(self, lost_task_index):
        """A parallel_map that computes inline but 'loses' one task."""

        def fake(fn, tasks, jobs=1, initializer=None, initargs=(),
                 on_result=None, retries=0, retry_backoff=0.0,
                 timeout=None, on_failure=None, **kwargs):
            if initializer is not None:
                initializer(*initargs)
            results = []
            for i, task in enumerate(tasks):
                if i == lost_task_index:
                    on_failure(i, RuntimeError("worker died"))
                    results.append(None)
                    continue
                r = fn(task)
                if on_result is not None:
                    on_result(i, r)
                results.append(r)
            return results

        return fake

    def test_partial_result_merges_survivors(self, loop_injector, monkeypatch, tmp_path):
        full = loop_injector.run_campaign(trials=75, seed=5)
        monkeypatch.setattr(
            injector_mod, "parallel_map", self._lossy_parallel_map(1)
        )
        # Pin one shard per pool task so "task 1 lost" means "shard 1 lost"
        # regardless of the cost-calibrated task grouping.
        monkeypatch.setattr(injector_mod, "MIN_TASK_SECONDS", 0.0)
        path = tmp_path / "c.jsonl"
        res = loop_injector.run_campaign(
            trials=75, seed=5, jobs=2, checkpoint=path
        )
        assert res.partial
        assert res.lost_trials == 25
        assert res.trials == 50
        assert sum(res.counts.values()) == 50
        assert sum(res.fraction(o) for o in res.counts) == pytest.approx(1.0)
        # the lost shard never reached the checkpoint...
        recorded = {json.loads(ln)["shard"]
                    for ln in path.read_text().splitlines()[1:]}
        assert recorded == {0, 2}
        # ...so a later resume retries exactly it and completes the campaign
        monkeypatch.setattr(injector_mod, "parallel_map", parallel_map)
        healed = loop_injector.run_campaign(
            trials=75, seed=5, checkpoint=path, resume=True
        )
        assert not healed.partial
        assert healed.counts == full.counts

    def test_empty_campaign_coverage_is_zero(self, loop_injector):
        """Regression: trials=0 used to report coverage 1.0."""
        res = loop_injector.run_campaign(trials=0, seed=1)
        assert res.trials == 0
        assert res.coverage == 0.0
        assert CampaignResult(trials=0).coverage == 0.0

    def test_all_shards_lost_yields_empty_partial(self, loop_injector, monkeypatch):
        def lose_all(fn, tasks, jobs=1, initializer=None, initargs=(),
                     on_result=None, retries=0, retry_backoff=0.0,
                     timeout=None, on_failure=None, **kwargs):
            for i in range(len(tasks)):
                on_failure(i, RuntimeError("worker died"))
            return [None] * len(tasks)

        monkeypatch.setattr(injector_mod, "parallel_map", lose_all)
        res = loop_injector.run_campaign(trials=50, seed=5, jobs=2)
        assert res.partial
        assert res.trials == 0
        assert res.lost_trials == 50
        assert res.coverage == 0.0  # the empty-campaign fix, end to end


def _sleep_forever(x):
    import time as _time

    if x == 3:
        _time.sleep(3600)  # a hung worker: alive but never finishing
    return x * 2


def _sleep_once(task):
    """Hang the first time the flag file is absent, then behave."""
    import time as _time

    x, flag = task
    if x == 3 and not os.path.exists(flag):
        open(flag, "w").close()
        _time.sleep(3600)
    return x * 2


class TestHungWorkerTimeout:
    """The ``timeout=`` watchdog: hung (not just dead) workers are killed."""

    def test_hung_task_killed_and_charged(self):
        failures = []
        out = parallel_map(
            _sleep_forever, [1, 2, 3, 4], jobs=2, retries=0, timeout=1.0,
            on_failure=lambda i, exc: failures.append((i, type(exc).__name__)),
        )
        assert out[2] is None
        assert failures == [(2, "TimeoutError")]
        # bystanders sharing the killed pool are retried uncharged
        assert [out[i] for i in (0, 1, 3)] == [2, 4, 8]

    def test_hung_task_recovers_on_retry(self, tmp_path):
        flag = str(tmp_path / "hung-once")
        tasks = [(x, flag) for x in (1, 2, 3, 4)]
        failures = []
        out = parallel_map(
            _sleep_once, tasks, jobs=2, retries=1, timeout=1.0,
            on_failure=lambda i, exc: failures.append(i),
        )
        assert out == [2, 4, 6, 8]
        assert failures == []

    def test_no_timeout_means_no_watchdog(self):
        # fast tasks with timeout=None keep the historical behaviour
        assert parallel_map(_double, [1, 2, 3], jobs=2) == [2, 4, 6]

    def test_campaign_shard_timeout_plumbed(self, loop_injector):
        """shard_timeout on an all-healthy campaign changes nothing."""
        base = loop_injector.run_campaign(trials=50, seed=3)
        timed = loop_injector.run_campaign(
            trials=50, seed=3, jobs=2, shard_timeout=120.0
        )
        assert timed.counts == base.counts
        assert not timed.partial


class TestRetryJitter:
    def test_backoff_sleep_is_jittered(self, monkeypatch):
        import repro.parallel as parallel_mod

        naps = []
        monkeypatch.setattr(parallel_mod.time, "sleep", naps.append)
        out = parallel_map(
            _raise_on_three, [1, 2, 3, 4], jobs=2, retries=2,
            retry_backoff=1.0, retry_jitter=0.25,
            on_failure=lambda i, exc: None,
        )
        assert out == [2, 4, None, 8]
        assert len(naps) == 2  # one nap per retry round
        for round_no, nap in enumerate(naps, start=1):
            base = 1.0 * 2 ** (round_no - 1)  # exponential backoff
            assert base <= nap <= base * 1.25

    def test_zero_jitter_keeps_exact_backoff(self, monkeypatch):
        import repro.parallel as parallel_mod

        naps = []
        monkeypatch.setattr(parallel_mod.time, "sleep", naps.append)
        parallel_map(
            _raise_on_three, [1, 2, 3, 4], jobs=2, retries=1,
            retry_backoff=0.5, retry_jitter=0.0,
            on_failure=lambda i, exc: None,
        )
        assert naps == [0.5]


class TestChaosPoints:
    """Seeded infrastructure chaos (REPRO_CHAOS) in pool workers."""

    def test_unarmed_chaos_is_inert(self, monkeypatch):
        from repro.chaos import chaos_point

        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        chaos_point("worker.shard")  # must not raise or exit

    def test_worker_shard_kill_once_retries_bit_identical(
        self, loop_injector, tmp_path, monkeypatch
    ):
        """A worker SIGKILLed before a shard retries to exact counts."""
        full = loop_injector.run_campaign(trials=50, seed=9)
        flag = tmp_path / "chaos-fired"
        monkeypatch.setenv("REPRO_CHAOS", "worker.shard:1:once")
        monkeypatch.setenv("REPRO_CHAOS_FLAG", str(flag))
        res = loop_injector.run_campaign(trials=50, seed=9, jobs=2, retries=2)
        assert flag.exists(), "the chaos point must actually have fired"
        assert res.counts == full.counts
        assert not res.partial
