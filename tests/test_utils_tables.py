import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "value" in lines[0]
        assert "-" in lines[1]
        assert lines[2].startswith("a")
        # numeric column right-aligned: widths equal
        assert len(lines[2]) <= len(lines[0]) + 2

    def test_title(self):
        text = format_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"
        assert set(text.splitlines()[1]) == {"="}

    def test_wrong_arity_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_left_align_option(self):
        text = format_table(["a", "b"], [["x", "y"]], align_right=False)
        assert "x" in text and "y" in text

    def test_wide_cells_extend_columns(self):
        text = format_table(["h"], [["a-very-long-cell"]])
        header, sep, row = text.splitlines()
        assert len(sep) >= len("a-very-long-cell")
