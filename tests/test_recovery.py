"""Detection-triggered restart recovery (extension)."""

import pytest

from repro.ir.interp import ExitKind, FaultSpec, Interpreter
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.recovery import (
    RecoveringExecutor,
    run_recovery_campaign,
)
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload
from tests.conftest import build_loop_program


@pytest.fixture(scope="module")
def protected():
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    return compile_program(build_loop_program(), Scheme.SCED, machine)


def find_detected_fault(cp):
    """A FaultSpec that makes the protected program detect."""
    interp = Interpreter(cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words)
    golden = interp.run()
    for dyn in range(0, golden.dyn_instructions, 3):
        r = interp.run(faults=(FaultSpec(dyn, 7),))
        if r.kind is ExitKind.DETECTED:
            return FaultSpec(dyn, 7)
    pytest.fail("no detecting fault found")


class TestRecoveringExecutor:
    def test_fault_free_single_attempt(self, protected):
        rec = RecoveringExecutor(
            protected.program,
            mem_words=protected.mem_words,
            frame_words=protected.frame_words,
        ).run()
        assert rec.attempts == 1
        assert not rec.recovered
        assert rec.final.kind is ExitKind.OK

    def test_detected_fault_recovers(self, protected):
        spec = find_detected_fault(protected)
        executor = RecoveringExecutor(
            protected.program,
            mem_words=protected.mem_words,
            frame_words=protected.frame_words,
        )
        golden = executor.interp.run()
        rec = executor.run(faults=(spec,))
        assert rec.recovered
        assert rec.attempts == 2
        assert rec.final.output == golden.output
        assert rec.total_dyn_instructions > rec.final.dyn_instructions

    def test_persistent_fault_gives_up(self, protected):
        spec = find_detected_fault(protected)
        executor = RecoveringExecutor(
            protected.program,
            mem_words=protected.mem_words,
            frame_words=protected.frame_words,
            max_attempts=2,
        )
        rec = executor.run(
            fault_schedule={1: (spec,), 2: (spec,)},
        )
        assert rec.final.kind is ExitKind.DETECTED
        assert rec.attempts == 2
        assert not rec.recovered

    def test_bad_attempts_rejected(self, protected):
        from repro.errors import SimError

        with pytest.raises(SimError):
            RecoveringExecutor(protected.program, max_attempts=0)


class TestRecoveryCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        prog = get_workload("parser").program
        noed = compile_program(prog, Scheme.NOED, machine)
        ref = VLIWExecutor(noed).run().dyn_instructions
        cp = compile_program(prog, Scheme.CASTED, machine)
        return run_recovery_campaign(
            cp.program,
            trials=100,
            seed=21,
            mem_words=cp.mem_words,
            frame_words=cp.frame_words,
            reference_dyn=ref,
        )

    def test_counts_sum(self, campaign):
        assert sum(campaign.counts.values()) == 100

    def test_most_trials_complete_correctly(self, campaign):
        # benign + recovered dominates once detection triggers restart
        assert campaign.correct_completion_rate > 0.5

    def test_recovered_trials_exist(self, campaign):
        assert campaign.counts.get("recovered", 0) > 10

    def test_no_unrecovered_transients(self, campaign):
        # a transient fault never survives a re-execution
        assert campaign.counts.get("unrecovered", 0) == 0

    def test_overhead_accounted(self, campaign):
        assert campaign.recovery_instructions > 0
        assert 0.0 < campaign.recovery_overhead < 3.0

    def test_deterministic(self):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        cp = compile_program(build_loop_program(), Scheme.SCED, machine)
        kw = dict(
            trials=40,
            seed=5,
            mem_words=cp.mem_words,
            frame_words=cp.frame_words,
        )
        a = run_recovery_campaign(cp.program, **kw)
        b = run_recovery_campaign(cp.program, **kw)
        assert a.counts == b.counts
