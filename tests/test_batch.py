"""Batched fault-trial execution: planner units and engine parity.

The batched engine (``repro.sim.batch``) restructures *how* campaign
trials execute — snapshot-bucketed groups, one shared golden-prefix
advance per group, trace-guided suffixes, golden re-convergence early
exits — while promising bit-identical :class:`CampaignResult`s.  These
tests hold it to that promise three ways at once (batched vs the scalar
compiled loop vs the interp differential oracle) across the full
workload x scheme matrix and every fault model, and exercise the pieces
the promise rests on: group planning never reorders RNG consumption,
checkpoint/resume composes with batching mid-campaign, and the trace
guide is a pure engine swap (disabling it changes nothing but speed).
"""

from __future__ import annotations

import pytest

from repro.faults.injector import MIN_TASK_SECONDS, FaultInjector
from repro.faults.models import fault_model_names
from repro.ir.interp import FaultSpec
from repro.machine.config import MachineConfig
from repro.parallel import plan_task_groups
from repro.pipeline import Scheme, compile_program
from repro.sim.batch import TrialPlan, plan_groups
from repro.workloads import get_workload, workload_names

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=1)
SEED = 2013
TRIALS = 25  # one shard: fastest config that still exercises grouping

_COMPILED: dict[tuple[str, Scheme], object] = {}


def _compiled(workload: str, scheme: Scheme):
    key = (workload, scheme)
    if key not in _COMPILED:
        _COMPILED[key] = compile_program(
            get_workload(workload).program, scheme, MACHINE
        )
    return _COMPILED[key]


def _injector(cp, **kwargs) -> FaultInjector:
    return FaultInjector(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
        **kwargs,
    )


def _signature(res) -> tuple:
    return (
        res.counts,
        res.trials,
        res.total_faults_injected,
        res.detection_latency_sum,
        res.detections_timed,
    )


def _plan(index: int, dyn: int) -> TrialPlan:
    return TrialPlan(
        index=index,
        faults=(FaultSpec(dyn_index=dyn, kind="reg", bit=0),),
    )


class TestPlanGroups:
    def test_buckets_by_nearest_snapshot_at_or_before(self):
        plans = [_plan(0, 5), _plan(1, 150), _plan(2, 99), _plan(3, 100)]
        groups = plan_groups(plans, snap_keys=[0, 100, 200])
        assert [g.snap_index for g in groups] == [0, 1]
        assert [t.index for t in groups[0].trials] == [0, 2]
        assert [t.index for t in groups[1].trials] == [3, 1]

    def test_faults_before_first_snapshot_use_reset_bucket(self):
        groups = plan_groups([_plan(0, 3)], snap_keys=[10, 20])
        assert [g.snap_index for g in groups] == [-1]

    def test_no_snapshots_is_one_reset_bucket(self):
        plans = [_plan(i, 100 - i) for i in range(4)]
        groups = plan_groups(plans, snap_keys=[])
        assert [g.snap_index for g in groups] == [-1]
        # Trials sorted by fault position for a strictly forward advance.
        assert [t.first_dyn for t in groups[0].trials] == [97, 98, 99, 100]

    def test_tie_on_fault_position_breaks_by_trial_index(self):
        plans = [_plan(3, 50), _plan(1, 50), _plan(2, 50)]
        groups = plan_groups(plans, snap_keys=[0])
        assert [t.index for t in groups[0].trials] == [1, 2, 3]

    def test_grouping_is_a_pure_reordering(self):
        plans = [_plan(i, dyn) for i, dyn in enumerate([7, 3, 250, 99, 180])]
        groups = plan_groups(plans, snap_keys=[0, 100, 200])
        regrouped = sorted(
            (t for g in groups for t in g.trials), key=lambda t: t.index
        )
        assert regrouped == plans


class TestPlanTaskGroups:
    def test_groups_cover_all_items_in_order(self):
        groups = plan_task_groups(10, 0.01, jobs=2, min_task_seconds=0.25)
        assert [i for g in groups for i in g] == list(range(10))

    def test_cheap_items_are_grouped_to_min_task_seconds(self):
        # 10ms items, 250ms floor -> 25 items per task.
        groups = plan_task_groups(100, 0.010, jobs=2, min_task_seconds=0.25)
        assert len(groups[0]) == 25

    def test_grouping_capped_so_every_worker_gets_work(self):
        # The floor would ask for one giant task; the jobs cap splits it.
        groups = plan_task_groups(8, 0.001, jobs=4, min_task_seconds=10.0)
        assert len(groups) == 4
        assert max(len(g) for g in groups) == 2

    def test_expensive_items_stay_singleton_tasks(self):
        groups = plan_task_groups(5, 3.0, jobs=2, min_task_seconds=0.25)
        assert [len(g) for g in groups] == [1] * 5

    def test_empty_and_invalid(self):
        assert plan_task_groups(0, 1.0, jobs=2) == []
        with pytest.raises(ValueError):
            plan_task_groups(-1, 1.0, jobs=2)


@pytest.mark.parametrize("workload", workload_names())
@pytest.mark.parametrize(
    "scheme", [Scheme.NOED, Scheme.SCED, Scheme.DCED, Scheme.CASTED]
)
class TestThreeWayParityMatrix:
    """Batched == scalar == interp on every workload x scheme cell."""

    def test_three_way_parity(self, workload, scheme):
        cp = _compiled(workload, scheme)
        interp = _injector(cp, backend="interp").run_campaign(
            TRIALS, SEED, jobs=1, batch=False
        )
        scalar = _injector(cp, backend="compiled").run_campaign(
            TRIALS, SEED, jobs=1, batch=False
        )
        batched = _injector(cp, backend="compiled").run_campaign(
            TRIALS, SEED, jobs=1, batch=True
        )
        assert _signature(scalar) == _signature(interp)
        assert _signature(batched) == _signature(interp)


@pytest.mark.parametrize("model", fault_model_names())
def test_three_way_parity_per_fault_model(model):
    cp = _compiled("parser", Scheme.CASTED)
    results = [
        _injector(cp, backend=backend, fault_model=model).run_campaign(
            30, SEED, jobs=1, batch=batch
        )
        for backend, batch in (
            ("interp", False), ("compiled", False), ("compiled", True)
        )
    ]
    assert _signature(results[1]) == _signature(results[0])
    assert _signature(results[2]) == _signature(results[0])


class TestCheckpointResumeMidBatch:
    def test_resume_mid_campaign_is_bit_identical(self, tmp_path):
        cp = _compiled("parser", Scheme.CASTED)
        full = _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=True
        )

        ckpt = tmp_path / "campaign.ckpt"
        _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=True, checkpoint=str(ckpt)
        )
        # Simulate an interruption after the first completed shard: keep
        # the header line and one shard record.
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:2]) + "\n")

        resumed = _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=True, checkpoint=str(ckpt), resume=True
        )
        assert _signature(resumed) == _signature(full)

    def test_scalar_checkpoint_resumes_into_batched_run(self, tmp_path):
        """Shards are the checkpoint unit, so the engine can change."""
        cp = _compiled("parser", Scheme.CASTED)
        full = _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=False
        )

        ckpt = tmp_path / "campaign.ckpt"
        _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=False, checkpoint=str(ckpt)
        )
        lines = ckpt.read_text().splitlines()
        ckpt.write_text("\n".join(lines[:2]) + "\n")

        resumed = _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=True, checkpoint=str(ckpt), resume=True
        )
        assert _signature(resumed) == _signature(full)


class TestEngineKnobs:
    def test_trace_guide_is_result_invariant(self):
        cp = _compiled("parser", Scheme.CASTED)
        guided = _injector(cp, backend="compiled")
        unguided = _injector(cp, backend="compiled")
        unguided.batch_runner()._guide = None
        r1 = guided.run_campaign(50, SEED, jobs=1, batch=True)
        r2 = unguided.run_campaign(50, SEED, jobs=1, batch=True)
        assert _signature(r1) == _signature(r2)
        assert guided.batch_runner()._guide.visits > 0

    def test_batch_defaults_follow_backend(self):
        cp = _compiled("parser", Scheme.CASTED)
        assert _injector(cp, backend="compiled").resolve_batch(None) is True
        assert _injector(cp, backend="interp").resolve_batch(None) is False
        assert _injector(cp, backend="compiled").resolve_batch(False) is False

    def test_batch_env_override(self, monkeypatch):
        cp = _compiled("parser", Scheme.CASTED)
        inj = _injector(cp, backend="compiled")
        monkeypatch.setenv("REPRO_BATCH", "0")
        assert inj.resolve_batch(None) is False
        monkeypatch.setenv("REPRO_BATCH", "1")
        assert inj.resolve_batch(None) is True
        # An explicit argument beats the environment.
        assert inj.resolve_batch(False) is False

    def test_batched_pool_campaign_matches_serial(self):
        cp = _compiled("parser", Scheme.CASTED)
        serial = _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=1, batch=True
        )
        pooled = _injector(cp, backend="compiled").run_campaign(
            75, SEED, jobs=2, batch=True
        )
        assert _signature(pooled) == _signature(serial)

    def test_min_task_seconds_constant_exported(self):
        assert MIN_TASK_SECONDS > 0
