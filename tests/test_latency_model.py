"""The shared edge pricing model (BUG and the scheduler must agree)."""

import pytest

from repro.errors import ScheduleError
from repro.ir.dfg import DepKind, Edge
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.registers import GP, PR
from repro.machine.config import MachineConfig
from repro.passes.latency import edge_issue_latency, same_cluster_edge_latency


@pytest.fixture
def machine():
    return MachineConfig(issue_width=2, inter_cluster_delay=3)


def _edge(kind):
    return Edge(0, 1, kind, GP(0) if kind is DepKind.DATA else None)


def add():
    return Instruction(Opcode.ADD, dests=(GP(0),), srcs=(GP(1), GP(2)))


def mul():
    return Instruction(Opcode.MUL, dests=(GP(0),), srcs=(GP(1), GP(2)))


class TestDataEdges:
    def test_same_cluster_is_producer_latency(self, machine):
        assert edge_issue_latency(
            _edge(DepKind.DATA), add(), machine, src_cluster=0, dst_cluster=0
        ) == 1
        assert edge_issue_latency(
            _edge(DepKind.DATA), mul(), machine, src_cluster=1, dst_cluster=1
        ) == 3

    def test_cross_cluster_adds_delay(self, machine):
        assert edge_issue_latency(
            _edge(DepKind.DATA), add(), machine, src_cluster=0, dst_cluster=1
        ) == 1 + 3
        assert edge_issue_latency(
            _edge(DepKind.DATA), mul(), machine, src_cluster=1, dst_cluster=0
        ) == 3 + 3

    def test_missing_clusters_rejected(self, machine):
        with pytest.raises(ScheduleError):
            edge_issue_latency(_edge(DepKind.DATA), add(), machine)

    def test_uses_instruction_cluster_when_set(self, machine):
        producer = add()
        producer.cluster = 1
        assert edge_issue_latency(
            _edge(DepKind.DATA), producer, machine, dst_cluster=1
        ) == 1


class TestOtherKinds:
    def test_anti_is_free(self, machine):
        assert edge_issue_latency(
            _edge(DepKind.ANTI), add(), machine, src_cluster=0, dst_cluster=1
        ) == 0

    def test_output_is_producer_latency(self, machine):
        assert edge_issue_latency(
            _edge(DepKind.OUTPUT), mul(), machine, src_cluster=0, dst_cluster=1
        ) == 3

    def test_mem_after_store_is_one(self, machine):
        store = Instruction(Opcode.STORE, srcs=(GP(0), GP(1)), imm=0)
        assert edge_issue_latency(
            _edge(DepKind.MEM), store, machine, src_cluster=0, dst_cluster=0
        ) == 1

    def test_mem_after_load_is_free(self, machine):
        load = Instruction(Opcode.LOAD, dests=(GP(0),), srcs=(GP(1),), imm=0)
        assert edge_issue_latency(
            _edge(DepKind.MEM), load, machine, src_cluster=0, dst_cluster=0
        ) == 0

    def test_ctrl_after_check_branch_is_one(self, machine):
        chk = Instruction(
            Opcode.CHKBR, srcs=(PR(0),), targets=("__detect__",)
        )
        assert edge_issue_latency(
            _edge(DepKind.CTRL), chk, machine, src_cluster=0, dst_cluster=0
        ) == 1

    def test_ctrl_terminator_barrier_uses_full_latency(self, machine):
        assert edge_issue_latency(
            _edge(DepKind.CTRL), mul(), machine, src_cluster=0, dst_cluster=0
        ) == 3


class TestSameClusterShortcut:
    def test_matches_zero_delay_pricing(self, machine):
        for kind in (DepKind.DATA, DepKind.ANTI, DepKind.OUTPUT, DepKind.CTRL):
            assert same_cluster_edge_latency(
                _edge(kind), mul(), machine
            ) == edge_issue_latency(
                _edge(kind), mul(), machine, src_cluster=0, dst_cluster=0
            )

    def test_ignores_delay(self):
        fast = MachineConfig(issue_width=1, inter_cluster_delay=0)
        slow = MachineConfig(issue_width=1, inter_cluster_delay=4)
        assert same_cluster_edge_latency(
            _edge(DepKind.DATA), add(), fast
        ) == same_cluster_edge_latency(_edge(DepKind.DATA), add(), slow)
