"""The ISA's functional semantics vs an independent Python model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ArithmeticTrap
from repro.isa.opcodes import Opcode
from repro.isa.semantics import eval_alu, eval_compare, to_signed, wrap64

u64 = st.integers(0, 2**64 - 1)
s64 = st.integers(-(2**63), 2**63 - 1)


class TestWrapSigned:
    @given(st.integers(-(2**70), 2**70))
    def test_wrap_in_range(self, x):
        assert 0 <= wrap64(x) < 2**64

    @given(u64)
    def test_roundtrip(self, x):
        assert wrap64(to_signed(x)) == x

    @given(s64)
    def test_signed_roundtrip(self, x):
        assert to_signed(wrap64(x)) == x

    def test_sign_boundary(self):
        assert to_signed(2**63) == -(2**63)
        assert to_signed(2**63 - 1) == 2**63 - 1


class TestArithmetic:
    @given(s64, s64)
    def test_add_sub_mul(self, a, b):
        ua, ub = wrap64(a), wrap64(b)
        assert to_signed(eval_alu(Opcode.ADD, (ua, ub))) == to_signed(wrap64(a + b))
        assert to_signed(eval_alu(Opcode.SUB, (ua, ub))) == to_signed(wrap64(a - b))
        assert eval_alu(Opcode.MUL, (ua, ub)) == wrap64(a * b)

    @given(s64, s64.filter(lambda b: b != 0))
    def test_div_truncates_toward_zero(self, a, b):
        q = to_signed(eval_alu(Opcode.DIV, (wrap64(a), wrap64(b))))
        expected = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            expected = -expected
        assert q == to_signed(wrap64(expected))

    @given(s64, s64.filter(lambda b: b != 0))
    def test_rem_identity(self, a, b):
        q = to_signed(eval_alu(Opcode.DIV, (wrap64(a), wrap64(b))))
        r = to_signed(eval_alu(Opcode.REM, (wrap64(a), wrap64(b))))
        assert to_signed(wrap64(q * b + r)) == a
        if r != 0:
            assert (r < 0) == (a < 0)  # C-style remainder sign

    def test_div_by_zero_traps(self):
        with pytest.raises(ArithmeticTrap):
            eval_alu(Opcode.DIV, (5, 0))
        with pytest.raises(ArithmeticTrap):
            eval_alu(Opcode.REM, (5, 0))

    @given(u64, u64)
    def test_bitwise(self, a, b):
        assert eval_alu(Opcode.AND, (a, b)) == a & b
        assert eval_alu(Opcode.OR, (a, b)) == a | b
        assert eval_alu(Opcode.XOR, (a, b)) == a ^ b

    @given(u64, st.integers(0, 200))
    def test_shifts_mask_amount(self, a, sh):
        assert eval_alu(Opcode.SHL, (a, sh)) == wrap64(a << (sh & 63))
        assert eval_alu(Opcode.SHRL, (a, sh)) == a >> (sh & 63)
        assert to_signed(eval_alu(Opcode.SHRA, (a, sh))) == to_signed(a) >> (sh & 63)

    @given(s64, s64)
    def test_min_max(self, a, b):
        assert to_signed(eval_alu(Opcode.MIN, (wrap64(a), wrap64(b)))) == min(a, b)
        assert to_signed(eval_alu(Opcode.MAX, (wrap64(a), wrap64(b)))) == max(a, b)

    @given(s64)
    def test_unary(self, a):
        ua = wrap64(a)
        assert to_signed(eval_alu(Opcode.NEG, (ua,))) == to_signed(wrap64(-a))
        assert to_signed(eval_alu(Opcode.ABS, (ua,))) == to_signed(wrap64(abs(a)))
        assert eval_alu(Opcode.NOT, (ua,)) == wrap64(~a)

    @given(u64, u64, st.integers(0, 1))
    def test_select(self, a, b, p):
        assert eval_alu(Opcode.SELECT, (p, a, b)) == (a if p else b)

    def test_mov_identity(self):
        assert eval_alu(Opcode.MOV, (123,)) == 123


class TestCompares:
    @given(s64, s64)
    def test_all_orderings(self, a, b):
        ua, ub = wrap64(a), wrap64(b)
        assert eval_compare(Opcode.CMPEQ, ua, ub) == int(a == b)
        assert eval_compare(Opcode.CMPNE, ua, ub) == int(a != b)
        assert eval_compare(Opcode.CMPLT, ua, ub) == int(a < b)
        assert eval_compare(Opcode.CMPLE, ua, ub) == int(a <= b)
        assert eval_compare(Opcode.CMPGT, ua, ub) == int(a > b)
        assert eval_compare(Opcode.CMPGE, ua, ub) == int(a >= b)

    @given(st.integers(0, 1), st.integers(0, 1))
    def test_pne(self, a, b):
        assert eval_compare(Opcode.PNE, a, b) == int(a != b)

    def test_signed_comparison_across_boundary(self):
        # unsigned 2**63 is the most negative signed value
        assert eval_compare(Opcode.CMPLT, 2**63, 0) == 1
        assert eval_compare(Opcode.CMPGT, 2**63 - 1, 0) == 1

    def test_non_compare_raises(self):
        with pytest.raises(ValueError):
            eval_compare(Opcode.ADD, 1, 2)

    def test_non_alu_raises(self):
        with pytest.raises(ValueError):
            eval_alu(Opcode.CMPEQ, (1, 2))
