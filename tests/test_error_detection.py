"""The CASTED error-detection pass (paper Algorithm 1) invariants."""

import pytest

from repro.frontend import compile_source
from repro.ir.basic_block import DETECT_LABEL
from repro.ir.interp import ExitKind, Interpreter
from repro.ir.program import Program
from repro.ir.verifier import verify_program
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.passes.base import PassContext
from repro.passes.error_detection import ErrorDetectionPass, redundant_fraction
from tests.conftest import build_loop_program


def apply_ed(program: Program):
    ctx = PassContext()
    ErrorDetectionPass().run(program, ctx)
    verify_program(program)
    return ctx.artifacts["error_detection"]


@pytest.fixture
def protected_loop():
    prog = build_loop_program()
    info = apply_ed(prog)
    return prog, info


class TestReplication:
    def test_every_protectable_instruction_duplicated(self, protected_loop):
        prog, info = protected_loop
        for _, _, insn in prog.main.all_instructions():
            if insn.role is Role.ORIG and insn.protectable:
                assert info.table.has_duplicate(insn), str(insn)

    def test_duplicate_precedes_original(self, protected_loop):
        prog, info = protected_loop
        for block in prog.main.blocks():
            seen_dups = {}
            for insn in block.instructions:
                if insn.role is Role.DUP:
                    seen_dups[insn.dup_of] = insn
                elif insn.role is Role.ORIG and insn.uid in info.table.dup_of_orig:
                    assert insn.uid in seen_dups, "replica must come before original"

    def test_nonreplicated_categories(self, protected_loop):
        prog, _ = protected_loop
        for _, _, insn in prog.main.all_instructions():
            if insn.role is Role.DUP:
                assert insn.info.replicable
                assert insn.opcode not in (
                    Opcode.STORE, Opcode.OUT, Opcode.BRT, Opcode.JMP, Opcode.HALT,
                )

    def test_same_opcode_and_imm(self, protected_loop):
        prog, info = protected_loop
        for dup_uid, orig in info.table.orig_of_dup.items():
            dup = info.table.dup_of_orig[orig.uid]
            assert dup.opcode is orig.opcode
            assert dup.imm == orig.imm


class TestIsolation:
    def test_replicas_never_write_original_registers(self, protected_loop):
        prog, _ = protected_loop
        orig_written = set()
        for _, _, insn in prog.main.all_instructions():
            if insn.role is Role.ORIG:
                orig_written.update(insn.writes())
        for _, _, insn in prog.main.all_instructions():
            if insn.role in (Role.DUP, Role.SHADOW_COPY):
                for d in insn.writes():
                    assert d not in orig_written, f"{insn} clobbers original state"

    def test_replicas_read_only_shadow_registers(self, protected_loop):
        prog, info = protected_loop
        shadow_regs = set(info.shadows.shadow_of.values())
        for _, _, insn in prog.main.all_instructions():
            if insn.role is Role.DUP:
                for r in insn.reads():
                    assert r in shadow_regs, f"{insn} reads non-shadow {r}"

    def test_shadow_map_classes_match(self, protected_loop):
        _, info = protected_loop
        for orig, shadow in info.shadows.shadow_of.items():
            assert orig.rclass is shadow.rclass
            assert orig != shadow

    def test_library_values_get_shadow_copies_when_consumed(self):
        prog = compile_source(
            """
            lib func lib3(x) { return x * 3; }
            func main() {
                var a = lib3(5);
                var b = a + 1;       // protected code consumes the lib value
                out(b);
                return 0;
            }
            """
        )
        info = apply_ed(prog)
        copies = [
            i for _, _, i in prog.main.all_instructions()
            if i.role is Role.SHADOW_COPY
        ]
        assert copies, "COPY_INSN path must trigger for library-produced values"
        assert info.n_shadow_copies == len(copies)


class TestChecks:
    def test_checks_are_compare_plus_jump(self, protected_loop):
        prog, info = protected_loop
        cmps = jumps = 0
        for _, _, insn in prog.main.all_instructions():
            if insn.role is Role.CHECK:
                if insn.opcode is Opcode.CHKBR:
                    jumps += 1
                    assert insn.targets == (DETECT_LABEL,)
                else:
                    assert insn.opcode in (Opcode.CMPNE, Opcode.PNE)
                    cmps += 1
        assert cmps == jumps == info.n_checks

    def test_every_checked_operand_has_shadow(self, protected_loop):
        prog, info = protected_loop
        for _, _, insn in prog.main.all_instructions():
            if insn.role is Role.CHECK and insn.opcode is not Opcode.CHKBR:
                orig_reg, shadow_reg = insn.srcs
                assert info.shadows.get(orig_reg) == shadow_reg

    def test_store_operands_checked(self, protected_loop):
        prog, info = protected_loop
        for block in prog.main.blocks():
            insns = block.instructions
            for idx, insn in enumerate(insns):
                if insn.opcode is Opcode.STORE and insn.role is Role.ORIG:
                    checked = set()
                    j = idx - 1
                    while j >= 0 and insns[j].role in (Role.CHECK,):
                        if insns[j].opcode is not Opcode.CHKBR:
                            checked.add(insns[j].srcs[0])
                        j -= 1
                    for r in insn.reads():
                        if r in info.shadows:
                            assert r in checked, f"{r} unchecked before {insn}"

    def test_branch_predicates_checked(self, protected_loop):
        prog, info = protected_loop
        pne = [
            i for _, _, i in prog.main.all_instructions()
            if i.role is Role.CHECK and i.opcode is Opcode.PNE
        ]
        assert pne, "the loop branch predicate must be checked"

    def test_duplicate_reads_checked_once(self):
        """``STORE x, x`` reads x twice but needs one compare+branch pair.

        Before the read-set dedupe, each occurrence got its own identical
        pair: two extra issue slots and a second serializing predicate for
        zero extra coverage.
        """
        from repro.ir.builder import IRBuilder

        def program():
            b = IRBuilder("main")
            b.add_and_enter("entry")
            x = b.movi(3)
            b.store(x, x)  # address and value are the same register
            b.halt(0)
            from repro.ir.program import GlobalArray

            return Program(b.function, [GlobalArray("buf", 8)])

        prog = program()
        info = apply_ed(prog)
        store_checks = [
            i for _, _, i in prog.main.all_instructions()
            if i.role is Role.CHECK and i.opcode is Opcode.CMPNE
        ]
        assert info.n_checks == 1
        assert len(store_checks) == 1
        # And the deduped program still detects what the duplicate pair
        # would have: the one check compares x against its shadow.
        orig_reg, shadow_reg = store_checks[0].srcs
        assert info.shadows.get(orig_reg) == shadow_reg

    def test_library_code_gets_no_checks(self):
        prog = compile_source(
            """
            global g[2];
            lib func store_lib(v) { g[0] = v; return v; }
            func main() { var a = store_lib(4); out(a); return 0; }
            """
        )
        apply_ed(prog)
        for block in prog.main.blocks():
            insns = block.instructions
            for idx, insn in enumerate(insns):
                if insn.opcode is Opcode.STORE and insn.from_library:
                    before = insns[max(0, idx - 2):idx]
                    assert all(i.role is not Role.CHECK for i in before)


class TestSemanticsAndStats:
    def test_fault_free_semantics_preserved(self):
        for maker in (build_loop_program,):
            prog = maker()
            golden = Interpreter(prog).run()
            apply_ed(prog)
            r = Interpreter(prog).run()
            assert r.kind is golden.kind
            assert r.output == golden.output
            assert r.exit_code == golden.exit_code

    def test_workload_semantics_preserved(self):
        from repro.workloads import get_workload

        w = get_workload("parser")
        prog = w.program.clone()
        golden = Interpreter(w.program).run()
        apply_ed(prog)
        assert Interpreter(prog).run().output == golden.output

    def test_code_growth_factor(self, protected_loop):
        _, info = protected_loop
        # The paper reports >2x static growth before scheduling (§II-A).
        assert info.code_growth > 1.5
        assert info.code_growth < 4.0

    def test_redundant_fraction(self, protected_loop):
        prog, _ = protected_loop
        frac = redundant_fraction(prog)
        assert 0.3 < frac < 0.7

    def test_no_checks_fire_fault_free(self, protected_loop):
        prog, _ = protected_loop
        assert Interpreter(prog).run().kind is ExitKind.OK

    def test_second_run_refused(self, protected_loop):
        # Double protection is meaningless; the pass must refuse to re-run.
        from repro.errors import PassError

        prog, _ = protected_loop
        with pytest.raises(PassError, match="not re-entrant"):
            apply_ed(prog)
