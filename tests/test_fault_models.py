"""Fault-model registry, per-model sampling contracts, detection latency."""

import pytest

from repro.errors import SimError
from repro.faults.classify import Outcome, detection_latency
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    fault_model_names,
    get_fault_model,
)
from repro.ir.builder import IRBuilder
from repro.ir.interp import ALT_OPS, ExitKind, FaultSpec, RunResult
from repro.ir.program import Program
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.utils.rng import make_rng
from repro.workloads import get_workload
from tests.conftest import build_loop_program

ALL_MODELS = ("reg-bit", "burst", "cf", "mem", "opcode")


def build_straightline_program() -> Program:
    """No branches, no memory: only reg faults are meaningful here."""
    b = IRBuilder("main")
    b.add_and_enter("entry")
    x = b.movi(3)
    y = b.movi(4)
    z = b.add(x, y)
    b.out(z)
    b.halt(0)
    return Program(b.function, [])


@pytest.fixture(scope="module")
def protected_injector():
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    cp = compile_program(get_workload("parser").program, Scheme.SCED, machine)

    def make(model):
        return FaultInjector(
            cp.program,
            mem_words=cp.mem_words,
            frame_words=cp.frame_words,
            fault_model=model,
        )

    return make


class TestRegistry:
    def test_all_models_registered(self):
        assert set(FAULT_MODELS) == set(ALL_MODELS)

    def test_names_default_first(self):
        names = fault_model_names()
        assert names[0] == DEFAULT_FAULT_MODEL
        assert names[1:] == sorted(names[1:])

    def test_unknown_model_raises_listing_available(self):
        with pytest.raises(SimError, match="reg-bit"):
            get_fault_model("cosmic-ray")

    def test_descriptions_present(self):
        for name in ALL_MODELS:
            assert get_fault_model(name).description


class TestFaultSpecValidation:
    def test_kind_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, kind="nope")

    def test_width_checked(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, width=5)
        with pytest.raises(ValueError):
            FaultSpec(0, 63, width=2)  # bit + width past the top

    def test_mask_covers_width(self):
        assert FaultSpec(0, 4, width=3).mask == 0b111 << 4
        assert FaultSpec(0, 40).mask == 1 << 40


class TestRegBitFrozen:
    def test_model_stream_matches_legacy_sampler(self):
        """reg-bit must draw exactly like the pre-registry sampler."""
        inj = FaultInjector(build_loop_program())
        legacy = [inj.sample_fault(make_rng(13)) for _ in range(1)]
        via_model = [inj.model.sample(inj, make_rng(13)) for _ in range(1)]
        assert legacy == via_model
        # multi-draw streams interleave identically too
        r1, r2 = make_rng(29), make_rng(29)
        assert [inj.sample_fault(r1) for _ in range(20)] == [
            inj.model.sample(inj, r2) for _ in range(20)
        ]


class TestModelSampling:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_specs_well_formed(self, protected_injector, model):
        inj = protected_injector(model)
        rng = make_rng(5)
        dyn = inj.golden.dyn_instructions
        for _ in range(50):
            spec = inj.model.sample(inj, rng)
            assert 0 <= spec.dyn_index < dyn
            assert 0 <= spec.bit < 64
            assert spec.bit + spec.width <= 64

    def test_burst_widths(self, protected_injector):
        inj = protected_injector("burst")
        rng = make_rng(6)
        widths = {inj.model.sample(inj, rng).width for _ in range(100)}
        assert widths == {2, 3, 4}

    def test_cf_hits_control_transfers(self, protected_injector):
        inj = protected_injector("cf")
        rng = make_rng(7)
        for _ in range(20):
            spec = inj.model.sample(inj, rng)
            assert spec.kind == "cf"

    def test_mem_addresses_in_range(self, protected_injector):
        inj = protected_injector("mem")
        rng = make_rng(8)
        for _ in range(50):
            spec = inj.model.sample(inj, rng)
            assert spec.kind == "mem"
            assert 1 <= spec.arg < inj.interp.mem_words

    def test_opcode_alt_in_range(self, protected_injector):
        inj = protected_injector("opcode")
        rng = make_rng(9)
        for _ in range(50):
            spec = inj.model.sample(inj, rng)
            assert spec.kind == "opcode"
            assert 0 <= spec.arg < len(ALT_OPS)

    def test_cf_unusable_without_branches(self):
        with pytest.raises(SimError, match="branch"):
            FaultInjector(build_straightline_program(), fault_model="cf")

    def test_mem_unusable_without_memory(self):
        with pytest.raises(SimError, match="memory"):
            FaultInjector(
                build_loop_program(with_memory=False), mem_words=1,
                fault_model="mem",
            )


class TestModelCampaigns:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_campaign_runs_and_is_deterministic(self, protected_injector, model):
        inj = protected_injector(model)
        a = inj.run_campaign(trials=30, seed=11)
        b = inj.run_campaign(trials=30, seed=11)
        assert a.counts == b.counts
        assert a.fault_model == model
        assert sum(a.counts.values()) == 30
        assert a.detection_latency_sum == b.detection_latency_sum

    def test_models_disagree_on_coverage(self, protected_injector):
        """The point of the taxonomy: cf faults evade replica comparison."""
        reg = protected_injector("reg-bit").run_campaign(trials=60, seed=3)
        cf = protected_injector("cf").run_campaign(trials=60, seed=3)
        assert cf.fraction(Outcome.DETECTED) < reg.fraction(Outcome.DETECTED)

    def test_merged_rejects_model_mismatch(self, protected_injector):
        a = protected_injector("reg-bit").run_campaign(trials=10, seed=1)
        b = protected_injector("burst").run_campaign(trials=10, seed=1)
        with pytest.raises(ValueError, match="fault model"):
            a.merged(b)


class TestDetectionLatency:
    def test_non_detected_has_no_latency(self):
        ok = RunResult(ExitKind.OK, 0, (1,), 100)
        assert detection_latency(ok, (FaultSpec(5, 0),)) is None

    def test_latency_from_first_applied_fault(self):
        det = RunResult(ExitKind.DETECTED, None, (), 100)
        faults = (FaultSpec(80, 0), FaultSpec(9, 0), FaultSpec(400, 0))
        # fault at dyn_index 9 commits as instruction 10; 100 - 10 = 90
        assert detection_latency(det, faults) == 90

    def test_no_applied_fault_means_none(self):
        det = RunResult(ExitKind.DETECTED, None, (), 100)
        assert detection_latency(det, (FaultSpec(400, 0),)) is None

    def test_campaign_records_latency(self, protected_injector):
        res = protected_injector("reg-bit").run_campaign(trials=60, seed=3)
        assert res.counts.get(Outcome.DETECTED, 0) > 0
        assert res.detections_timed > 0
        assert res.mean_detection_latency > 0.0
        assert res.detections_timed <= res.counts[Outcome.DETECTED]

    def test_empty_result_latency_zero(self):
        from repro.faults.injector import CampaignResult

        assert CampaignResult(trials=0).mean_detection_latency == 0.0
