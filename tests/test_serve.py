"""The campaign service: store, queue, runner, HTTP API, resume-on-restart.

The crash-recovery tests at the bottom are the point of the subsystem:
a daemon SIGKILLed mid-campaign (at seeded chaos points — see
``tests/chaos.py``) is restarted on the same state directory and must
finish the interrupted job with outcome counts bit-identical to an
uninterrupted run, because campaign shards are deterministic in
``(seed, shard_index)`` and completed shards live in the checkpoint.
"""

from __future__ import annotations

import json

import pytest

from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import ServeApp, ServeHTTPServer, ServerThread
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.runner import checkpoint_partial
from repro.serve.store import Job, JobError, JobState, JobStore
from tests.chaos import Daemon

WORKLOAD = "workload:mcf"


def reference_counts(trials: int = 75, seed: int = 7) -> dict[str, int]:
    """Direct (no service) campaign result — the determinism oracle."""
    from repro.cli import _load_program
    from repro.faults.injector import run_campaign
    from repro.sim.executor import VLIWExecutor

    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    program = _load_program(WORKLOAD)
    compiled = compile_program(program, Scheme.CASTED, machine)
    noed = compile_program(program, Scheme.NOED, machine)
    reference = VLIWExecutor(noed).run().dyn_instructions
    res = run_campaign(
        compiled.program, trials, seed,
        mem_words=compiled.mem_words, frame_words=compiled.frame_words,
        reference_dyn=reference,
    )
    return {o.value: n for o, n in res.counts.items()}


# -- store ---------------------------------------------------------------------
class TestJobStore:
    def test_save_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.new_job("inject", {"trials": 10}, client="alice", priority=3)
        store.save(job)
        loaded = store.load(job.id)
        assert loaded.to_json() == job.to_json()

    def test_seq_survives_restart(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.new_job("compile", {})
        store.save(a)
        fresh = JobStore(tmp_path)  # new daemon, same directory
        b = fresh.new_job("compile", {})
        assert b.seq > a.seq

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(JobError, match="unknown job kind"):
            JobStore(tmp_path).new_job("frobnicate", {})

    def test_corrupt_record_quarantined(self, tmp_path, caplog):
        store = JobStore(tmp_path)
        job = store.new_job("compile", {})
        store.save(job)
        bad = store.jobs_dir / "j999999-feed00.json"
        bad.write_text("{ torn mid-wri")
        with caplog.at_level("WARNING"):
            jobs = store.load_all()
        assert [j.id for j in jobs] == [job.id]
        assert not bad.exists()
        assert (store.jobs_dir / f"{bad.name}.bad").exists()
        assert any("quarantin" in r.message for r in caplog.records)

    def test_illegal_transition_raises(self, tmp_path):
        job = JobStore(tmp_path).new_job("compile", {})
        with pytest.raises(JobError, match="illegal transition"):
            job.transition(JobState.DONE)  # queued cannot jump to done

    def test_recover_requeues_interrupted(self, tmp_path):
        store = JobStore(tmp_path)
        running = store.new_job("inject", {})
        running.transition(JobState.RUNNING)
        store.save(running)
        finishing = store.new_job("inject", {})
        finishing.transition(JobState.RUNNING)
        finishing.transition(JobState.CHECKPOINTING)
        store.save(finishing)
        done = store.new_job("compile", {})
        done.transition(JobState.RUNNING)
        done.transition(JobState.CHECKPOINTING)
        done.transition(JobState.DONE)
        store.save(done)
        queued = store.recover()
        assert {j.id for j in queued} == {running.id, finishing.id}
        for j in queued:
            assert j.state is JobState.QUEUED
            assert j.restarts == 1
            assert "requeued-on-restart" in j.note
        assert store.load(done.id).state is JobState.DONE

    def test_recover_orders_by_priority_then_seq(self, tmp_path):
        store = JobStore(tmp_path)
        low = store.new_job("compile", {}, priority=20)
        high = store.new_job("compile", {}, priority=1)
        store.save(low)
        store.save(high)
        assert [j.id for j in store.recover()] == [high.id, low.id]


# -- queue ---------------------------------------------------------------------
def _job(seq: int, priority: int = 10, client: str = "a") -> Job:
    return Job(
        id=f"j{seq:06d}-test", kind="compile", spec={},
        client=client, priority=priority, seq=seq,
    )


class TestJobQueue:
    def test_priority_then_fifo(self):
        q = JobQueue(limit=10)
        q.push(_job(1, priority=10))
        q.push(_job(2, priority=1))
        q.push(_job(3, priority=10))
        assert [q.pop().seq for _ in range(3)] == [2, 1, 3]

    def test_full_queue_refuses_with_estimate(self):
        q = JobQueue(limit=2, initial_job_s=10.0)
        q.push(_job(1))
        q.push(_job(2))
        with pytest.raises(QueueFull) as exc:
            q.ensure_capacity("a")
        assert exc.value.retry_after_s >= 1.0
        with pytest.raises(QueueFull):
            q.push(_job(3))

    def test_force_push_bypasses_capacity(self):
        q = JobQueue(limit=1)
        q.push(_job(1))
        q.push(_job(2), force=True)  # recovered work always fits
        assert len(q) == 2

    def test_per_client_cap(self):
        q = JobQueue(limit=10, max_per_client=1)
        q.push(_job(1, client="noisy"))
        with pytest.raises(QueueFull, match="per-client cap"):
            q.ensure_capacity("noisy")
        q.ensure_capacity("quiet")  # other tenants unaffected

    def test_remove_is_lazy_deletion(self):
        q = JobQueue(limit=10)
        q.push(_job(1, priority=1))
        q.push(_job(2, priority=5))
        assert q.remove("j000001-test").seq == 1
        assert q.remove("j000001-test") is None
        assert q.pop().seq == 2  # stale heap entry skipped

    def test_push_is_idempotent(self):
        q = JobQueue(limit=10)
        job = _job(1)
        q.push(job)
        q.push(job)
        assert len(q) == 1

    def test_pop_empty_returns_none(self):
        assert JobQueue(limit=2).pop(timeout=0.01) is None


# -- partial-result merge ------------------------------------------------------
class TestCheckpointPartial:
    def test_merges_shards_and_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        lines = [
            json.dumps({"format": "repro-campaign-checkpoint", "seed": 7}),
            json.dumps({"shard": 0, "trials": 25, "faults": 30,
                        "counts": {"detected": 20, "benign": 5}}),
            json.dumps({"shard": 1, "trials": 25, "faults": 28,
                        "counts": {"detected": 22, "sdc": 3}}),
            '{"shard": 2, "trials": 25, "cou',  # torn by the crash
        ]
        path.write_text("\n".join(lines) + "\n")
        partial = checkpoint_partial(path)
        assert partial["trials"] == 50
        assert partial["counts"] == {"benign": 5, "detected": 42, "sdc": 3}
        assert partial["faults"] == 58
        assert partial["incomplete"] is True

    def test_no_file_or_no_shards_is_none(self, tmp_path):
        assert checkpoint_partial(tmp_path / "missing.jsonl") is None
        empty = tmp_path / "header-only.jsonl"
        empty.write_text(json.dumps({"format": "repro-campaign-checkpoint"}) + "\n")
        assert checkpoint_partial(empty) is None


# -- in-process app ------------------------------------------------------------
@pytest.fixture
def app(tmp_path):
    app = ServeApp(state_dir=tmp_path / "serve", jobs=1, queue_limit=4)
    app.start()
    yield app
    app.shutdown(requeue=True)


def _wait_terminal(app: ServeApp, job_id: str, timeout: float = 60.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        job = app.store.load(job_id)
        if job.terminal:
            return job
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s")


class TestServeApp:
    def test_compile_job_completes(self, app):
        summary = app.submit({
            "kind": "compile",
            "spec": {"program": WORKLOAD, "scheme": "casted"},
        })
        job = _wait_terminal(app, summary["id"])
        assert job.state is JobState.DONE
        assert job.result["instructions"] > 0
        assert job.incomplete is False

    def test_bad_program_fails_cleanly(self, app):
        summary = app.submit({
            "kind": "compile", "spec": {"program": "workload:nonesuch"},
        })
        job = _wait_terminal(app, summary["id"])
        assert job.state is JobState.FAILED
        assert "nonesuch" in job.error
        # the runner survived: a following job still executes
        again = app.submit({
            "kind": "compile", "spec": {"program": WORKLOAD},
        })
        assert _wait_terminal(app, again["id"]).state is JobState.DONE

    def test_inject_job_matches_direct_campaign(self, app):
        summary = app.submit({
            "kind": "inject",
            "spec": {"program": WORKLOAD, "trials": 75, "seed": 7},
        })
        job = _wait_terminal(app, summary["id"], timeout=120)
        assert job.state is JobState.DONE
        assert job.result["counts"] == reference_counts(75, 7)
        assert job.result["incomplete"] is False

    def test_cancel_queued_job(self, app):
        # Saturate the single runner with a real job, then cancel a queued one.
        first = app.submit({
            "kind": "inject",
            "spec": {"program": WORKLOAD, "trials": 200, "seed": 1},
        })
        victim = app.submit({"kind": "compile", "spec": {"program": WORKLOAD}})
        out = app.cancel(victim["id"])
        assert out["changed"] is True
        job = _wait_terminal(app, victim["id"])
        assert job.state is JobState.CANCELLED
        assert _wait_terminal(app, first["id"], timeout=120).state is JobState.DONE

    def test_submission_validation(self, app):
        with pytest.raises(ValueError, match="unknown job kind"):
            app.submit({"kind": "nope", "spec": {}})
        with pytest.raises(ValueError, match="JSON object"):
            app.submit({"kind": "inject", "spec": "not-a-dict"})

    def test_metrics_text_renders(self, app):
        text = app.metrics_text()
        assert "repro_serve_queue_depth" in text


class TestJobDeadline:
    """Over-deadline jobs degrade to `done` + `incomplete`, never `failed`."""

    def _hang_after_one_shard(self, job, ctx):
        import time

        ck = ctx.store.checkpoint_path(job.id)
        ck.write_text(
            json.dumps({"format": "repro-campaign-checkpoint", "seed": 7})
            + "\n"
            + json.dumps({"shard": 0, "trials": 25, "faults": 30,
                          "counts": {"detected": 20, "benign": 5}})
            + "\n"
        )
        while True:  # a wedged campaign: only the watchdog can stop it
            ctx.check()
            time.sleep(0.02)

    def test_deadline_merges_checkpoint_into_partial(
        self, tmp_path, monkeypatch
    ):
        from repro.serve import runner as runner_mod

        monkeypatch.setitem(
            runner_mod.HANDLERS, "inject", self._hang_after_one_shard
        )
        app = ServeApp(state_dir=tmp_path / "serve", jobs=1)
        app.start()
        try:
            summary = app.submit({
                "kind": "inject",
                "spec": {"program": WORKLOAD, "deadline_s": 0.5},
            })
            job = _wait_terminal(app, summary["id"], timeout=30)
            assert job.state is JobState.DONE
            assert job.incomplete is True
            assert job.note == "deadline"
            assert job.result["trials"] == 25
            assert job.result["counts"] == {"benign": 5, "detected": 20}
        finally:
            app.shutdown(requeue=True)

    def test_deadline_with_no_shards_is_incomplete_empty(
        self, tmp_path, monkeypatch
    ):
        import time

        from repro.serve import runner as runner_mod

        def hang(job, ctx):
            while True:
                ctx.check()
                time.sleep(0.02)

        monkeypatch.setitem(runner_mod.HANDLERS, "inject", hang)
        app = ServeApp(state_dir=tmp_path / "serve", jobs=1, job_timeout=0.5)
        app.start()
        try:
            summary = app.submit({"kind": "inject", "spec": {"program": WORKLOAD}})
            job = _wait_terminal(app, summary["id"], timeout=30)
            assert job.state is JobState.DONE
            assert job.incomplete is True
            assert job.result is None  # nothing completed, and it says so
        finally:
            app.shutdown(requeue=True)


# -- HTTP surface --------------------------------------------------------------
@pytest.fixture
def http_client(tmp_path):
    app = ServeApp(state_dir=tmp_path / "serve", jobs=1, queue_limit=2)
    server = ServeHTTPServer(("127.0.0.1", 0), app)
    app.start()
    with ServerThread(server) as st:
        yield ServeClient(st.url)


class TestServeHTTP:
    def test_end_to_end_compile(self, http_client):
        job = http_client.submit("compile", {"program": WORKLOAD})
        final = http_client.wait(job["id"], timeout=60)
        assert final["state"] == "done"
        result = http_client.result(job["id"])
        assert result["result"]["instructions"] > 0
        events = http_client.events(job["id"])
        kinds = [e["kind"] for e in events["events"]]
        assert "job-start" in kinds and "job-done" in kinds

    def test_result_conflict_until_terminal(self, http_client):
        job = http_client.submit(
            "inject", {"program": WORKLOAD, "trials": 500, "seed": 3},
        )
        with pytest.raises(ServeClientError) as exc:
            http_client.result(job["id"])
        assert exc.value.status == 409
        http_client.cancel(job["id"])
        http_client.wait(job["id"], timeout=60)

    def test_unknown_job_is_404(self, http_client):
        with pytest.raises(ServeClientError) as exc:
            http_client.job("j000099-nope")
        assert exc.value.status == 404

    def test_bad_submission_is_400(self, http_client):
        with pytest.raises(ServeClientError) as exc:
            http_client.submit("frobnicate", {})
        assert exc.value.status == 400

    def test_backpressure_is_429_with_retry_after(self, http_client):
        # queue_limit=2: park one long job + fill the queue, then overflow.
        http_client.submit("inject", {"program": WORKLOAD, "trials": 2000, "seed": 1})
        http_client.submit("compile", {"program": WORKLOAD})
        http_client.submit("compile", {"program": WORKLOAD})
        with pytest.raises(ServeClientError) as exc:
            http_client.submit("compile", {"program": WORKLOAD})
        assert exc.value.status == 429
        assert exc.value.retry_after_s >= 1.0
        assert "full" in str(exc.value)

    def test_healthz(self, http_client):
        health = http_client.healthz()
        assert health["ok"] is True


# -- resume-on-restart (the chaos tests) ---------------------------------------
INJECT_SPEC = {"program": WORKLOAD, "trials": 75, "seed": 7, "heartbeat": 25}


def _submit_and_die(tmp_path, chaos: str, spec: dict) -> str:
    """Start a chaos-armed daemon, submit ``spec``, wait for it to die."""
    daemon = Daemon(tmp_path / "serve", jobs=1, chaos=chaos)
    client = ServeClient(daemon.url)
    job = client.submit("inject", spec)
    rc = daemon.wait_dead(timeout=120)
    assert rc != 0  # SIGKILL, not a clean exit
    return job["id"]


def _restart_and_finish(tmp_path, job_id: str) -> dict:
    with Daemon(tmp_path / "serve", jobs=1) as daemon:
        client = ServeClient(daemon.url)
        final = client.wait(job_id, timeout=180)
        daemon.terminate()
    return final


class TestResumeOnRestart:
    def test_kill9_mid_campaign_then_restart_bit_identical(self, tmp_path):
        job_id = _submit_and_die(tmp_path, "daemon.heartbeat:2", INJECT_SPEC)
        final = _restart_and_finish(tmp_path, job_id)
        assert final["state"] == "done"
        assert final["restarts"] >= 1
        assert final["incomplete"] is False
        assert final["result"]["counts"] == reference_counts(75, 7)

    def test_mid_campaign_kill_preserves_completed_shards(self, tmp_path):
        job_id = _submit_and_die(
            tmp_path, "daemon.heartbeat:2", INJECT_SPEC
        )
        store = JobStore(tmp_path / "serve")
        # the durable record still says running/checkpointing (torn daemon)
        assert store.load(job_id).state in (
            JobState.RUNNING, JobState.CHECKPOINTING,
        )
        ck = store.checkpoint_path(job_id)
        assert ck.exists()
        shards = [
            json.loads(line) for line in ck.read_text().splitlines()[1:]
            if line.strip()
        ]
        assert shards, "the first heartbeat's shard must be checkpointed"

    def test_graceful_sigterm_requeues_current_job(self, tmp_path):
        daemon = Daemon(tmp_path / "serve", jobs=1)
        client = ServeClient(daemon.url)
        job = client.submit(
            "inject", {"program": WORKLOAD, "trials": 3000, "seed": 11},
        )
        # wait until it is actually running before pulling the plug
        import time

        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if client.job(job["id"])["state"] == "running":
                break
            time.sleep(0.05)
        daemon.terminate()
        store = JobStore(tmp_path / "serve")
        record = store.load(job["id"])
        assert record.state is JobState.QUEUED
        assert record.note == "daemon-shutdown"


@pytest.mark.heavy
class TestResumeOnRestartHeavy:
    """Deeper chaos matrix: kill points x execution backends."""

    def test_kill9_at_job_start_then_restart(self, tmp_path):
        job_id = _submit_and_die(tmp_path, "daemon.job-start:1", INJECT_SPEC)
        final = _restart_and_finish(tmp_path, job_id)
        assert final["state"] == "done"
        assert final["result"]["counts"] == reference_counts(75, 7)

    @pytest.mark.parametrize("backend", ["interp", "compiled"])
    def test_restart_deterministic_per_backend(self, tmp_path, backend):
        spec = dict(INJECT_SPEC, backend=backend)
        job_id = _submit_and_die(tmp_path, "daemon.heartbeat:2", spec)
        final = _restart_and_finish(tmp_path, job_id)
        assert final["state"] == "done"
        assert final["result"]["counts"] == reference_counts(75, 7)

    def test_restart_deterministic_batched(self, tmp_path):
        spec = dict(INJECT_SPEC, backend="compiled", batch=True)
        job_id = _submit_and_die(tmp_path, "daemon.heartbeat:2", spec)
        final = _restart_and_finish(tmp_path, job_id)
        assert final["state"] == "done"
        assert final["result"]["counts"] == reference_counts(75, 7)

    def test_double_kill_then_restart(self, tmp_path):
        """Two consecutive crashes still converge to the exact counts."""
        job_id = _submit_and_die(tmp_path, "daemon.heartbeat:2", INJECT_SPEC)
        daemon = Daemon(tmp_path / "serve", jobs=1, chaos="daemon.heartbeat:1")
        daemon.wait_dead(timeout=120)
        final = _restart_and_finish(tmp_path, job_id)
        assert final["state"] == "done"
        assert final["restarts"] >= 2
        assert final["result"]["counts"] == reference_counts(75, 7)
