"""Targeted fault scenarios: does detection catch exactly what it claims?

These tests pin the *mechanism*: a fault in the original stream diverges
from the shadow and is caught at the next check; a fault in the replicated
stream is caught the same way; a fault in library code slips through to the
output — the three cases the paper's coverage discussion rests on.
"""

import pytest

from repro.faults.classify import Outcome
from repro.frontend import compile_source
from repro.ir.interp import ExitKind, FaultSpec, Interpreter
from repro.isa.instruction import Role
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=1)

SOURCE = """
global sink[4];
lib func libmix(x) {
    return x * 2862933555777941757 + 777;
}
func main() {
    var a = 1234;
    var b = a * 17 + 5;       // protected computation
    var c = libmix(b);        // library computation
    sink[1] = b;              // checked store of protected value
    out(c);
    out(b);
    return 0;
}
"""


@pytest.fixture(scope="module")
def compiled():
    return compile_program(compile_source(SOURCE), Scheme.SCED, MACHINE)


@pytest.fixture(scope="module")
def interp(compiled):
    return Interpreter(
        compiled.program,
        mem_words=compiled.mem_words,
        frame_words=compiled.frame_words,
    )


def linear_instructions(compiled, interp):
    """Instruction at each dynamic index (straight-line program)."""
    trace = interp.run(record_trace=True).block_trace
    flat = []
    for label in trace:
        flat.extend(compiled.program.main.block(label).instructions)
    return flat


def outcomes_for_role(compiled, interp, role, bit=13):
    golden = interp.run()
    flat = linear_instructions(compiled, interp)
    results = []
    for dyn, insn in enumerate(flat):
        if insn.role is role and insn.dests:
            r = interp.run(faults=(FaultSpec(dyn, bit),))
            if r.kind is ExitKind.DETECTED:
                results.append(Outcome.DETECTED)
            elif r.kind is ExitKind.EXCEPTION:
                results.append(Outcome.EXCEPTION)
            elif r.architectural_state == golden.architectural_state:
                # Stricter than classify(): full architectural equality,
                # not just output equality.
                results.append(Outcome.BENIGN)
            else:
                results.append(Outcome.SDC)
    return results


class TestMechanism:
    def test_original_stream_faults_never_silent(self, compiled, interp):
        outcomes = outcomes_for_role(compiled, interp, Role.ORIG)
        # ORIG includes library instructions? No: from_library is a separate
        # flag; filter happens below in the library test.  Here, any fault
        # on a *protected* original value that reaches a store/out is caught.
        protected = [
            o for o, insn in zip(
                outcomes,
                [
                    i
                    for i in linear_instructions(compiled, interp)
                    if i.role is Role.ORIG and i.dests
                ],
            )
            if not insn_is_lib(insn)
        ]
        assert Outcome.SDC not in protected

    def test_replica_stream_faults_never_silent(self, compiled, interp):
        outcomes = outcomes_for_role(compiled, interp, Role.DUP)
        assert outcomes  # replicas exist
        assert set(outcomes) <= {Outcome.DETECTED, Outcome.BENIGN, Outcome.EXCEPTION}

    def test_check_predicate_faults_cause_detection_not_sdc(self, compiled, interp):
        outcomes = outcomes_for_role(compiled, interp, Role.CHECK)
        # flipping a check predicate fires the check (false positive) or is
        # benign (the CHKBR already consumed it); never silent corruption
        assert set(outcomes) <= {Outcome.DETECTED, Outcome.BENIGN}

    def test_library_faults_can_slip_through(self, compiled, interp):
        golden = interp.run()
        flat = linear_instructions(compiled, interp)
        slipped = False
        for dyn, insn in enumerate(flat):
            if insn_is_lib(insn) and insn.dests:
                r = interp.run(faults=(FaultSpec(dyn, 23),))
                if (
                    r.kind is ExitKind.OK
                    and r.architectural_state != golden.architectural_state
                ):
                    slipped = True
                    break
        assert slipped, "the unprotected-library SDC channel must exist"


def insn_is_lib(insn):
    return insn.from_library
