"""Cluster-assignment passes: SCED, DCED, CASTED/BUG invariants."""

import pytest

from repro.ir.interp import Interpreter
from repro.isa.instruction import Role
from repro.machine.config import MachineConfig
from repro.passes.assignment import (
    CastedAssignmentPass,
    DcedAssignmentPass,
    ScedAssignmentPass,
    validate_assignment,
)
from repro.passes.assignment.base import AssignmentError, collect_def_clusters
from repro.passes.base import PassContext
from repro.passes.error_detection import ErrorDetectionPass
from tests.conftest import build_loop_program


@pytest.fixture
def protected_program():
    prog = build_loop_program()
    ErrorDetectionPass().run(prog, PassContext())
    return prog


def machine(iw=2, d=1):
    return MachineConfig(issue_width=iw, inter_cluster_delay=d)


class TestSced:
    def test_everything_on_one_cluster(self, protected_program):
        ScedAssignmentPass().run(protected_program, PassContext())
        for _, _, insn in protected_program.main.all_instructions():
            assert insn.cluster == 0
        validate_assignment(protected_program, 2)

    def test_custom_cluster(self, protected_program):
        ScedAssignmentPass(cluster=1).run(protected_program, PassContext())
        assert all(
            i.cluster == 1 for _, _, i in protected_program.main.all_instructions()
        )


class TestDced:
    def test_role_split(self, protected_program):
        DcedAssignmentPass().run(protected_program, PassContext())
        for _, _, insn in protected_program.main.all_instructions():
            expected = 1 if insn.role in (Role.DUP, Role.SHADOW_COPY, Role.CHECK) else 0
            assert insn.cluster == expected, str(insn)
        validate_assignment(protected_program, 2)

    def test_nonreplicated_on_main_cluster(self, protected_program):
        DcedAssignmentPass().run(protected_program, PassContext())
        for _, _, insn in protected_program.main.all_instructions():
            if insn.info.is_store or insn.info.is_out or insn.info.is_branch:
                if insn.role is Role.ORIG:
                    assert insn.cluster == 0

    def test_same_clusters_rejected(self):
        from repro.errors import PassError

        with pytest.raises(PassError):
            DcedAssignmentPass(main_cluster=1, checker_cluster=1)


class TestCasted:
    def test_assigns_everything(self, protected_program):
        ctx = PassContext(machine=machine())
        CastedAssignmentPass().run(protected_program, ctx)
        homes = validate_assignment(protected_program, 2)
        assert homes  # non-empty

    def test_single_home_invariant(self, protected_program):
        ctx = PassContext(machine=machine(iw=1, d=1))
        CastedAssignmentPass().run(protected_program, ctx)
        collect_def_clusters(protected_program)  # raises on violation

    def test_uses_both_clusters_when_narrow(self, protected_program):
        ctx = PassContext(machine=machine(iw=1, d=1))
        CastedAssignmentPass().run(protected_program, ctx)
        clusters = {
            i.cluster for _, _, i in protected_program.main.all_instructions()
        }
        assert clusters == {0, 1}, "issue-1 machines need both clusters"

    def test_stays_unified_when_wide_and_slow(self, protected_program):
        ctx = PassContext(machine=machine(iw=4, d=4))
        CastedAssignmentPass().run(protected_program, ctx)
        # adapting to SCED: the hot loop should not pay delay-4 crossings
        loop = protected_program.main.block("loop")
        clusters = {i.cluster for i in loop.instructions}
        assert len(clusters) == 1

    def test_requires_machine(self, protected_program):
        from repro.errors import PassError

        with pytest.raises(PassError):
            CastedAssignmentPass().run(protected_program, PassContext())

    def test_semantics_never_affected(self, protected_program):
        golden = Interpreter(protected_program).run()
        ctx = PassContext(machine=machine())
        CastedAssignmentPass().run(protected_program, ctx)
        assert Interpreter(protected_program).run().output == golden.output


class TestValidation:
    def test_unassigned_detected(self, protected_program):
        with pytest.raises(AssignmentError, match="invalid cluster None"):
            validate_assignment(protected_program, 2)

    def test_out_of_range_detected(self, protected_program):
        ScedAssignmentPass(cluster=5).run(protected_program, PassContext())
        with pytest.raises(AssignmentError):
            validate_assignment(protected_program, 2)

    def test_split_home_detected(self, protected_program):
        ScedAssignmentPass().run(protected_program, PassContext())
        # corrupt: move one definition of a multiply-defined register
        target = None
        seen = {}
        for _, _, insn in protected_program.main.all_instructions():
            for d in insn.writes():
                if d in seen:
                    target = insn
                    break
                seen[d] = insn
            if target:
                break
        assert target is not None
        target.cluster = 1
        with pytest.raises(AssignmentError, match="defined on clusters"):
            validate_assignment(protected_program, 2)
