"""Persistent WorkerPool engine: reuse, determinism, crash survival.

The pool is the PR's tentpole: campaigns, sweeps and serve jobs share one
long-lived set of workers instead of forking a fresh pool per call.  These
tests pin down the contract that makes that safe:

* **bit-identity** — a campaign or sweep run on a reused pool produces
  exactly the results of a fresh-pool run and of a serial run (the shard
  plan and RNG streams depend only on the trial count, never on pool
  lifetime or task grouping);
* **spawn-once accounting** — one campaign + one sweep under one pool
  spawn workers exactly once (``pool.spawns``/``pool.reuses``);
* **worker-resident cache** — a second campaign over the same injector
  hits the workers' content-addressed cache (``pool.worker_cache.hits``)
  instead of rebuilding golden state;
* **crash survival** — a worker dying mid-map breaks the executor, not
  the pool object: the map retries on a respawned executor and later maps
  keep working (``pool.respawns``);
* **charged-only backoff** — a retry round containing only uncharged
  bystanders (collateral of a watchdog kill) resubmits without sleeping.
"""

from __future__ import annotations

import os
import select

import pytest

from repro import obs
from repro import parallel as parallel_mod
from repro.eval.experiment import Evaluator
from repro.faults.injector import FaultInjector
from repro.machine.config import MachineConfig
from repro.parallel import WorkerPool, current_pool, ensure_pool
from repro.pipeline import Scheme, compile_program
from repro.workloads import get_workload

TRIALS = 100  # 4 shards of SHARD_TRIALS=25: both dispatch waves exercised
SEED = 2013


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    yield
    obs.reset()


def _injector() -> FaultInjector:
    cp = compile_program(
        get_workload("mcf").program,
        Scheme.CASTED,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
    )
    return FaultInjector(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
        backend="compiled", snapshots=True,
    )


def _signature(res):
    return (
        res.counts,
        res.total_faults_injected,
        res.detection_latency_sum,
        res.detections_timed,
    )


# -- worker functions (module-level for picklability) -------------------------


def _crash_once(task):
    flag, value = task
    try:
        fd = os.open(flag, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return value * 2
    os.close(fd)
    os._exit(42)


def _hang_or_value(task):
    if task == "hang":
        # Not time.sleep: the backoff test patches it in the parent, and
        # forked workers inherit the patched module.
        select.select([], [], [], 60)
    return task


def _double(x):
    return x * 2


class TestPoolDeterminism:
    def test_campaign_bit_identical_reused_vs_fresh_vs_serial(self):
        inj = _injector()
        serial = inj.run_campaign(TRIALS, SEED, jobs=1)
        fresh = inj.run_campaign(TRIALS, SEED, jobs=2)
        with WorkerPool(2):
            reused_a = inj.run_campaign(TRIALS, SEED, jobs=2)
            reused_b = inj.run_campaign(TRIALS, SEED, jobs=2)
        assert _signature(serial) == _signature(fresh)
        assert _signature(serial) == _signature(reused_a)
        assert _signature(serial) == _signature(reused_b)

    def test_sweep_bit_identical_reused_vs_serial(self, tmp_path, monkeypatch):
        points = [("mcf", Scheme.CASTED, 2, 1), ("mcf", Scheme.SCED, 2, 1)]
        d1, d2 = tmp_path / "serial", tmp_path / "pooled"

        def run(jobs: int, cache_dir) -> dict[str, str]:
            monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
            Evaluator(seed=SEED, cache=True).sweep(points, trials=25, jobs=jobs)
            return {p.name: p.read_text() for p in cache_dir.glob("*.json")}

        serial_files = run(1, d1)
        with WorkerPool(2):
            pooled_files = run(2, d2)
        assert serial_files
        assert serial_files == pooled_files


class TestPoolReuse:
    def test_spawn_once_across_campaign_and_sweep(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        inj = _injector()
        with WorkerPool(2) as pool:
            inj.run_campaign(TRIALS, SEED, jobs=2)
            Evaluator(seed=SEED, cache=True).sweep(
                [("mcf", Scheme.CASTED, 2, 1)], trials=25, jobs=2
            )
            assert pool.spawns == 1
            assert pool.reuses >= 1
            assert pool.respawns == 0

    def test_worker_cache_hits_on_second_campaign(self):
        tel = obs.configure()
        inj = _injector()
        with WorkerPool(2):
            inj.run_campaign(TRIALS, SEED, jobs=2)
            inj.run_campaign(TRIALS, SEED, jobs=2)
        obs.reset()
        counters = tel.metrics.snapshot()["counters"]
        # Every worker builds the injector at most once (misses), and the
        # second campaign's tasks find it resident (hits).
        assert counters.get("pool.worker_cache.misses", 0) >= 1
        assert counters.get("pool.worker_cache.misses", 0) <= 2
        assert counters.get("pool.worker_cache.hits", 0) >= 1
        assert counters.get("pool.spawns", 0) == 1

    def test_ensure_pool_borrows_ambient(self):
        with WorkerPool(2) as pool:
            with ensure_pool(2) as borrowed:
                assert borrowed is pool
            assert current_pool() is pool
        assert current_pool() is None

    def test_ensure_pool_serial_yields_none(self):
        with ensure_pool(1) as pool:
            assert pool is None


class TestPoolCrashSurvival:
    def test_map_survives_mid_map_worker_crash(self, tmp_path):
        flag = str(tmp_path / "crashed-once")
        tasks = [(flag, v) for v in range(6)]
        with WorkerPool(2) as pool:
            results = pool.map(_crash_once, tasks, retries=1)
            assert results == [v * 2 for v in range(6)]
            assert pool.respawns == 1
            assert pool.spawns == 2
            # The pool object survives the dead executor: next map works.
            assert pool.map(_double, [1, 2, 3]) == [2, 4, 6]
            assert pool.spawns == 2  # respawned executor was reused

    def test_bystander_only_round_skips_backoff(self, monkeypatch):
        sleeps: list[float] = []
        monkeypatch.setattr(
            parallel_mod.time, "sleep", lambda s: sleeps.append(s)
        )
        failures: list[int] = []
        with WorkerPool(2) as pool:
            results = pool.map(
                _hang_or_value,
                ["hang", "a", "b"],
                retries=0,
                retry_backoff=30.0,
                timeout=1.0,
                on_failure=lambda i, exc: failures.append(i),
            )
        assert failures == [0]
        assert results[1:] == ["a", "b"]
        # The hung task exhausted (retries=0); the surviving round held only
        # uncharged bystanders, so no backoff sleep was earned.
        assert sleeps == []
