"""End-to-end pipeline integration across workloads, schemes and machines."""

import pytest

from repro.ir.interp import ExitKind, Interpreter
from repro.isa.instruction import Role
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.passes.schedule_check import validate_compiled
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload, workload_names
from tests.conftest import build_loop_program


class TestCompileProgram:
    def test_source_not_mutated(self, machine):
        prog = build_loop_program()
        before = prog.main.instruction_count()
        compile_program(prog, Scheme.CASTED, machine)
        assert prog.main.instruction_count() == before
        assert all(
            i.cluster is None for _, _, i in prog.main.all_instructions()
        )

    def test_noed_has_no_redundant_code(self, machine):
        cp = compile_program(build_loop_program(), Scheme.NOED, machine)
        assert set(cp.stats.n_by_role) <= {"orig", "spill"}
        assert cp.ed_info is None

    def test_protected_schemes_carry_ed_info(self, machine):
        cp = compile_program(build_loop_program(), Scheme.SCED, machine)
        assert cp.ed_info is not None
        assert cp.ed_info.n_duplicates > 0
        assert cp.stats.code_growth > 1.5

    def test_stats_roles_add_up(self, machine):
        cp = compile_program(build_loop_program(), Scheme.DCED, machine)
        assert sum(cp.stats.n_by_role.values()) == cp.stats.n_instructions

    def test_schedules_validate(self, machine):
        for scheme in Scheme:
            cp = compile_program(build_loop_program(), scheme, machine)
            validate_compiled(cp.program, cp.schedules, machine)

    def test_optimize_flag(self, machine):
        opt = compile_program(build_loop_program(), Scheme.NOED, machine)
        raw = compile_program(
            build_loop_program(), Scheme.NOED, machine, optimize=False
        )
        assert opt.stats.n_instructions <= raw.stats.n_instructions

    def test_mem_words_covers_frame(self, machine):
        cp = compile_program(build_loop_program(), Scheme.SCED, machine)
        assert cp.mem_words >= cp.program.layout().data_end + cp.frame_words


@pytest.mark.parametrize("name", workload_names())
class TestAllWorkloadsAllSchemes:
    def test_functional_equivalence(self, name):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
        golden = Interpreter(get_workload(name).program).run()
        assert golden.kind is ExitKind.OK
        for scheme in Scheme:
            cp = compile_program(get_workload(name).program, scheme, machine)
            r = VLIWExecutor(cp).run()
            assert r.output == golden.output, (name, scheme)
            assert r.exit_code == golden.exit_code, (name, scheme)

    def test_protected_dyn_growth_in_paper_range(self, name):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
        noed = VLIWExecutor(
            compile_program(get_workload(name).program, Scheme.NOED, machine)
        ).run()
        sced = VLIWExecutor(
            compile_program(get_workload(name).program, Scheme.SCED, machine)
        ).run()
        growth = sced.dyn_instructions / noed.dyn_instructions
        # paper: binaries grow 2.4x on average; dynamic growth is similar
        assert 1.5 < growth < 3.5, (name, growth)


@pytest.mark.heavy
class TestExtremeConfigurations:
    @pytest.mark.parametrize("iw", [1, 2, 3, 4])
    @pytest.mark.parametrize("d", [1, 4])
    def test_grid_equivalence(self, iw, d):
        machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
        for name in workload_names():
            golden = Interpreter(get_workload(name).program).run()
            for scheme in Scheme:
                cp = compile_program(get_workload(name).program, scheme, machine)
                validate_compiled(cp.program, cp.schedules, machine)
                r = VLIWExecutor(cp).run()
                assert r.output == golden.output, (name, scheme, iw, d)


class TestUnsafePostEdCse:
    def test_destroys_redundancy(self, machine):
        """Re-running CSE after ED merges replicas — the reason the paper
        disables it (§IV-A)."""
        safe = compile_program(build_loop_program(), Scheme.SCED, machine)
        unsafe = compile_program(
            build_loop_program(), Scheme.SCED, machine, unsafe_post_ed_cse=True
        )
        n_dup_safe = safe.stats.n_by_role.get("dup", 0)
        # replicas either disappear (DCE'd) or degrade into MOVs
        from repro.isa.opcodes import Opcode

        real_dup_ops = sum(
            1
            for _, _, i in unsafe.program.main.all_instructions()
            if i.role is Role.DUP and i.opcode not in (Opcode.MOV, Opcode.PMOV)
        )
        assert real_dup_ops < n_dup_safe

    def test_still_functionally_correct_fault_free(self, machine):
        golden = Interpreter(build_loop_program()).run()
        cp = compile_program(
            build_loop_program(), Scheme.SCED, machine, unsafe_post_ed_cse=True
        )
        assert VLIWExecutor(cp).run().output == golden.output
