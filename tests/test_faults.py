"""Fault model, injector sampling, classification, and coverage properties."""

import pytest

from repro.faults.classify import Outcome, classify
from repro.faults.injector import FaultInjector
from repro.ir.interp import ExitKind, FaultSpec, RunResult
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.utils.rng import make_rng
from repro.workloads import get_workload
from tests.conftest import build_loop_program


def make_result(kind, output=(1,), code=0):
    return RunResult(kind, code if kind is ExitKind.OK else None, output, 100)


class TestClassify:
    GOLDEN = make_result(ExitKind.OK, (1, 2), 0)

    def test_benign(self):
        assert classify(self.GOLDEN, make_result(ExitKind.OK, (1, 2), 0)) is Outcome.BENIGN

    def test_sdc_wrong_output(self):
        assert classify(self.GOLDEN, make_result(ExitKind.OK, (1, 3), 0)) is Outcome.SDC

    def test_sdc_wrong_exit_code(self):
        assert classify(self.GOLDEN, make_result(ExitKind.OK, (1, 2), 1)) is Outcome.SDC

    def test_sdc_truncated_output(self):
        assert classify(self.GOLDEN, make_result(ExitKind.OK, (1,), 0)) is Outcome.SDC

    def test_detected(self):
        assert classify(self.GOLDEN, make_result(ExitKind.DETECTED)) is Outcome.DETECTED

    def test_exception(self):
        assert classify(self.GOLDEN, make_result(ExitKind.EXCEPTION)) is Outcome.EXCEPTION

    def test_timeout(self):
        assert classify(self.GOLDEN, make_result(ExitKind.TIMEOUT)) is Outcome.TIMEOUT


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(-1, 0)
        with pytest.raises(ValueError):
            FaultSpec(0, 64)
        FaultSpec(0, 63)


@pytest.fixture(scope="module")
def loop_injector():
    return FaultInjector(build_loop_program())


class TestSampling:
    def test_sampled_faults_hit_dest_instructions(self, loop_injector):
        rng = make_rng(42)
        prog = build_loop_program()
        # reconstruct the instruction at each sampled dyn index and check it
        # writes a register
        trace = loop_injector.golden.block_trace
        flat = []
        for label in trace:
            flat.extend(prog.main.block(label).instructions)
        for _ in range(100):
            spec = loop_injector.sample_fault(rng)
            assert flat[spec.dyn_index].dests, spec

    def test_sampling_deterministic(self, loop_injector):
        a = [loop_injector.sample_fault(make_rng(7)).dyn_index for _ in range(5)]
        b = [loop_injector.sample_fault(make_rng(7)).dyn_index for _ in range(5)]
        assert a == b

    def test_sampling_spreads_over_execution(self, loop_injector):
        rng = make_rng(3)
        idx = {loop_injector.sample_fault(rng).dyn_index for _ in range(200)}
        assert len(idx) > 20
        assert max(idx) > loop_injector.golden.dyn_instructions // 2

    def test_rate_matching(self, loop_injector):
        rng = make_rng(5)
        dyn = loop_injector.golden.dyn_instructions
        reference = dyn // 3  # pretend the original binary was 3x smaller
        counts = [
            len(loop_injector.faults_for_trial(rng, reference)) for _ in range(300)
        ]
        assert min(counts) >= 1
        mean = sum(counts) / len(counts)
        assert 2.0 < mean < 4.5  # expectation ~3

    def test_single_fault_without_reference(self, loop_injector):
        rng = make_rng(5)
        assert len(loop_injector.faults_for_trial(rng, None)) == 1


class TestCampaigns:
    def test_campaign_deterministic(self, loop_injector):
        a = loop_injector.run_campaign(trials=50, seed=11)
        b = loop_injector.run_campaign(trials=50, seed=11)
        assert a.counts == b.counts

    def test_campaign_counts_sum(self, loop_injector):
        res = loop_injector.run_campaign(trials=40, seed=1)
        assert sum(res.counts.values()) == 40
        total = sum(res.fraction(o) for o in Outcome)
        assert total == pytest.approx(1.0)

    def test_unprotected_program_has_sdc_but_no_detection(self, loop_injector):
        res = loop_injector.run_campaign(trials=150, seed=2)
        assert res.fraction(Outcome.DETECTED) == 0.0
        assert res.fraction(Outcome.SDC) > 0.05

    def test_merged(self, loop_injector):
        a = loop_injector.run_campaign(trials=20, seed=1)
        b = loop_injector.run_campaign(trials=30, seed=2)
        m = a.merged(b)
        assert m.trials == 50
        assert sum(m.counts.values()) == 50


class TestProtectedCoverage:
    @pytest.fixture(scope="class")
    def campaign_pair(self):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        prog = get_workload("parser").program
        noed = compile_program(prog, Scheme.NOED, machine)
        sced = compile_program(prog, Scheme.SCED, machine)
        inj_noed = FaultInjector(
            noed.program, mem_words=noed.mem_words, frame_words=noed.frame_words
        )
        inj_sced = FaultInjector(
            sced.program, mem_words=sced.mem_words, frame_words=sced.frame_words
        )
        ref = inj_noed.golden.dyn_instructions
        return (
            inj_noed.run_campaign(trials=120, seed=3),
            inj_sced.run_campaign(trials=120, seed=3, reference_dyn=ref),
        )

    def test_detection_dramatically_reduces_sdc(self, campaign_pair):
        noed, sced = campaign_pair
        assert sced.fraction(Outcome.SDC) < noed.fraction(Outcome.SDC) / 2

    def test_protected_code_detects(self, campaign_pair):
        _, sced = campaign_pair
        assert sced.fraction(Outcome.DETECTED) > 0.3

    def test_coverage_improves(self, campaign_pair):
        noed, sced = campaign_pair
        assert sced.coverage > noed.coverage

    def test_golden_run_unaffected(self, campaign_pair):
        # campaigns must not corrupt later runs: re-profile matches
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        prog = get_workload("parser").program
        noed = compile_program(prog, Scheme.NOED, machine)
        inj = FaultInjector(
            noed.program, mem_words=noed.mem_words, frame_words=noed.frame_words
        )
        golden1 = inj.golden
        inj.run_campaign(trials=10, seed=9)
        golden2 = inj.interp.run()
        assert golden2.output == golden1.output


class TestCaughtMetric:
    def test_caught_combines_detected_and_exceptions(self, loop_injector):
        res = loop_injector.run_campaign(trials=60, seed=4)
        assert res.caught == pytest.approx(
            res.fraction(Outcome.DETECTED) + res.fraction(Outcome.EXCEPTION)
        )
        assert 0.0 <= res.caught <= 1.0
