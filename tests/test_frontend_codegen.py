from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.ir.interp import ExitKind, Interpreter
from repro.isa.semantics import to_signed, wrap64


def run(src: str):
    return Interpreter(compile_source(src)).run()


def run_main_body(body: str, prelude: str = ""):
    return run(f"{prelude}\nfunc main() {{\n{body}\nreturn 0;\n}}")


class TestStatements:
    def test_arithmetic_and_out(self):
        r = run_main_body("var x = 2 + 3 * 4; out(x);")
        assert r.output == (14,)

    def test_if_else(self):
        r = run_main_body(
            "var x = 5; if (x > 3) { out(1); } else { out(2); }"
        )
        assert r.output == (1,)

    def test_if_without_else(self):
        r = run_main_body("if (0) { out(1); } out(2);")
        assert r.output == (2,)

    def test_else_if_chain(self):
        r = run_main_body(
            "var x = 2;"
            "if (x == 1) { out(10); } else if (x == 2) { out(20); }"
            "else { out(30); }"
        )
        assert r.output == (20,)

    def test_while(self):
        r = run_main_body(
            "var i = 0; var s = 0; while (i < 5) { s = s + i; i = i + 1; } out(s);"
        )
        assert r.output == (10,)

    def test_for_with_break_continue(self):
        r = run_main_body(
            """
            var s = 0;
            for (var i = 0; i < 100; i = i + 1) {
                if (i == 7) { break; }
                if (i % 2 == 1) { continue; }
                s = s + i;
            }
            out(s);
            """
        )
        assert r.output == (0 + 2 + 4 + 6,)

    def test_continue_in_for_runs_step(self):
        r = run_main_body(
            """
            var n = 0;
            for (var i = 0; i < 4; i = i + 1) {
                if (i == 1) { continue; }
                n = n + 1;
            }
            out(n);
            """
        )
        assert r.output == (3,)

    def test_nested_loops(self):
        r = run_main_body(
            """
            var s = 0;
            for (var i = 0; i < 3; i = i + 1) {
                for (var j = 0; j < 3; j = j + 1) {
                    if (j > i) { break; }
                    s = s + 1;
                }
            }
            out(s);
            """
        )
        assert r.output == (1 + 2 + 3,)

    def test_return_exit_code(self):
        r = run("func main() { return 3; }")
        assert r.exit_code == 3

    def test_early_return(self):
        r = run("func main() { out(1); return 0; out(2); return 1; }")
        assert r.output == (1,)
        assert r.exit_code == 0

    def test_globals(self):
        r = run(
            """
            global g[3] = { 5, 6 };
            func main() { g[2] = g[0] + g[1]; out(g[2]); return 0; }
            """
        )
        assert r.output == (11,)

    def test_global_dynamic_index(self):
        r = run(
            """
            global g[4] = { 10, 20, 30, 40 };
            func main() {
                var s = 0;
                for (var i = 0; i < 4; i = i + 1) { s = s + g[i]; }
                out(s);
                return 0;
            }
            """
        )
        assert r.output == (100,)


class TestCallsAndInlining:
    def test_simple_call(self):
        r = run(
            """
            func sq(x) { return x * x; }
            func main() { out(sq(7)); return 0; }
            """
        )
        assert r.output == (49,)

    def test_nested_calls(self):
        r = run(
            """
            func inc(x) { return x + 1; }
            func twice(x) { return inc(inc(x)); }
            func main() { out(twice(5)); return 0; }
            """
        )
        assert r.output == (7,)

    def test_call_with_multiple_returns(self):
        r = run(
            """
            func clamp(x) {
                if (x > 10) { return 10; }
                if (x < 0) { return 0; }
                return x;
            }
            func main() { out(clamp(50)); out(clamp(-3)); out(clamp(4)); return 0; }
            """
        )
        assert r.output == (10, 0, 4)

    def test_missing_return_yields_zero(self):
        r = run(
            """
            func f(x) { if (x > 100) { return 1; } }
            func main() { out(f(1)); return 0; }
            """
        )
        assert r.output == (0,)

    def test_call_inside_loop(self):
        r = run(
            """
            func add1(x) { return x + 1; }
            func main() {
                var v = 0;
                for (var i = 0; i < 5; i = i + 1) { v = add1(v); }
                out(v);
                return 0;
            }
            """
        )
        assert r.output == (5,)

    def test_library_instructions_tagged(self):
        prog = compile_source(
            """
            lib func magic(x) { return x * 3; }
            func main() { out(magic(2)); return 0; }
            """
        )
        lib = [i for _, _, i in prog.main.all_instructions() if i.from_library]
        non = [i for _, _, i in prog.main.all_instructions() if not i.from_library]
        assert lib and non
        assert Interpreter(prog).run().output == (6,)

    def test_protected_func_called_from_lib_is_tagged(self):
        prog = compile_source(
            """
            func helper(x) { return x + 1; }
            lib func wrapper(x) { return helper(x) * 2; }
            func main() { out(wrapper(1)); return 0; }
            """
        )
        # everything inlined under the lib call must carry the lib tag
        muls = [
            i for _, _, i in prog.main.all_instructions()
            if i.info.mnemonic == "mul"
        ]
        assert all(i.from_library for i in muls)
        assert Interpreter(prog).run().output == (4,)


class TestBooleansAndConditions:
    def test_short_circuit_and(self):
        # right side would divide by zero: must not evaluate
        r = run_main_body("var x = 0; if (x != 0 && 10 / x > 1) { out(1); } out(2);")
        assert r.kind is ExitKind.OK
        assert r.output == (2,)

    def test_short_circuit_or(self):
        r = run_main_body("var x = 0; if (x == 0 || 10 / x > 1) { out(1); } out(2);")
        assert r.kind is ExitKind.OK
        assert r.output == (1, 2)

    def test_bool_value_materialization(self):
        r = run_main_body("var x = (3 < 5) + (5 < 3); out(x);")
        assert r.output == (1,)

    def test_logical_value(self):
        r = run_main_body("var x = 1 && 0; var y = 1 || 0; out(x); out(y);")
        assert r.output == (0, 1)

    def test_not(self):
        r = run_main_body("out(!0); out(!7);")
        assert r.output == (1, 0)

    def test_unary_ops(self):
        r = run_main_body("out(-5); out(~0);")
        assert to_signed(r.output[0]) == -5
        assert to_signed(r.output[1]) == -1

    def test_condition_on_plain_value(self):
        r = run_main_body("var x = 3; if (x) { out(1); } else { out(0); }")
        assert r.output == (1,)


class TestTrapsFromSource:
    def test_division_by_zero(self):
        r = run_main_body("var z = 0; out(10 / z);")
        assert r.kind is ExitKind.EXCEPTION

    def test_out_of_bounds_global(self):
        r = run(
            "global g[2];\nfunc main() { var i = 100000; out(g[i]); return 0; }"
        )
        assert r.kind is ExitKind.EXCEPTION


# -- property test: generated expressions match Python semantics ---------------

_ops = ["+", "-", "*", "&", "|", "^"]


@st.composite
def expr_strategy(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            value = draw(st.integers(-100, 100))
            return (f"({value})", value)
        name = draw(st.sampled_from(["a", "b", "c"]))
        env = {"a": 13, "b": -7, "c": 1000003}
        return (name, env[name])
    op = draw(st.sampled_from(_ops))
    ls, lv = draw(expr_strategy(depth=depth + 1))
    rs, rv = draw(expr_strategy(depth=depth + 1))
    py = {
        "+": lv + rv, "-": lv - rv, "*": lv * rv,
        "&": lv & rv, "|": lv | rv, "^": lv ^ rv,
    }[op]
    return (f"({ls} {op} {rs})", py)


class TestExpressionProperty:
    @given(expr_strategy())
    @settings(max_examples=60, deadline=None)
    def test_matches_python(self, pair):
        text, expected = pair
        r = run_main_body(f"var a = 13; var b = -7; var c = 1000003; out({text});")
        assert r.kind is ExitKind.OK
        assert r.output[0] == wrap64(expected)
