"""The protection linter: rules, windows, mutations, formats, CLI."""

import json

import pytest

from repro.analysis.formats import format_json, format_sarif, format_text
from repro.analysis.lint import (
    compute_windows,
    lint_compiled,
    lint_program,
    lint_snapshot,
)
from repro.analysis.mutate import drop_nth_check, drop_nth_replica
from repro.analysis.protection import Severity
from repro.ir.basic_block import DETECT_LABEL
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.workloads import get_workload, workload_names
from tests.conftest import build_loop_program

PROTECTED = [Scheme.CASTED, Scheme.SCED, Scheme.DCED]


@pytest.fixture(scope="module")
def compiled_loop():
    return compile_program(
        build_loop_program(),
        Scheme.CASTED,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
        capture_pre_regalloc=True,
    )


class TestWorkloadsClean:
    """Acceptance: zero ERROR findings on every workload under every
    protected scheme (and NOED stays pure)."""

    @pytest.mark.parametrize("name", workload_names())
    @pytest.mark.parametrize("scheme", PROTECTED, ids=lambda s: s.value)
    def test_no_errors(self, name, scheme, machine):
        report = lint_program(get_workload(name).program, scheme, machine)
        errors = [f for f in report.findings if f.severity is Severity.ERROR]
        assert errors == []
        assert report.exit_code() == 0

    @pytest.mark.parametrize("name", workload_names())
    def test_noed_pure(self, name, machine):
        report = lint_program(
            get_workload(name).program, Scheme.NOED, machine
        )
        assert [f for f in report.findings if f.severity is Severity.ERROR] == []
        assert report.windows.n_defs == 0


class TestMutations:
    """Dropping one protection element trips the corresponding rule."""

    def test_dropped_replica_caught(self, compiled_loop):
        snap = compiled_loop.pre_regalloc.clone()
        assert drop_nth_replica(snap, 0)
        findings = lint_snapshot(snap, "casted", 2)
        assert any(
            f.rule == "replication-coverage" and f.severity is Severity.ERROR
            for f in findings
        )

    def test_dropped_check_caught(self, compiled_loop):
        snap = compiled_loop.pre_regalloc.clone()
        assert drop_nth_check(snap, 0)
        findings = lint_snapshot(snap, "casted", 2)
        assert any(
            f.rule in ("check-coverage", "check-wiring")
            and f.severity is Severity.ERROR
            for f in findings
        )

    def test_every_check_is_load_bearing(self, compiled_loop):
        """Each individually dropped check pair is caught (no dead checks)."""
        n = 0
        while True:
            snap = compiled_loop.pre_regalloc.clone()
            if not drop_nth_check(snap, n):
                break
            findings = lint_snapshot(snap, "casted", 2)
            assert any(f.severity is Severity.ERROR for f in findings), (
                f"dropping check {n} went unnoticed"
            )
            n += 1
        assert n > 0

    def test_misrouted_chkbr_caught(self, compiled_loop):
        snap = compiled_loop.pre_regalloc.clone()
        from repro.isa.opcodes import Opcode

        for block in snap.main.blocks():
            for insn in block.instructions:
                if insn.opcode is Opcode.CHKBR:
                    insn.targets = (snap.main.entry.label,)
                    break
            else:
                continue
            break
        findings = lint_snapshot(snap, "casted", 2)
        assert any(
            f.rule == "check-wiring"
            and f.severity is Severity.ERROR
            and DETECT_LABEL in f.message
            for f in findings
        )

    def test_cross_stream_write_caught(self, compiled_loop):
        """A replica redirected onto an architectural register is flagged."""
        from repro.isa.instruction import Role

        snap = compiled_loop.pre_regalloc.clone()
        arch = None
        for _, _, insn in snap.main.all_instructions():
            if insn.role is Role.ORIG and insn.writes():
                arch = insn.writes()[0]
                break
        for _, _, insn in snap.main.all_instructions():
            if insn.role is Role.DUP and insn.writes():
                insn.dests = (arch,) + insn.dests[1:]
                break
        findings = lint_snapshot(snap, "casted", 2)
        assert any(
            f.rule == "shadow-isolation" and f.severity is Severity.ERROR
            for f in findings
        )

    def test_wrong_cluster_caught_under_dced(self, machine):
        compiled = compile_program(
            build_loop_program(),
            Scheme.DCED,
            machine,
            capture_pre_regalloc=True,
        )
        snap = compiled.pre_regalloc.clone()
        from repro.isa.instruction import Role

        for _, _, insn in snap.main.all_instructions():
            if insn.role is Role.DUP:
                insn.cluster = 0  # redundant code on the main cluster
                break
        findings = lint_snapshot(snap, "dced", 2)
        assert any(
            f.rule == "cluster-placement" and f.severity is Severity.ERROR
            for f in findings
        )


class TestWindows:
    def test_windows_positive_and_bounded(self, compiled_loop):
        summary = compute_windows(compiled_loop.pre_regalloc)
        assert summary.n_defs > 0
        for w in summary.checked:
            assert w.distance >= 1
        assert summary.mean_window <= summary.max_window

    def test_profile_weighting_shifts_mean(self, machine):
        program = build_loop_program(n=10)
        compiled = compile_program(
            program, Scheme.CASTED, machine, capture_pre_regalloc=True
        )
        flat = compute_windows(compiled.pre_regalloc)
        hot = compute_windows(
            compiled.pre_regalloc, block_profile={"loop": 1000, "entry": 1}
        )
        assert flat.n_defs == hot.n_defs
        # Profile counts land on the defining blocks' windows verbatim...
        for w in hot.windows:
            assert w.weight == {"loop": 1000, "entry": 1}.get(w.block, 1)
        # ...and the weighted mean recomputes from them exactly.
        checked = hot.checked
        expected = sum(w.distance * w.weight for w in checked) / sum(
            w.weight for w in checked
        )
        assert hot.weighted_mean_window == pytest.approx(expected)

    def test_noed_has_no_windows(self, machine):
        compiled = compile_program(
            build_loop_program(),
            Scheme.NOED,
            machine,
            capture_pre_regalloc=True,
        )
        assert compute_windows(compiled.pre_regalloc).n_defs == 0


class TestFormats:
    @pytest.fixture(scope="class")
    def report(self):
        return lint_program(
            build_loop_program(),
            Scheme.CASTED,
            MachineConfig(issue_width=2, inter_cluster_delay=1),
        )

    def test_text(self, report):
        text = format_text(report)
        assert "vulnerability windows" in text
        assert report.program in text

    def test_json_round_trips(self, report):
        data = json.loads(format_json(report))
        assert data["scheme"] == "casted"
        assert set(data["counts"]) == {"error", "warning", "info"}
        assert data["windows"]["n_defs"] == report.windows.n_defs

    def test_sarif_structure(self, report):
        doc = json.loads(format_sarif(report))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert "check-coverage" in rule_ids
        for result in run["results"]:
            assert result["ruleId"] in rule_ids
            assert result["level"] in ("error", "warning", "note")

    def test_severity_ordering(self):
        assert Severity.ERROR.rank > Severity.WARNING.rank > Severity.INFO.rank


class TestOrchestration:
    def test_lint_compiled_needs_snapshot(self, machine):
        compiled = compile_program(
            build_loop_program(), Scheme.CASTED, machine
        )
        with pytest.raises(ValueError, match="capture_pre_regalloc"):
            lint_compiled(compiled)

    def test_unknown_scheme_rejected(self, compiled_loop):
        with pytest.raises(ValueError, match="unknown scheme"):
            lint_snapshot(compiled_loop.pre_regalloc, "swift", 2)

    def test_exit_code_gating(self, compiled_loop):
        snap = compiled_loop.pre_regalloc.clone()
        drop_nth_replica(snap, 0)
        findings = lint_snapshot(snap, "casted", 2)
        report_like_counts = [f for f in findings if f.severity is Severity.ERROR]
        assert report_like_counts  # gate would fire


class TestCli:
    def test_lint_clean_workload(self, capsys):
        from repro.cli import main

        rc = main(["lint", "workload:cjpeg", "--scheme", "casted"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "vulnerability windows" in out

    def test_lint_json_format(self, capsys):
        from repro.cli import main

        rc = main(
            ["lint", "workload:mcf", "--scheme", "sced", "--format", "json"]
        )
        data = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert data["program"] == "mcf"

    def test_lint_output_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "lint.sarif"
        rc = main(
            [
                "lint",
                "workload:cjpeg",
                "--scheme",
                "dced",
                "--format",
                "sarif",
                "--output",
                str(out),
            ]
        )
        assert rc == 0
        assert json.loads(out.read_text())["version"] == "2.1.0"


class TestTelemetry:
    def test_lint_metrics_published(self, machine):
        from repro import obs

        obs.configure()
        try:
            lint_program(build_loop_program(), Scheme.CASTED, machine)
            tel = obs.get_telemetry()
            snapshot = tel.metrics.snapshot()
            assert any(
                k.startswith("lint.windows") for k in snapshot["gauges"]
            )
            assert "lint.window" in snapshot["histograms"]
        finally:
            obs.reset()
