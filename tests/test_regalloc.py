"""Linear-scan register allocation: correctness and spilling."""

import pytest

from repro.errors import RegAllocError
from repro.ir.builder import IRBuilder
from repro.ir.interp import ExitKind, Interpreter
from repro.ir.program import Program
from repro.ir.verifier import verify_program
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.machine.config import MachineConfig
from repro.passes.assignment import ScedAssignmentPass
from repro.passes.base import PassContext
from repro.passes.regalloc import LinearScanAllocator
from tests.conftest import build_loop_program


def allocate(program, machine):
    ctx = PassContext(machine=machine)
    ScedAssignmentPass().run(program, ctx)
    LinearScanAllocator().run(program, ctx)
    verify_program(program)
    return ctx.artifacts["regalloc"]


def tiny_machine(gp=8, pr=4):
    return MachineConfig(gp_per_cluster=gp, pr_per_cluster=pr)


def wide_pressure_program(n_values=20):
    """Defines n live values, then consumes them all — pressure = n."""
    b = IRBuilder("main")
    b.add_and_enter("entry")
    values = [b.movi(i * 3 + 1) for i in range(n_values)]
    acc = values[0]
    for v in values[1:]:
        acc = b.add(acc, v)
    b.out(acc)
    b.halt(0)
    return Program(b.function), sum(i * 3 + 1 for i in range(n_values))


class TestBasicAllocation:
    def test_all_registers_physical(self, loop_program, machine):
        allocate(loop_program, machine)
        for _, _, insn in loop_program.main.all_instructions():
            for r in (*insn.reads(), *insn.writes()):
                assert not r.virtual, f"{r} still virtual in {insn}"

    def test_semantics_preserved(self, machine):
        prog = build_loop_program()
        golden = Interpreter(build_loop_program()).run()
        allocate(prog, machine)
        r = Interpreter(prog).run()
        assert r.output == golden.output

    def test_no_spills_when_plenty(self, loop_program, machine):
        result = allocate(loop_program, machine)
        assert result.n_spilled == 0
        assert result.frame_words == 0

    def test_registers_within_file_bounds(self, machine):
        prog = build_loop_program()
        allocate(prog, machine)
        for _, _, insn in prog.main.all_instructions():
            for r in (*insn.reads(), *insn.writes()):
                limit = machine.gp_per_cluster if r.is_gp else machine.pr_per_cluster
                assert 0 <= r.index < limit

    def test_no_live_range_overlap_same_register(self, machine):
        """Differential check: values must survive to their uses."""
        prog, expected = wide_pressure_program(30)
        allocate(prog, machine)
        assert Interpreter(prog).run().output == (expected,)


class TestSpilling:
    def test_spills_under_pressure(self):
        prog, expected = wide_pressure_program(20)
        result = allocate(prog, tiny_machine(gp=8))
        assert result.n_spilled > 0
        assert result.frame_words == result.n_spilled
        r = Interpreter(prog, frame_words=result.frame_words).run()
        assert r.output == (expected,)

    def test_spill_instructions_tagged(self):
        prog, _ = wide_pressure_program(20)
        allocate(prog, tiny_machine(gp=8))
        spill_ops = [
            i for _, _, i in prog.main.all_instructions()
            if i.opcode in (Opcode.LOADFP, Opcode.STOREFP)
        ]
        assert spill_ops
        assert all(i.role is Role.SPILL for i in spill_ops)

    def test_loop_program_with_tiny_file(self):
        prog = build_loop_program()
        golden = Interpreter(build_loop_program()).run()
        result = allocate(prog, tiny_machine(gp=4))
        r = Interpreter(prog, frame_words=result.frame_words).run()
        assert r.output == golden.output

    def test_workload_with_small_file(self):
        from repro.workloads import get_workload

        w = get_workload("mcf")
        prog = w.program.clone()
        golden = Interpreter(w.program).run()
        result = allocate(prog, tiny_machine(gp=6, pr=8))
        assert result.n_spilled > 0
        r = Interpreter(
            prog,
            frame_words=result.frame_words,
            mem_words=prog.layout().data_end + result.frame_words + 8,
        ).run()
        assert r.output == golden.output

    def test_impossible_allocation_raises(self):
        prog, _ = wide_pressure_program(6)
        with pytest.raises(RegAllocError):
            allocate(prog, tiny_machine(gp=2))  # below minimum operand needs


class TestEDInteraction:
    def test_error_detection_doubles_pressure(self):
        from repro.passes.error_detection import ErrorDetectionPass

        plain = build_loop_program()
        res_plain = allocate(plain, tiny_machine(gp=10))

        protected = build_loop_program()
        ErrorDetectionPass().run(protected, PassContext())
        res_prot = allocate(protected, tiny_machine(gp=10))
        assert res_prot.n_spilled >= res_plain.n_spilled

    def test_protected_spilled_program_still_correct(self):
        from repro.passes.error_detection import ErrorDetectionPass

        golden = Interpreter(build_loop_program()).run()
        prog = build_loop_program()
        ErrorDetectionPass().run(prog, PassContext())
        result = allocate(prog, tiny_machine(gp=10, pr=8))
        r = Interpreter(prog, frame_words=result.frame_words).run()
        assert r.kind is ExitKind.OK
        assert r.output == golden.output
