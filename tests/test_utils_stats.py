
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import confidence_interval_95, geomean, mean, summarize


class TestMean:
    def test_simple(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_single(self):
        assert mean([7.5]) == 7.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestGeomean:
    def test_simple(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity(self):
        assert geomean([3.0, 3.0, 3.0]) == pytest.approx(3.0)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geomean([])

    @given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        g = geomean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=10))
    def test_at_most_arithmetic_mean(self, values):
        assert geomean(values) <= mean(values) + 1e-9


class TestConfidenceInterval:
    def test_half_split(self):
        lo, hi = confidence_interval_95(50, 100)
        assert lo < 0.5 < hi
        assert hi - lo < 0.25

    def test_bounds_clamped(self):
        lo, hi = confidence_interval_95(0, 10)
        assert lo == pytest.approx(0.0, abs=1e-12)
        lo, hi = confidence_interval_95(10, 10)
        assert hi == pytest.approx(1.0, abs=1e-12)

    def test_narrower_with_more_trials(self):
        lo1, hi1 = confidence_interval_95(10, 20)
        lo2, hi2 = confidence_interval_95(100, 200)
        assert hi2 - lo2 < hi1 - lo1

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            confidence_interval_95(1, 0)
        with pytest.raises(ValueError):
            confidence_interval_95(5, 3)

    @given(st.integers(0, 100), st.integers(1, 100))
    def test_interval_contains_point_estimate(self, successes, trials):
        successes = min(successes, trials)
        lo, hi = confidence_interval_95(successes, trials)
        assert lo - 1e-9 <= successes / trials <= hi + 1e-9


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 4.0])
        assert s.n == 3
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.mean == pytest.approx(7.0 / 3)
        assert s.geomean == pytest.approx(2.0)

    def test_geomean_none_when_nonpositive(self):
        assert summarize([-1.0, 1.0]).geomean is None

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])


class TestTwoProportionZ:
    def test_identical_proportions_not_significant(self):
        from repro.utils.stats import two_proportion_z

        z, sig = two_proportion_z(50, 100, 50, 100)
        assert z == 0.0 and not sig

    def test_large_difference_significant(self):
        from repro.utils.stats import two_proportion_z

        z, sig = two_proportion_z(90, 100, 50, 100)
        assert sig and abs(z) > 2

    def test_small_noise_not_significant(self):
        from repro.utils.stats import two_proportion_z

        _, sig = two_proportion_z(93, 120, 95, 120)
        assert not sig

    def test_degenerate_pooled(self):
        from repro.utils.stats import two_proportion_z

        z, sig = two_proportion_z(0, 10, 0, 10)
        assert z == 0.0 and not sig

    def test_validation(self):
        from repro.utils.stats import two_proportion_z

        with pytest.raises(ValueError):
            two_proportion_z(1, 0, 1, 2)
        with pytest.raises(ValueError):
            two_proportion_z(5, 3, 1, 2)
