import pytest

from repro.errors import SemanticError
from repro.frontend.parser import parse
from repro.frontend.sema import analyze


def check(src: str):
    analyze(parse(src))


class TestSema:
    def test_valid_program(self):
        check(
            """
            global g[4];
            func helper(x) { return x + 1; }
            func main() { var a = helper(g[0]); out(a); return 0; }
            """
        )

    def test_missing_main(self):
        with pytest.raises(SemanticError, match="main"):
            check("func notmain() { return 0; }")

    def test_main_with_params(self):
        with pytest.raises(SemanticError):
            check("func main(x) { return 0; }")

    def test_main_cannot_be_library(self):
        with pytest.raises(SemanticError):
            check("lib func main() { return 0; }")

    def test_main_nonliteral_return(self):
        with pytest.raises(SemanticError, match="integer literals"):
            check("func main() { var x = 1; return x; }")

    def test_duplicate_global(self):
        with pytest.raises(SemanticError, match="duplicate global"):
            check("global g[1];\nglobal g[2];\nfunc main() { return 0; }")

    def test_duplicate_function(self):
        with pytest.raises(SemanticError, match="duplicate function"):
            check("func f() { return 0; }\nfunc f() { return 0; }\nfunc main() { return 0; }")

    def test_undeclared_variable(self):
        with pytest.raises(SemanticError, match="undeclared"):
            check("func main() { out(x); return 0; }")

    def test_redeclaration(self):
        with pytest.raises(SemanticError, match="redeclaration"):
            check("func main() { var x = 1; var x = 2; return 0; }")

    def test_assign_to_undeclared(self):
        with pytest.raises(SemanticError):
            check("func main() { x = 1; return 0; }")

    def test_unknown_global(self):
        with pytest.raises(SemanticError, match="unknown global"):
            check("func main() { out(nope[0]); return 0; }")

    def test_unknown_function(self):
        with pytest.raises(SemanticError, match="unknown function"):
            check("func main() { var x = ghost(); return 0; }")

    def test_arity_mismatch(self):
        with pytest.raises(SemanticError, match="expects"):
            check("func f(a, b) { return a; }\nfunc main() { var x = f(1); return 0; }")

    def test_calling_main_rejected(self):
        with pytest.raises(SemanticError, match="'main' cannot be called"):
            check("func f() { return main(); }\nfunc main() { var x = f(); return 0; }")

    def test_direct_recursion(self):
        with pytest.raises(SemanticError, match="recursion"):
            check("func f(x) { return f(x); }\nfunc main() { var a = f(1); return 0; }")

    def test_mutual_recursion(self):
        with pytest.raises(SemanticError, match="recursion"):
            check(
                """
                func f(x) { return g(x); }
                func g(x) { return f(x); }
                func main() { var a = f(1); return 0; }
                """
            )

    def test_break_outside_loop(self):
        with pytest.raises(SemanticError, match="break"):
            check("func main() { break; return 0; }")

    def test_continue_outside_loop(self):
        with pytest.raises(SemanticError, match="continue"):
            check("func main() { continue; return 0; }")

    def test_break_inside_loop_ok(self):
        check("func main() { while (1) { break; } return 0; }")

    def test_duplicate_params(self):
        with pytest.raises(SemanticError, match="duplicate parameter"):
            check("func f(a, a) { return a; }\nfunc main() { return 0; }")

    def test_global_function_name_clash(self):
        with pytest.raises(SemanticError):
            check("global f[1];\nfunc f() { return 0; }\nfunc main() { return 0; }")

    def test_nonmain_can_return_expressions(self):
        check("func f(x) { return x * 2; }\nfunc main() { var a = f(3); return 0; }")

    def test_recursion_through_for_step(self):
        with pytest.raises(SemanticError, match="recursion"):
            check(
                """
                func f(x) { for (var i = 0; i < 1; i = f(i)) { } return x; }
                func main() { var a = f(1); return 0; }
                """
            )
