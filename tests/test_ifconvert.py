"""If-conversion (predication) pass."""

import pytest

from repro.frontend import compile_source
from repro.ir.interp import ExitKind, Interpreter
from repro.ir.verifier import verify_program
from repro.isa.opcodes import Opcode
from repro.machine.config import MachineConfig
from repro.passes.base import PassContext
from repro.passes.ifconvert import IfConversionPass
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor


def convert(prog):
    ctx = PassContext()
    IfConversionPass().run(prog, ctx)
    verify_program(prog)
    return ctx.stats.get("if-convert", {}).get("converted", 0)


def count_branches(prog):
    return sum(
        1
        for _, _, i in prog.main.all_instructions()
        if i.opcode in (Opcode.BRT, Opcode.BRF)
    )


def abs_program():
    return compile_source(
        """
        func main() {
            var s = 0;
            for (var i = -20; i < 20; i = i + 1) {
                var d = i * 3;
                if (d < 0) { d = 0 - d; }
                s = s + d;
            }
            out(s);
            return 0;
        }
        """
    )


class TestTriangle:
    def test_converts_abs_pattern(self):
        prog = abs_program()
        golden = Interpreter(prog).run()
        before = count_branches(prog)
        n = convert(prog)
        assert n >= 1
        assert count_branches(prog) < before
        assert Interpreter(prog).run().output == golden.output

    def test_select_emitted(self):
        prog = abs_program()
        convert(prog)
        ops = [i.opcode for _, _, i in prog.main.all_instructions()]
        assert Opcode.SELECT in ops


class TestDiamond:
    def diamond_program(self):
        return compile_source(
            """
            func main() {
                var s = 0;
                for (var i = 0; i < 30; i = i + 1) {
                    var v = 0;
                    if (i % 3 == 0) { v = i * 5; } else { v = i - 7; }
                    s = s ^ v;
                }
                out(s);
                return 0;
            }
            """
        )

    def test_converts_and_preserves(self):
        prog = self.diamond_program()
        golden = Interpreter(prog).run()
        assert convert(prog) >= 1
        assert Interpreter(prog).run().output == golden.output
        assert Interpreter(prog).run().dyn_instructions > 0


class TestRefusals:
    def test_memory_arm_not_converted(self):
        prog = compile_source(
            """
            global g[4];
            func main() {
                for (var i = 0; i < 5; i = i + 1) {
                    if (i > 2) { g[1] = i; }
                }
                out(g[1]);
                return 0;
            }
            """
        )
        golden = Interpreter(prog).run()
        branches = count_branches(prog)
        convert(prog)
        # the store-bearing arm must survive as a branch
        assert count_branches(prog) == branches
        assert Interpreter(prog).run().output == golden.output

    def test_large_arm_not_converted(self):
        body = " ".join(f"v = v * {k + 2};" for k in range(10))
        prog = compile_source(
            f"""
            func main() {{
                var v = 1;
                if (v > 0) {{ {body} }}
                out(v);
                return 0;
            }}
            """
        )
        branches = count_branches(prog)
        ctx = PassContext()
        IfConversionPass(max_arm_size=4).run(prog, ctx)
        verify_program(prog)
        assert count_branches(prog) == branches

    def test_out_arm_not_converted(self):
        prog = compile_source(
            """
            func main() {
                var x = 3;
                if (x > 1) { out(x); }
                out(0);
                return 0;
            }
            """
        )
        golden = Interpreter(prog).run()
        convert(prog)
        assert Interpreter(prog).run().output == golden.output == (3, 0)


class TestPipelineIntegration:
    @pytest.mark.parametrize("name", ["h263enc", "parser"])
    def test_equivalence_with_if_conversion(self, name):
        from repro.workloads import get_workload

        prog = get_workload(name).program
        golden = Interpreter(prog).run()
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        for scheme in (Scheme.NOED, Scheme.SCED, Scheme.CASTED):
            cp = compile_program(prog, scheme, machine, if_convert=True)
            assert VLIWExecutor(cp).run().output == golden.output, scheme

    def test_reduces_checks_on_branchy_code(self):
        from repro.workloads import get_workload

        prog = get_workload("h263enc").program
        machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
        plain = compile_program(prog, Scheme.SCED, machine)
        conv = compile_program(prog, Scheme.SCED, machine, if_convert=True)
        assert conv.ed_info.n_checks < plain.ed_info.n_checks

    def test_fuzz_interaction(self):
        """Random programs stay correct with if-conversion enabled."""
        from hypothesis import given, settings, HealthCheck
        # reuse the minic generator from the differential fuzzer
        from tests.test_fuzz_differential import minic_programs

        @given(minic_programs())
        @settings(max_examples=10, deadline=None,
                  suppress_health_check=[HealthCheck.too_slow])
        def inner(source):
            prog = compile_source(source)
            golden = Interpreter(prog).run(max_steps=2_000_000)
            if golden.kind is not ExitKind.OK:
                return
            machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
            cp = compile_program(prog, Scheme.CASTED, machine, if_convert=True)
            assert VLIWExecutor(cp).run().output == golden.output

        inner()
