"""Worker telemetry capture/merge: parity, batching, lanes, rebasing.

The determinism contract extends to observability: a parallel campaign's
worker-merged ``campaign.*`` counters (and the detection-latency
histogram) must be bit-identical to a serial run's at any ``--jobs``.
Timing histograms (``*.seconds``) are exempt — worker-side init work
depends on pool reuse and worker-cache state (a fresh worker decodes the
shipped spec and attaches shared snapshots; a warm one skips it), so
parallel runs legitimately record different amounts of those.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.faults.injector import FaultInjector
from repro.machine.config import MachineConfig
from repro.obs.chrome import to_chrome_events
from repro.obs.telemetry import (
    absorb_worker_snapshot,
    configure_worker_capture,
    drain_worker_snapshot,
    get_telemetry,
)
from repro.obs.trace import Tracer
from repro.parallel import _captured_call, parallel_map
from repro.pipeline import Scheme, compile_program
from repro.workloads import get_workload, workload_names

SCHEMES = (Scheme.NOED, Scheme.SCED, Scheme.DCED, Scheme.CASTED)


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    yield
    obs.reset()


def _compile(workload: str, scheme: Scheme):
    return compile_program(
        get_workload(workload).program,
        scheme,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
    )


def _campaign_observables(injector: FaultInjector, trials: int, jobs: int):
    """(campaign.* counters, detection-latency histogram) for one run."""
    tel = obs.configure()
    injector.run_campaign(trials, seed=2013, jobs=jobs)
    obs.reset()
    snap = tel.metrics.snapshot()
    counters = {
        k: v for k, v in snap["counters"].items() if k.startswith("campaign.")
    }
    latency = snap["histograms"].get("campaign.detection_latency")
    return counters, latency


class TestWorkerMergeParity:
    @pytest.mark.parametrize("workload", sorted(workload_names()))
    @pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.value)
    def test_counters_bit_identical_serial_vs_parallel(self, workload, scheme):
        """The full 7-workload x 4-scheme matrix, jobs=1 vs jobs=2."""
        cp = _compile(workload, scheme)
        injector = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        serial = _campaign_observables(injector, trials=30, jobs=1)
        parallel = _campaign_observables(injector, trials=30, jobs=2)
        assert serial == parallel

    def test_parity_at_higher_jobs(self):
        cp = _compile("parser", Scheme.CASTED)
        injector = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        reference = _campaign_observables(injector, trials=100, jobs=1)
        for jobs in (2, 4):
            assert _campaign_observables(injector, trials=100, jobs=jobs) == (
                reference
            ), f"jobs={jobs}"

    def test_shard_results_bit_identical_with_capture_on(self):
        """Telemetry capture must not perturb campaign results at all."""
        cp = _compile("parser", Scheme.CASTED)
        injector = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        )

        def signature(res):
            return (
                res.counts,
                res.total_faults_injected,
                res.detection_latency_sum,
                res.detections_timed,
            )

        plain = injector.run_campaign(50, seed=11, jobs=2)  # telemetry off
        obs.configure()
        captured = injector.run_campaign(50, seed=11, jobs=2)
        obs.reset()
        serial = injector.run_campaign(50, seed=11, jobs=1)
        assert signature(plain) == signature(captured) == signature(serial)


class TestWorkerSpans:
    def test_parallel_campaign_traces_worker_lanes(self):
        cp = _compile("parser", Scheme.CASTED)
        injector = FaultInjector(
            cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words
        )
        tel = obs.configure(keep_events=True)
        injector.run_campaign(100, seed=2013, jobs=2)
        obs.reset()
        worker_events = [e for e in tel.tracer.events if "pid" in e]
        assert worker_events, "no worker spans were absorbed"
        pids = {e["pid"] for e in worker_events}
        assert pids and os.getpid() not in pids
        names = {e["name"] for e in worker_events}
        assert "worker:init" in names  # pool bootstrap phase
        assert "shard" in names  # one span per shard, batched
        # worker timestamps are rebased into the parent's timeline
        assert all(e["ts"] >= 0 for e in worker_events)
        # batching contract: one shard span per shard (100 trials = 4),
        # never one per trial
        shard_spans = [e for e in worker_events if e["name"] == "shard"]
        assert len(shard_spans) == 4
        assert all(sp["args"]["trials"] > 0 for sp in shard_spans)

    def test_absorb_rebases_timestamps(self):
        parent = Tracer(clock=lambda: 100.0, keep_events=True)
        worker_events = [
            {"ev": "X", "name": "shard", "cat": "campaign", "ts": 1.0,
             "dur": 0.5, "depth": 0, "args": {}},
        ]
        # worker epoch 103.0 on the same clock -> offset +3.0
        parent.absorb(worker_events, pid=4242, epoch=103.0)
        (ev,) = parent.events
        assert ev["ts"] == pytest.approx(4.0)
        assert ev["pid"] == 4242
        assert ev["dur"] == pytest.approx(0.5)

    def test_chrome_export_gives_each_worker_a_process_lane(self):
        events = [
            {"ev": "X", "name": "pipeline", "cat": "compile", "ts": 0.0,
             "dur": 1.0, "depth": 0, "args": {}},
            {"ev": "X", "name": "worker:init", "cat": "worker", "ts": 0.1,
             "dur": 0.2, "depth": 0, "args": {}, "pid": 4242},
            {"ev": "X", "name": "shard", "cat": "campaign", "ts": 0.3,
             "dur": 0.4, "depth": 0, "args": {}, "pid": 4243},
        ]
        chrome = to_chrome_events(events)
        names = {
            m["pid"]: m["args"]["name"]
            for m in chrome
            if m["ph"] == "M" and m["name"] == "process_name"
        }
        assert names[1] == "repro"
        assert names[4242] == "worker 4242"
        assert names[4243] == "worker 4243"
        spans = {e["name"]: e for e in chrome if e["ph"] == "X"}
        assert spans["pipeline"]["pid"] == 1
        assert spans["worker:init"]["pid"] == 4242
        assert spans["shard"]["pid"] == 4243
        # workers sort below the parent lane
        sort = {
            m["pid"]: m["args"]["sort_index"]
            for m in chrome
            if m["ph"] == "M" and m["name"] == "process_sort_index"
        }
        assert sort[1] == 0 and sort[4242] > 0 and sort[4243] > 0
        assert sort[4242] != sort[4243]


def _traced_task(x: int) -> int:
    tel = get_telemetry()
    with tel.span("task", cat="worker"):
        tel.count("test.tasks")
        tel.observe("test.values", float(x))
    return x * 2


def _failing_task(x: int) -> int:
    tel = get_telemetry()
    tel.count("test.tasks")
    if x == 2:
        raise ValueError("boom")
    return x


class TestCaptureMechanics:
    def test_parallel_map_merges_worker_metrics(self):
        tel = obs.configure(keep_events=True)
        results = parallel_map(_traced_task, [1, 2, 3, 4, 5], jobs=2)
        obs.reset()
        assert results == [2, 4, 6, 8, 10]
        assert tel.metrics.counters["test.tasks"] == 5
        hist = tel.metrics.histograms["test.values"]
        assert hist.count == 5 and hist.total == pytest.approx(15.0)
        task_spans = [e for e in tel.tracer.events if e["name"] == "task"]
        assert len(task_spans) == 5
        assert all("pid" in e for e in task_spans)

    def test_no_capture_when_parent_disabled(self):
        results = parallel_map(_traced_task, [1, 2, 3], jobs=2)
        assert results == [2, 4, 6]
        assert not get_telemetry().enabled

    def test_drain_clears_between_tasks(self):
        previous = get_telemetry()
        try:
            configure_worker_capture()
            _traced_task(3)
            first = drain_worker_snapshot()
            assert first["metrics"]["counters"]["test.tasks"] == 1
            assert any(e["name"] == "task" for e in first["events"])
            _traced_task(4)
            second = drain_worker_snapshot()
            # only the *delta* since the previous drain travels
            assert second["metrics"]["counters"]["test.tasks"] == 1
            assert len(second["events"]) == len(first["events"])
        finally:
            obs.set_telemetry(previous)

    def test_failed_task_discards_partial_telemetry(self):
        previous = get_telemetry()
        try:
            configure_worker_capture()
            with pytest.raises(ValueError, match="boom"):
                _captured_call(_failing_task, 2)
            # the failing attempt's counters must not leak into the next task
            captured = _captured_call(_failing_task, 1)
            assert captured.result == 1
            assert captured.snapshot["metrics"]["counters"]["test.tasks"] == 1
        finally:
            obs.set_telemetry(previous)

    def test_absorb_none_snapshot_is_noop(self):
        tel = obs.configure()
        absorb_worker_snapshot(None, tel)
        obs.reset()
        assert tel.metrics.snapshot()["counters"] == {}

    def test_merge_counts_across_failures(self):
        """Inline-retried failures still merge the successful tasks once."""
        failures: list[int] = []
        tel = obs.configure()
        results = parallel_map(
            _failing_task,
            [1, 2, 3],
            jobs=2,
            on_failure=lambda i, exc: failures.append(i),
        )
        obs.reset()
        assert results == [1, None, 3]
        assert failures == [1]
        # successes counted exactly once; the failed attempt discarded
        assert tel.metrics.counters["test.tasks"] == 2
