"""The generic dataflow framework: solver, canned analyses, chains."""

from repro.analysis.dataflow import (
    LiveVars,
    MustDefined,
    ReachingDefs,
    def_use_chains,
    solve,
    undefined_uses,
)
from repro.ir.builder import IRBuilder
from repro.ir.liveness import compute_liveness


def diamond_program():
    """entry -> (left | right) -> join; left defines x, right does not."""
    b = IRBuilder("f")
    f = b.function
    b.add_and_enter("entry")
    c = b.movi(1)
    x = f.new_gp()
    p = b.cmplt(c, 2)
    b.brt(p, "left", "right")
    b.add_and_enter("left")
    b.movi_to(x, 7)
    b.jmp("join")
    b.add_and_enter("right")
    b.jmp("join")
    b.add_and_enter("join")
    b.out(x)
    b.halt(0)
    return b.function, x


class TestReachingDefs:
    def test_straight_line(self, loop_program):
        f = loop_program.main
        facts = solve(f, ReachingDefs())
        # Every register used in the loop body has at least one reaching def.
        for _, _, fact in facts.instruction_facts("loop"):
            assert isinstance(fact, frozenset)
        # The loop header joins entry defs with back-edge defs: the induction
        # register reaches with two distinct definition sites.
        entry_fact = facts.entry["loop"]
        regs = {}
        for reg, uid in entry_fact:
            regs.setdefault(reg, set()).add(uid)
        assert any(len(uids) >= 2 for uids in regs.values())

    def test_diamond_merges_defs(self):
        f, x = diamond_program()
        facts = solve(f, ReachingDefs())
        join = facts.entry["join"]
        assert len([d for d in join if d[0] == x]) == 1  # only left's def


class TestMustDefined:
    def test_diamond_partial_def_not_must(self):
        f, x = diamond_program()
        facts = solve(f, MustDefined(f))
        assert x not in facts.entry["join"]

    def test_loop_defs_must_reach_exit(self, loop_program):
        f = loop_program.main
        facts = solve(f, MustDefined(f))
        # Everything defined in entry is must-defined at exit.
        entry_defs = set()
        for insn in f.block("entry").instructions:
            entry_defs.update(insn.writes())
        assert entry_defs <= facts.entry["exit"]


class TestLiveVars:
    def test_matches_liveness_wrapper(self, loop_program):
        f = loop_program.main
        facts = solve(f, LiveVars())
        info = compute_liveness(f)
        for label in f.block_labels():
            assert facts.entry[label] == frozenset(info.live_in[label])
            assert facts.exit[label] == frozenset(info.live_out[label])

    def test_dead_after_last_use(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        v = b.movi(3)
        b.out(v)
        b.halt(0)
        facts = solve(b.function, LiveVars())
        assert v not in facts.exit["entry"]


class TestChains:
    def test_def_use_chain_spans_blocks(self):
        f, x = diamond_program()
        chains = def_use_chains(f)
        uses_of_x = {
            site: defs for site, defs in chains.items() if site[3] == x
        }
        assert uses_of_x
        for defs in uses_of_x.values():
            assert len(defs) == 1  # only left's movi defines x

    def test_undefined_uses_found(self):
        f, x = diamond_program()
        bad = undefined_uses(f)
        assert any(reg == x for _, _, _, reg in bad)

    def test_clean_program_has_none(self, loop_program):
        assert undefined_uses(loop_program.main) == []


class TestSolverEdgeCases:
    def test_unreachable_block_keeps_initial(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.halt(0)
        b.add_and_enter("dead")
        v = b.movi(1)
        b.out(v)
        b.halt(0)
        facts = solve(b.function, ReachingDefs())
        assert facts.entry["dead"] == frozenset()

    def test_single_block(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        v = b.movi(1)
        b.out(v)
        b.halt(0)
        facts = solve(b.function, ReachingDefs())
        assert any(d[0] == v for d in facts.exit["entry"])
