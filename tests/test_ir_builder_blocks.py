import pytest

from repro.errors import IRError
from repro.ir.basic_block import DETECT_LABEL, BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegClass


class TestBasicBlock:
    def test_append_and_terminate(self):
        b = IRBuilder("f")
        blk = b.add_and_enter("entry")
        b.movi(1)
        b.halt(0)
        assert blk.is_terminated
        assert blk.terminator.opcode is Opcode.HALT
        assert len(blk.body()) == 1

    def test_append_after_terminator_rejected(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.halt(0)
        with pytest.raises(IRError):
            b.movi(1)

    def test_reserved_label_rejected(self):
        with pytest.raises(IRError):
            BasicBlock(DETECT_LABEL)
        with pytest.raises(IRError):
            BasicBlock("")

    def test_successor_labels(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        p = b.function.new_pr()
        b.add_block("t")
        b.add_block("f2")
        blk = b.current
        b.emit(Opcode.CMPEQ, (p,), (b.movi(1),), imm=1)
        b.brt(p, "t", "f2")
        assert blk.successor_labels() == ("t", "f2")

    def test_insert_before(self):
        b = IRBuilder("f")
        blk = b.add_and_enter("entry")
        b.movi(1)
        b.halt(0)
        extra = b.function.new_gp()
        from repro.isa.instruction import Instruction

        blk.insert_before(0, Instruction(Opcode.MOVI, dests=(extra,), imm=9))
        assert blk.instructions[0].imm == 9
        with pytest.raises(IRError):
            blk.insert_before(99, Instruction(Opcode.MOVI, dests=(extra,), imm=9))


class TestFunction:
    def test_duplicate_label_rejected(self):
        f = Function("f")
        f.add_block("a")
        with pytest.raises(IRError):
            f.add_block("a")

    def test_entry_is_first_block(self):
        f = Function("f")
        f.add_block("one")
        f.add_block("two")
        assert f.entry.label == "one"

    def test_missing_block(self):
        f = Function("f")
        with pytest.raises(IRError):
            f.block("nope")
        with pytest.raises(IRError):
            _ = f.entry

    def test_fresh_registers(self):
        f = Function("f")
        a, b = f.new_gp(), f.new_gp()
        assert a != b
        p = f.new_pr()
        assert p.rclass is RegClass.PR
        assert f.new_reg_like(a).rclass is RegClass.GP
        assert f.new_reg_like(p).rclass is RegClass.PR

    def test_reserve_vregs(self):
        f = Function("f")
        f.reserve_vregs(RegClass.GP, 10)
        assert f.new_gp().index == 10

    def test_clone_independent(self, loop_program):
        clone = loop_program.main.clone()
        assert clone.instruction_count() == loop_program.main.instruction_count()
        # mutating the clone leaves the original alone
        clone.block("loop").instructions[0].role = Role.DUP
        assert loop_program.main.block("loop").instructions[0].role is Role.ORIG

    def test_clone_remaps_dup_links(self, loop_program):
        func = loop_program.main
        insns = func.block("loop").instructions
        insns[1].dup_of = insns[0].uid
        clone = func.clone()
        c = clone.block("loop").instructions
        assert c[1].dup_of == c[0].uid
        assert c[1].dup_of != insns[0].uid


class TestBuilderHelpers:
    def test_arith_helpers_pick_immediates(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        x = b.movi(4)
        y = b.add(x, 3)
        assert b.current.instructions[-1].imm == 3
        b.mul(x, y)
        assert b.current.instructions[-1].imm is None
        b.halt(0)

    def test_cmp_returns_predicate(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        p = b.cmplt(b.movi(1), 5)
        assert p.rclass is RegClass.PR

    def test_no_insertion_point(self):
        b = IRBuilder("f")
        with pytest.raises(IRError):
            b.movi(1)

    def test_library_context(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        with b.library():
            b.movi(1)
        b.movi(2)
        insns = b.current.instructions
        assert insns[0].from_library
        assert not insns[1].from_library

    def test_chkbr_targets_detect(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        p = b.cmpne(b.movi(0), 0)
        chk = b.chkbr(p)
        assert chk.targets == (DETECT_LABEL,)
        assert chk.role is Role.CHECK
