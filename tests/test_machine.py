import pytest

from repro.errors import MachineConfigError, ScheduleError
from repro.isa.opcodes import LatencyClass, Opcode
from repro.machine.config import (
    CacheHierarchyConfig,
    CacheLevelConfig,
    MachineConfig,
    itanium2_cache,
    paper_machine,
)
from repro.machine.reservation import ReservationTable


class TestCacheConfig:
    def test_table1_geometry(self):
        cache = itanium2_cache()
        l1, l2, l3 = cache.levels
        assert (l1.size_bytes, l1.block_bytes, l1.associativity, l1.latency) == (
            16 * 1024, 64, 4, 1,
        )
        assert (l2.size_bytes, l2.block_bytes, l2.associativity, l2.latency) == (
            256 * 1024, 128, 8, 5,
        )
        assert (l3.size_bytes, l3.block_bytes, l3.associativity, l3.latency) == (
            3 * 1024 * 1024, 128, 12, 12,
        )
        assert cache.memory_latency == 150

    def test_n_sets(self):
        l1 = itanium2_cache().levels[0]
        assert l1.n_sets == 16 * 1024 // (64 * 4)

    def test_bad_geometry(self):
        with pytest.raises(MachineConfigError):
            CacheLevelConfig("x", 1000, 64, 4, 1)  # size not multiple
        with pytest.raises(MachineConfigError):
            CacheLevelConfig("x", 0, 64, 4, 1)

    def test_latencies_must_increase(self):
        l1 = CacheLevelConfig("L1", 1024, 64, 4, 5)
        l2 = CacheLevelConfig("L2", 4096, 64, 4, 5)
        with pytest.raises(MachineConfigError):
            CacheHierarchyConfig(levels=(l1, l2))

    def test_memory_latency_check(self):
        l1 = CacheLevelConfig("L1", 1024, 64, 4, 5)
        with pytest.raises(MachineConfigError):
            CacheHierarchyConfig(levels=(l1,), memory_latency=3)


class TestMachineConfig:
    def test_paper_defaults(self):
        m = paper_machine()
        assert m.n_clusters == 2
        assert m.gp_per_cluster == 64
        assert m.pr_per_cluster == 32

    def test_latency_of(self):
        m = paper_machine()
        assert m.latency_of(Opcode.ADD) == 1
        assert m.latency_of(Opcode.MUL) == 3
        assert m.latency_of(Opcode.DIV) == 12
        assert m.latency_of(Opcode.LOAD) == 1

    def test_with_(self):
        m = paper_machine().with_(issue_width=4)
        assert m.issue_width == 4
        assert m.inter_cluster_delay == paper_machine().inter_cluster_delay

    def test_validation(self):
        with pytest.raises(MachineConfigError):
            MachineConfig(issue_width=0)
        with pytest.raises(MachineConfigError):
            MachineConfig(inter_cluster_delay=-1)
        with pytest.raises(MachineConfigError):
            MachineConfig(n_clusters=0)
        with pytest.raises(MachineConfigError):
            MachineConfig(latencies={LatencyClass.FAST: 1})  # missing classes

    def test_describe_mentions_cache(self):
        text = paper_machine().describe()
        assert "L1" in text and "150" in text


class TestReservationTable:
    def test_reserve_and_fill(self):
        t = ReservationTable(2, 2)
        assert t.has_free_slot(0, 0)
        assert t.reserve(0, 0) == 0
        assert t.reserve(0, 0) == 1
        assert not t.has_free_slot(0, 0)
        assert t.has_free_slot(0, 1)

    def test_overflow_raises(self):
        t = ReservationTable(1, 1)
        t.reserve(0, 0)
        with pytest.raises(ScheduleError):
            t.reserve(0, 0)

    def test_first_free_cycle_skips_full(self):
        t = ReservationTable(1, 1)
        t.reserve(3, 0)
        t.reserve(4, 0)
        assert t.first_free_cycle(0, 3) == 5
        assert t.first_free_cycle(0, 0) == 0

    def test_bad_coordinates(self):
        t = ReservationTable(2, 1)
        with pytest.raises(ScheduleError):
            t.reserve(-1, 0)
        with pytest.raises(ScheduleError):
            t.reserve(0, 5)

    def test_max_cycle(self):
        t = ReservationTable(1, 1)
        assert t.max_cycle() == -1
        t.reserve(7, 0)
        assert t.max_cycle() == 7
