import pytest

from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.program import GlobalArray, Program
from repro.ir.verifier import verify_function, verify_program
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


class TestVerifier:
    def test_valid_program_passes(self, loop_program):
        verify_program(loop_program)

    def test_empty_function(self):
        b = IRBuilder("f")
        with pytest.raises(IRError):
            verify_function(b.function)

    def test_missing_terminator(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.movi(1)
        with pytest.raises(IRError, match="terminator"):
            verify_function(b.function)

    def test_terminator_mid_block(self):
        b = IRBuilder("f")
        blk = b.add_and_enter("entry")
        b.halt(0)
        blk.instructions.append(Instruction(Opcode.HALT, imm=0))
        with pytest.raises(IRError, match="mid-block"):
            verify_function(b.function)

    def test_unknown_branch_target(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.jmp("ghost")
        with pytest.raises(IRError):
            verify_function(b.function)

    def test_unreachable_block_rejected(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.halt(0)
        b.add_and_enter("dead")
        b.halt(0)
        with pytest.raises(IRError, match="unreachable"):
            verify_function(b.function)
        verify_function(b.function, allow_unreachable=True)

    def test_use_before_def(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        ghost = b.function.new_gp()
        b.out(ghost)
        b.halt(0)
        with pytest.raises(IRError, match="before definition"):
            verify_function(b.function)

    def test_def_on_one_path_only(self):
        b = IRBuilder("f")
        f = b.function
        b.add_and_enter("entry")
        x = f.new_gp()
        c = b.movi(1)
        p = b.cmpeq(c, 1)
        b.brt(p, "a", "join")
        b.add_and_enter("a")
        b.movi_to(x, 5)
        b.jmp("join")
        b.add_and_enter("join")
        b.out(x)  # undefined when coming from entry directly
        b.halt(0)
        with pytest.raises(IRError, match="before definition"):
            verify_function(f)

    def test_def_on_both_paths_ok(self):
        b = IRBuilder("f")
        f = b.function
        b.add_and_enter("entry")
        x = f.new_gp()
        c = b.movi(1)
        p = b.cmpeq(c, 1)
        b.brt(p, "a", "bb")
        b.add_and_enter("a")
        b.movi_to(x, 5)
        b.jmp("join")
        b.add_and_enter("bb")
        b.movi_to(x, 6)
        b.jmp("join")
        b.add_and_enter("join")
        b.out(x)
        b.halt(0)
        verify_function(f)

    def test_loop_carried_def_ok(self, loop_program):
        verify_function(loop_program.main)

    def test_hand_built_malformed_block_rejected(self):
        """Regression: raw-appended instructions get the same reaching-defs
        scrutiny as builder-produced code."""
        from repro.ir.function import Function
        from repro.isa.registers import GP

        f = Function("f")
        blk = f.add_block("entry")
        ghost = GP(9)
        blk.append(Instruction(Opcode.OUT, srcs=(ghost,)))
        blk.append(Instruction(Opcode.HALT, imm=0))
        with pytest.raises(IRError, match="before definition"):
            verify_function(f)

    def test_check_defs_opt_out(self):
        """Pre-renaming pipeline stages may verify shape without def-checks."""
        b = IRBuilder("f")
        b.add_and_enter("entry")
        ghost = b.function.new_gp()
        b.out(ghost)
        b.halt(0)
        with pytest.raises(IRError, match="before definition"):
            verify_function(b.function)
        verify_function(b.function, check_defs=False)  # shape still checked

    def test_check_defs_opt_out_still_checks_structure(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.movi(1)
        with pytest.raises(IRError, match="terminator"):
            verify_function(b.function, check_defs=False)

    def test_chkbr_must_target_detect(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        p = b.cmpne(b.movi(0), 0)
        chk = b.chkbr(p)
        chk.targets = ("entry",)
        b.halt(0)
        with pytest.raises(IRError, match="CHKBR"):
            verify_function(b.function)


class TestProgramLevel:
    def test_all_functions_verified(self):
        """verify_program covers non-entry functions, not just main."""
        b = IRBuilder("main")
        b.add_and_enter("entry")
        b.halt(0)
        program = Program(b.function)
        b2 = IRBuilder("helper")
        b2.add_and_enter("h_entry")
        ghost = b2.function.new_gp()
        b2.out(ghost)
        b2.halt(0)
        program.add_function(b2.function)
        with pytest.raises(IRError, match="before definition"):
            verify_program(program)

    def test_duplicate_labels_across_functions(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        b.halt(0)
        program = Program(b.function)
        b2 = IRBuilder("helper")
        b2.add_and_enter("entry")  # clashes with main's label
        b2.halt(0)
        program.add_function(b2.function)
        with pytest.raises(IRError, match="two functions"):
            verify_program(program)

    def test_duplicate_global(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.halt(0)
        with pytest.raises(IRError, match="duplicate global"):
            Program(b.function, [GlobalArray("g", 4), GlobalArray("g", 4)])

    def test_global_initializer_too_long(self):
        with pytest.raises(IRError):
            GlobalArray("g", 2, (1, 2, 3))

    def test_layout_reserves_null_word(self, loop_program):
        layout = loop_program.layout()
        assert min(layout.base_of.values()) == 1
        assert layout.spill_base == layout.data_end
