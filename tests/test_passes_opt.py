"""Classic optimization passes: constant folding, copy propagation, CSE, DCE."""


from repro.ir.builder import IRBuilder
from repro.ir.interp import ExitKind, Interpreter
from repro.ir.program import Program
from repro.ir.verifier import verify_program
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.passes.base import PassContext
from repro.passes.constfold import ConstFoldPass
from repro.passes.copyprop import CopyPropPass
from repro.passes.cse import LocalCSEPass
from repro.passes.dce import DeadCodeEliminationPass
from tests.conftest import build_loop_program


def count_ops(program, opcode):
    return sum(
        1 for _, _, i in program.main.all_instructions() if i.opcode is opcode
    )


def run_pass(p, program):
    ctx = PassContext()
    changed = p.run(program, ctx)
    verify_program(program, allow_unreachable=True)
    return changed


def check_semantics_preserved(make_program, passes):
    prog = make_program()
    golden = Interpreter(prog).run()
    for p in passes:
        run_pass(p, prog)
    result = Interpreter(prog).run()
    assert result.output == golden.output
    assert result.exit_code == golden.exit_code
    return prog, golden


class TestConstFold:
    def test_folds_constant_chain(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(4)
        y = b.movi(5)
        z = b.add(x, y)
        w = b.mul(z, 2)
        b.out(w)
        b.halt(0)
        prog = Program(b.function)
        assert run_pass(ConstFoldPass(), prog)
        # add and mul both became MOVI
        assert count_ops(prog, Opcode.ADD) == 0
        assert count_ops(prog, Opcode.MUL) == 0
        assert Interpreter(prog).run().output == (18,)

    def test_identities(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        unknown = b.load(b.movi(1))
        r1 = b.add(unknown, 0)    # -> mov
        r2 = b.mul(unknown, 1)    # -> mov
        r3 = b.mul(unknown, 0)    # -> movi 0
        b.out(r1)
        b.out(r2)
        b.out(r3)
        b.halt(0)
        from repro.ir.program import GlobalArray

        prog = Program(b.function, [GlobalArray("g", 1, (9,))])
        run_pass(ConstFoldPass(), prog)
        assert count_ops(prog, Opcode.ADD) == 0
        assert count_ops(prog, Opcode.MUL) == 0
        assert Interpreter(prog).run().output == (9, 9, 0)

    def test_divide_by_zero_not_folded(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        z = b.movi(0)
        d = b.div(b.movi(4), z)
        b.out(d)
        b.halt(0)
        prog = Program(b.function)
        run_pass(ConstFoldPass(), prog)
        assert count_ops(prog, Opcode.DIV) == 1  # trap preserved
        assert Interpreter(prog).run().kind is ExitKind.EXCEPTION

    def test_tracking_invalidated_on_redefinition(self):
        b = IRBuilder("main")
        f = b.function
        b.add_and_enter("entry")
        x = f.new_gp()
        b.movi_to(x, 1)
        b.jmp("loop")
        b.add_and_enter("loop")
        y = b.add(x, 1)     # x not constant here (loop-carried)
        b.mov_to(x, y)
        p = b.cmplt(x, 5)
        b.brt(p, "loop", "exit")
        b.add_and_enter("exit")
        b.out(x)
        b.halt(0)
        prog = Program(f)
        golden = Interpreter(prog).run()
        run_pass(ConstFoldPass(), prog)
        assert Interpreter(prog).run().output == golden.output

    def test_loop_program_preserved(self):
        check_semantics_preserved(build_loop_program, [ConstFoldPass()])


class TestCopyProp:
    def test_propagates(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(3)
        y = b.mov(x)
        z = b.add(y, 1)
        b.out(z)
        b.halt(0)
        prog = Program(b.function)
        run_pass(CopyPropPass(), prog)
        add = next(
            i for _, _, i in prog.main.all_instructions() if i.opcode is Opcode.ADD
        )
        assert add.srcs == (x,)
        assert Interpreter(prog).run().output == (4,)

    def test_invalidated_by_source_redefinition(self):
        b = IRBuilder("main")
        f = b.function
        b.add_and_enter("entry")
        x = f.new_gp()
        b.movi_to(x, 3)
        y = b.mov(x)
        b.movi_to(x, 99)       # x changes: y must keep the old value
        z = b.add(y, 1)
        b.out(z)
        b.halt(0)
        prog = Program(f)
        golden = Interpreter(prog).run()
        run_pass(CopyPropPass(), prog)
        assert Interpreter(prog).run().output == golden.output == (4,)

    def test_loop_program_preserved(self):
        check_semantics_preserved(build_loop_program, [CopyPropPass()])


class TestLocalCSE:
    def test_merges_duplicate_expression(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(3)
        y = b.movi(4)
        a = b.add(x, y)
        bb = b.add(x, y)
        b.out(a)
        b.out(bb)
        b.halt(0)
        prog = Program(b.function)
        run_pass(LocalCSEPass(), prog)
        assert count_ops(prog, Opcode.ADD) == 1
        assert Interpreter(prog).run().output == (7, 7)

    def test_commutative_normalization(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(3)
        y = b.movi(4)
        a = b.add(x, y)
        bb = b.add(y, x)
        b.out(b.sub(a, bb))
        b.halt(0)
        prog = Program(b.function)
        run_pass(LocalCSEPass(), prog)
        assert count_ops(prog, Opcode.ADD) == 1

    def test_sees_through_copies(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(3)
        x2 = b.mov(x)
        a = b.add(x, 1)
        bb = b.add(x2, 1)  # same value number through the copy
        b.out(a)
        b.out(bb)
        b.halt(0)
        prog = Program(b.function)
        run_pass(LocalCSEPass(), prog)
        assert count_ops(prog, Opcode.ADD) == 1

    def test_load_cse_invalidated_by_store(self):
        from repro.ir.program import GlobalArray

        b = IRBuilder("main")
        b.add_and_enter("entry")
        addr = b.movi(1)
        v1 = b.load(addr)
        v2 = b.load(addr)          # merged with v1
        b.store(addr, b.movi(42))
        v3 = b.load(addr)          # must NOT merge across the store
        b.out(v1)
        b.out(v2)
        b.out(v3)
        b.halt(0)
        prog = Program(b.function, [GlobalArray("g", 1, (7,))])
        run_pass(LocalCSEPass(), prog)
        assert count_ops(prog, Opcode.LOAD) == 2
        assert Interpreter(prog).run().output == (7, 7, 42)

    def test_does_not_touch_redundant_stream_by_default(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(3)
        a = b.add(x, 1)
        dup = b.current.instructions[-1].clone()
        dup.role = Role.DUP
        b.current.instructions.append(dup)
        b.out(a)
        b.halt(0)
        prog = Program(b.function)
        run_pass(LocalCSEPass(), prog)
        assert count_ops(prog, Opcode.ADD) == 2  # replica untouched

    def test_loop_program_preserved(self):
        check_semantics_preserved(build_loop_program, [LocalCSEPass()])


class TestDCE:
    def test_removes_dead_chain(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        live = b.movi(1)
        dead1 = b.movi(2)
        b.add(dead1, 3)
        b.out(live)
        b.halt(0)
        prog = Program(b.function)
        run_pass(DeadCodeEliminationPass(), prog)
        assert prog.main.instruction_count() == 3  # movi, out, halt

    def test_keeps_side_effects(self):
        from repro.ir.program import GlobalArray

        b = IRBuilder("main")
        b.add_and_enter("entry")
        addr = b.movi(1)
        b.store(addr, b.movi(5))  # dead value? no: store is a side effect
        b.halt(0)
        prog = Program(b.function, [GlobalArray("g", 1)])
        run_pass(DeadCodeEliminationPass(), prog)
        assert count_ops(prog, Opcode.STORE) == 1

    def test_removes_dead_load(self):
        from repro.ir.program import GlobalArray

        b = IRBuilder("main")
        b.add_and_enter("entry")
        addr = b.movi(1)
        b.load(addr)  # result unused
        b.halt(0)
        prog = Program(b.function, [GlobalArray("g", 1)])
        run_pass(DeadCodeEliminationPass(), prog)
        assert count_ops(prog, Opcode.LOAD) == 0

    def test_cross_block_liveness_respected(self, loop_program):
        before = loop_program.main.instruction_count()
        golden = Interpreter(loop_program).run()
        run_pass(DeadCodeEliminationPass(), loop_program)
        assert Interpreter(loop_program).run().output == golden.output
        assert loop_program.main.instruction_count() <= before

    def test_full_o1_pipeline_on_workloads(self):
        from repro.workloads import all_workloads

        passes = [
            ConstFoldPass(),
            CopyPropPass(),
            LocalCSEPass(),
            DeadCodeEliminationPass(),
        ]
        for w in all_workloads()[:3]:
            prog = w.program.clone()
            golden = Interpreter(w.program).run()
            for p in passes:
                run_pass(p, prog)
            r = Interpreter(prog).run()
            assert r.output == golden.output, w.name
            assert r.dyn_instructions <= golden.dyn_instructions, w.name
