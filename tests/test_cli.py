"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def minic_file(tmp_path):
    f = tmp_path / "prog.mc"
    f.write_text(
        """
        func main() {
            var s = 0;
            for (var i = 0; i < 20; i = i + 1) { s = s + i * i; }
            out(s);
            return 0;
        }
        """
    )
    return str(f)


class TestWorkloadsCommand:
    def test_lists_all(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("cjpeg", "mcf", "parser", "vpr"):
            assert name in out


class TestCompileCommand:
    def test_stats(self, capsys, minic_file):
        assert main(["compile", minic_file, "--scheme", "sced"]) == 0
        out = capsys.readouterr().out
        assert "code growth" in out
        assert "role: dup" in out

    def test_print_ir(self, capsys, minic_file):
        assert main(["compile", minic_file, "--print-ir"]) == 0
        out = capsys.readouterr().out
        assert "func prog" in out
        assert "chkbr" in out

    def test_workload_spec(self, capsys):
        assert main(["compile", "workload:mcf", "--scheme", "noed"]) == 0
        out = capsys.readouterr().out
        assert "role: orig" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.mc"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_workload(self, capsys):
        assert main(["compile", "workload:nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err


class TestRunCommand:
    def test_runs(self, capsys, minic_file):
        assert main(["run", minic_file, "--scheme", "casted", "--show-output"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert str(sum(i * i for i in range(20))) in out

    def test_machine_flags(self, capsys, minic_file):
        assert main(["run", minic_file, "--issue", "4", "--delay", "3"]) == 0
        assert "IPC" in capsys.readouterr().out


class TestInjectCommand:
    def test_campaign(self, capsys, minic_file):
        assert main(
            ["inject", minic_file, "--scheme", "sced", "--trials", "30"]
        ) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "coverage" in out

    def test_noed_campaign(self, capsys, minic_file):
        assert main(
            ["inject", minic_file, "--scheme", "noed", "--trials", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "30 faults" not in out  # exactly 1 flip per trial
        assert "20 faults (reg-bit)" in out


class TestSweepCommand:
    def test_sweep(self, capsys, minic_file):
        assert main(
            ["sweep", minic_file, "--issues", "1", "2", "--delays", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "iw1 d1" in out and "iw2 d1" in out
        assert "CASTED" in out


class TestReportCommand:
    def test_table_reports(self, capsys):
        for what in ("table1", "table2", "table3"):
            assert main(["report", what]) == 0
        out = capsys.readouterr().out
        assert "L1" in out and "cjpeg" in out and "SWIFT" in out

    def test_bad_report_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "fig99"])


class TestMixCommand:
    def test_mix(self, capsys, minic_file):
        assert main(["mix", minic_file, "--schemes", "noed", "sced"]) == 0
        out = capsys.readouterr().out
        assert "instruction mix" in out
        assert "role split" in out
        assert "SCED" in out


class TestRecoverCommand:
    def test_recover(self, capsys, minic_file):
        assert main(
            ["recover", minic_file, "--scheme", "sced", "--trials", "25"]
        ) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "correct completion" in out


class TestTraceCommand:
    def test_trace(self, capsys, minic_file):
        assert main(["trace", minic_file, "--scheme", "dced", "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "cycle" in out
        assert len(out.splitlines()) == 11


class TestReportAll:
    def test_collates_results(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "results").mkdir()
        (tmp_path / "results" / "fig6_7_summary.txt").write_text("numbers")
        (tmp_path / "results" / "zz_custom.txt").write_text("extra")
        assert main(["report", "all"]) == 0
        report = (tmp_path / "results" / "REPORT.md").read_text()
        assert "fig6_7_summary" in report
        assert "zz_custom" in report
        assert "numbers" in report

    def test_missing_results_dir(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["report", "all"]) == 2
        assert "results" in capsys.readouterr().err
