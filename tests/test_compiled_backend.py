"""Differential equivalence of the compiled (fused-superblock) backend.

The compiled backend is pure mechanism — generated Python per basic block —
so its only correctness story is *bit-identical equality* with the
per-instruction closure interpreter it replaces.  These tests pin that
equality at both semantic levels (functional RunResult, cycle-level
SimResult) across every workload x scheme combination, plus the telemetry
surfaces the backend adds (decode-cache counters, per-block issue
attribution).  Random-program differential coverage lives in
``test_fuzz_differential.py``.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.ir.interp import Interpreter, resolve_backend
from repro.errors import SimError
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload, workload_names

MACHINE = MachineConfig(issue_width=2, inter_cluster_delay=2)


def _compiled(workload: str, scheme: Scheme):
    return compile_program(get_workload(workload).program, scheme, MACHINE)


class TestBackendResolution:
    def test_default_is_compiled(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_BACKEND", raising=False)
        assert resolve_backend() == "compiled"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_BACKEND", "interp")
        assert resolve_backend() == "interp"
        # an explicit argument beats the environment
        assert resolve_backend("compiled") == "compiled"

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimError, match="unknown sim backend"):
            resolve_backend("turbo")

    def test_executor_reports_backend(self):
        cp = _compiled("mcf", Scheme.NOED)
        assert VLIWExecutor(cp, backend="compiled").backend == "compiled"
        assert VLIWExecutor(cp, backend="interp").backend == "interp"


class TestFunctionalEquivalence:
    @pytest.mark.parametrize("workload", workload_names())
    def test_frontend_runresults_identical(self, workload):
        program = get_workload(workload).program
        ref = Interpreter(program, backend="interp").run(record_trace=True)
        fused = Interpreter(program, backend="compiled").run(record_trace=True)
        assert fused == ref  # kind, exit code, output, dyn count, trace

    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_protected_runresults_identical(self, scheme):
        cp = _compiled("parser", scheme)
        kwargs = dict(mem_words=cp.mem_words, frame_words=cp.frame_words)
        ref = Interpreter(cp.program, backend="interp", **kwargs).run()
        fused = Interpreter(cp.program, backend="compiled", **kwargs).run()
        assert fused == ref


class TestTimedEquivalence:
    @pytest.mark.parametrize("workload", workload_names())
    @pytest.mark.parametrize("scheme", list(Scheme))
    def test_simresults_identical(self, workload, scheme):
        cp = _compiled(workload, scheme)
        ref = VLIWExecutor(cp, backend="interp").run()
        fused = VLIWExecutor(cp, backend="compiled").run()
        # Full dataclass equality: exit kind, exit code, output, cycles,
        # dyn instructions, stall cycles, block visits, cache stats.
        assert fused == ref

    def test_mlp_ablation_config_identical(self):
        cp = _compiled("mcf", Scheme.CASTED)
        ref = VLIWExecutor(cp, backend="interp", overlap_misses=False).run()
        fused = VLIWExecutor(cp, backend="compiled", overlap_misses=False).run()
        assert fused == ref

    def test_issue_attribution_identical(self):
        """Telemetry counters (incl. per-cluster issue attribution) match."""
        cp = _compiled("parser", Scheme.CASTED)

        def counters(backend: str) -> dict:
            tel = obs.configure()
            try:
                VLIWExecutor(cp, backend=backend).run()
                return {
                    k: v for k, v in tel.metrics.counters.items()
                    if k.startswith(("sim.issue.", "sim.stalls.", "sim.cycles",
                                     "sim.dyn", "sim.block"))
                }
            finally:
                obs.reset()

        assert counters("compiled") == counters("interp")


class TestDecodeCache:
    def test_repeat_construction_hits_cache(self):
        program = get_workload("mcf").program
        Interpreter(program, backend="compiled")  # ensure blocks are cached
        tel = obs.configure()
        try:
            Interpreter(program, backend="compiled")
            hits = tel.metrics.counters.get("sim.decode_cache.hits", 0)
            misses = tel.metrics.counters.get("sim.decode_cache.misses", 0)
        finally:
            obs.reset()
        assert hits > 0
        assert misses == 0
