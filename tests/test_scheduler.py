"""VLIW list scheduler + the independent legality validator."""

import pytest

from repro.errors import ScheduleError
from repro.machine.config import MachineConfig
from repro.passes.schedule_check import validate_block_schedule, validate_compiled
from repro.passes.scheduler import BlockSchedule
from repro.pipeline import Scheme, compile_program
from tests.conftest import build_loop_program
from repro.workloads import get_workload


def compile_loop(scheme=Scheme.SCED, iw=2, d=1):
    machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
    return compile_program(build_loop_program(), scheme, machine), machine


class TestSchedulerLegality:
    @pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
    @pytest.mark.parametrize("iw,d", [(1, 1), (2, 2), (4, 4)])
    def test_loop_program_schedules_validate(self, scheme, iw, d):
        cp, machine = compile_loop(scheme, iw, d)
        validate_compiled(cp.program, cp.schedules, machine)

    @pytest.mark.parametrize("scheme", list(Scheme), ids=lambda s: s.value)
    def test_workload_schedules_validate(self, scheme):
        machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
        cp = compile_program(get_workload("h263enc").program, scheme, machine)
        validate_compiled(cp.program, cp.schedules, machine)

    def test_terminator_is_last(self):
        cp, _ = compile_loop()
        for block in cp.program.main.blocks():
            sched = cp.schedules.blocks[block.label]
            term_cycle = sched.cycle_of[-1]
            assert all(c <= term_cycle for c in sched.cycle_of)

    def test_issue_width_respected(self):
        cp, machine = compile_loop(Scheme.SCED, iw=1)
        for block in cp.program.main.blocks():
            sched = cp.schedules.blocks[block.label]
            per_cycle = {}
            for i, insn in enumerate(block.instructions):
                key = (sched.cycle_of[i], insn.cluster)
                per_cycle[key] = per_cycle.get(key, 0) + 1
            assert all(v <= 1 for v in per_cycle.values())

    def test_narrower_issue_never_faster(self):
        lengths = {}
        for iw in (1, 2, 4):
            cp, _ = compile_loop(Scheme.SCED, iw=iw)
            lengths[iw] = cp.schedules.total_cycles_static()
        assert lengths[1] >= lengths[2] >= lengths[4]

    def test_delay_does_not_affect_single_cluster(self):
        a, _ = compile_loop(Scheme.SCED, iw=2, d=1)
        b, _ = compile_loop(Scheme.SCED, iw=2, d=4)
        assert (
            a.schedules.total_cycles_static() == b.schedules.total_cycles_static()
        )

    def test_dced_lengthens_with_delay(self):
        a, _ = compile_loop(Scheme.DCED, iw=2, d=1)
        b, _ = compile_loop(Scheme.DCED, iw=2, d=4)
        assert (
            b.schedules.total_cycles_static() >= a.schedules.total_cycles_static()
        )


class TestValidatorCatchesBadSchedules:
    def _block_and_schedule(self):
        cp, machine = compile_loop()
        block = cp.program.main.block("loop")
        sched = cp.schedules.blocks["loop"]
        homes = {}
        for _, _, insn in cp.program.main.all_instructions():
            for dreg in insn.writes():
                homes[dreg] = insn.cluster
        return block, sched, machine, homes

    def test_accepts_valid(self):
        block, sched, machine, homes = self._block_and_schedule()
        validate_block_schedule(block, sched, machine, homes)

    def test_rejects_dependence_violation(self):
        block, sched, machine, homes = self._block_and_schedule()
        bad = BlockSchedule(
            label=sched.label,
            cycle_of=tuple(0 for _ in sched.cycle_of),
            slot_of=sched.slot_of,
            length=1,
        )
        with pytest.raises(ScheduleError):
            validate_block_schedule(block, bad, machine, homes)

    def test_rejects_oversubscription(self):
        block, sched, machine, homes = self._block_and_schedule()
        narrow = machine.with_(issue_width=1)
        with pytest.raises(ScheduleError):
            validate_block_schedule(block, sched, narrow, homes)

    def test_rejects_wrong_length(self):
        block, sched, machine, homes = self._block_and_schedule()
        bad = BlockSchedule(
            label=sched.label,
            cycle_of=sched.cycle_of,
            slot_of=sched.slot_of,
            length=sched.length + 3,
        )
        with pytest.raises(ScheduleError, match="length"):
            validate_block_schedule(block, bad, machine, homes)

    def test_rejects_arity_mismatch(self):
        block, sched, machine, homes = self._block_and_schedule()
        bad = BlockSchedule(sched.label, sched.cycle_of[:-1], sched.slot_of[:-1], sched.length)
        with pytest.raises(ScheduleError, match="arity"):
            validate_block_schedule(block, bad, machine, homes)


class TestScheduleResult:
    def test_totals(self):
        cp, _ = compile_loop()
        res = cp.schedules
        assert res.total_slots() == cp.program.main.instruction_count()
        assert res.total_cycles_static() == sum(
            b.length for b in res.blocks.values()
        )
