"""CFG simplification (block merging + jump threading)."""


from repro.frontend import compile_source
from repro.ir.builder import IRBuilder
from repro.ir.interp import Interpreter
from repro.ir.program import Program
from repro.ir.verifier import verify_program
from repro.passes.base import PassContext
from repro.passes.simplify_cfg import SimplifyCFGPass


def simplify(prog):
    ctx = PassContext()
    SimplifyCFGPass().run(prog, ctx)
    verify_program(prog)
    return ctx.stats.get("simplify-cfg", {})


class TestMerging:
    def test_straightline_chain_merges(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(1)
        b.jmp("mid")
        b.add_and_enter("mid")
        y = b.add(x, 2)
        b.jmp("end")
        b.add_and_enter("end")
        b.out(y)
        b.halt(0)
        prog = Program(b.function)
        golden = Interpreter(prog).run()
        stats = simplify(prog)
        assert len(prog.main) == 1
        assert stats["merged"] == 2
        assert Interpreter(prog).run().output == golden.output

    def test_multi_pred_block_not_merged(self):
        prog = compile_source(
            """
            func main() {
                var x = 1;
                if (x > 0) { x = 2; } else { x = 3; }
                out(x);   // join has two predecessors: must survive
                return 0;
            }
            """
        )
        golden = Interpreter(prog).run()
        simplify(prog)
        assert Interpreter(prog).run().output == golden.output
        # the diamond structure still needs >= 3 blocks
        assert len(prog.main) >= 3

    def test_loop_structure_preserved(self, loop_program):
        golden = Interpreter(loop_program).run()
        simplify(loop_program)
        assert Interpreter(loop_program).run().output == golden.output
        from repro.ir.cfg import CFG

        assert CFG(loop_program.main).back_edges()  # still a loop

    def test_self_loop_not_merged(self):
        b = IRBuilder("main")
        f = b.function
        b.add_and_enter("entry")
        i = f.new_gp()
        b.movi_to(i, 0)
        b.jmp("spin")
        b.add_and_enter("spin")
        i2 = b.add(i, 1)
        b.mov_to(i, i2)
        p = b.cmplt(i, 5)
        b.brt(p, "spin", "done")
        b.add_and_enter("done")
        b.out(i)
        b.halt(0)
        prog = Program(f)
        golden = Interpreter(prog).run()
        simplify(prog)
        assert Interpreter(prog).run().output == golden.output


class TestThreading:
    def test_trivial_jump_block_threaded(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        x = b.movi(5)
        p = b.cmpgt(x, 0)
        b.brt(p, "hop", "other")
        b.add_and_enter("hop")
        b.jmp("target")        # trivial: just a jump
        b.add_and_enter("other")
        b.jmp("target")
        b.add_and_enter("target")
        b.out(x)
        b.halt(0)
        prog = Program(b.function)
        golden = Interpreter(prog).run()
        stats = simplify(prog)
        assert stats["threaded"] >= 1
        assert Interpreter(prog).run().output == golden.output
        assert not any(
            len(blk.instructions) == 1
            and blk.instructions[0].info.mnemonic == "jmp"
            for blk in prog.main.blocks()
            if blk.label != "entry"
        )

    def test_block_count_shrinks_on_real_code(self):
        from repro.workloads import get_workload

        prog = get_workload("parser").program.clone()
        golden = Interpreter(get_workload("parser").program).run()
        before = len(prog.main)
        simplify(prog)
        assert len(prog.main) < before
        assert Interpreter(prog).run().output == golden.output


class TestPipelineEffect:
    def test_bigger_blocks_do_not_hurt_cycles(self):
        """Merged regions give the scheduler more room on every workload."""
        from repro.machine.config import MachineConfig
        from repro.pipeline import Scheme, compile_program
        from repro.sim.executor import VLIWExecutor
        from repro.workloads import get_workload

        machine = MachineConfig(issue_width=4, inter_cluster_delay=1)
        for name in ("mcf", "cjpeg"):
            prog = get_workload(name).program
            golden = Interpreter(prog).run()
            cp = compile_program(prog, Scheme.NOED, machine)
            r = VLIWExecutor(cp).run()
            assert r.output == golden.output
