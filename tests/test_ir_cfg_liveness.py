import pytest

from repro.errors import IRError
from repro.ir.builder import IRBuilder
from repro.ir.cfg import CFG
from repro.ir.liveness import compute_liveness
from repro.ir.program import Program


def diamond():
    """entry -> (a | b) -> join; x defined in entry, used in join."""
    b = IRBuilder("f")
    f = b.function
    b.add_and_enter("entry")
    x = f.new_gp()
    b.movi_to(x, 1)
    p = b.cmpeq(x, 1)
    b.brt(p, "a", "bb")
    b.add_and_enter("a")
    y = f.new_gp()
    b.movi_to(y, 2)
    b.jmp("join")
    b.add_and_enter("bb")
    b.movi_to(y, 3)
    b.jmp("join")
    b.add_and_enter("join")
    z = b.add(x, y)
    b.out(z)
    b.halt(0)
    return Program(f), x, y


class TestCFG:
    def test_succs_preds(self):
        prog, *_ = diamond()
        cfg = CFG(prog.main)
        assert set(cfg.succs["entry"]) == {"a", "bb"}
        assert set(cfg.preds["join"]) == {"a", "bb"}
        assert cfg.preds["entry"] == []

    def test_reverse_postorder_starts_at_entry(self):
        prog, *_ = diamond()
        rpo = CFG(prog.main).reverse_postorder()
        assert rpo[0] == "entry"
        assert rpo.index("join") > rpo.index("a")
        assert rpo.index("join") > rpo.index("bb")

    def test_unknown_target_rejected(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.jmp("nowhere")
        with pytest.raises(IRError):
            CFG(b.function)

    def test_unreachable_detection(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        b.halt(0)
        b.add_and_enter("island")
        b.halt(0)
        cfg = CFG(b.function)
        assert cfg.unreachable() == {"island"}

    def test_back_edges_and_depths(self, loop_program):
        cfg = CFG(loop_program.main)
        assert cfg.back_edges() == {("loop", "loop")}
        depths = cfg.loop_depths()
        assert depths == {"entry": 0, "loop": 1, "exit": 0}

    def test_nested_loop_depths(self):
        b = IRBuilder("f")
        f = b.function
        b.add_and_enter("entry")
        i = f.new_gp()
        j = f.new_gp()
        b.movi_to(i, 0)
        b.jmp("outer")
        b.add_and_enter("outer")
        b.movi_to(j, 0)
        b.jmp("inner")
        b.add_and_enter("inner")
        j2 = b.add(j, 1)
        b.mov_to(j, j2)
        p = b.cmplt(j, 3)
        b.brt(p, "inner", "outer_latch")
        b.add_and_enter("outer_latch")
        i2 = b.add(i, 1)
        b.mov_to(i, i2)
        q = b.cmplt(i, 3)
        b.brt(q, "outer", "exit")
        b.add_and_enter("exit")
        b.halt(0)
        depths = CFG(f).loop_depths()
        assert depths["inner"] == 2
        assert depths["outer"] == 1
        assert depths["outer_latch"] == 1
        assert depths["entry"] == 0
        assert depths["exit"] == 0


class TestLiveness:
    def test_diamond(self):
        prog, x, y = diamond()
        live = compute_liveness(prog.main)
        assert x in live.live_out["entry"]
        assert x in live.live_in["a"]  # live-through
        assert y in live.live_out["a"]
        assert y in live.live_in["join"]
        assert not live.live_out["join"]

    def test_loop_carried(self, loop_program):
        live = compute_liveness(loop_program.main)
        # loop variables are live around the back edge
        loop_in = live.live_in["loop"]
        loop_out = live.live_out["loop"]
        assert loop_in & loop_out, "loop-carried registers expected"

    def test_dead_def_not_live(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        dead = b.movi(42)
        live_reg = b.movi(1)
        b.out(live_reg)
        b.halt(0)
        live = compute_liveness(b.function)
        assert dead not in live.live_out["entry"]
