"""Dominators, natural loops and loop-invariant code motion."""


from repro.ir.builder import IRBuilder
from repro.ir.cfg import CFG
from repro.ir.interp import Interpreter
from repro.ir.program import GlobalArray, Program
from repro.ir.verifier import verify_program
from repro.isa.opcodes import Opcode
from repro.passes.base import PassContext
from repro.passes.licm import LoopInvariantCodeMotion


def count_in_block(prog, label, opcode):
    return sum(1 for i in prog.main.block(label) if i.opcode is opcode)


class TestDominators:
    def test_linear_chain(self):
        b = IRBuilder("f")
        b.add_and_enter("a")
        b.jmp("b")
        b.add_and_enter("b")
        b.jmp("c")
        b.add_and_enter("c")
        b.halt(0)
        dom = CFG(b.function).dominators()
        assert dom["c"] == {"a", "b", "c"}
        assert dom["a"] == {"a"}

    def test_diamond(self):
        b = IRBuilder("f")
        b.add_and_enter("entry")
        p = b.cmpeq(b.movi(1), 1)
        b.brt(p, "t", "e")
        b.add_and_enter("t")
        b.jmp("join")
        b.add_and_enter("e")
        b.jmp("join")
        b.add_and_enter("join")
        b.halt(0)
        dom = CFG(b.function).dominators()
        assert dom["join"] == {"entry", "join"}  # neither branch dominates
        assert "entry" in dom["t"]

    def test_loop_header_dominates_body(self, loop_program):
        dom = CFG(loop_program.main).dominators()
        assert "loop" in dom["loop"]
        assert "entry" in dom["exit"]

    def test_natural_loops(self, loop_program):
        loops = CFG(loop_program.main).natural_loops()
        assert loops == [("loop", frozenset({"loop"}))]


def invariant_loop_program():
    """A loop recomputing `k = 6*7` and `base = movi` each iteration."""
    b = IRBuilder("main")
    f = b.function
    b.add_and_enter("entry")
    i = f.new_gp()
    acc = f.new_gp()
    b.movi_to(i, 0)
    b.movi_to(acc, 0)
    b.jmp("loop")
    b.add_and_enter("loop")
    six = b.movi(6)          # invariant
    seven = b.movi(7)        # invariant
    k = b.mul(six, seven)    # invariant chain
    t = b.add(i, k)          # NOT invariant (i varies)
    acc2 = b.add(acc, t)
    b.mov_to(acc, acc2)
    i2 = b.add(i, 1)
    b.mov_to(i, i2)
    p = b.cmplt(i, 10)
    b.brt(p, "loop", "exit")
    b.add_and_enter("exit")
    b.out(acc)
    b.halt(0)
    return Program(f)


class TestLICM:
    def run_licm(self, prog):
        ctx = PassContext()
        LoopInvariantCodeMotion().run(prog, ctx)
        verify_program(prog)
        return ctx.stats.get("licm", {}).get("hoisted", 0)

    def test_hoists_invariant_chain(self):
        prog = invariant_loop_program()
        golden = Interpreter(prog).run()
        hoisted = self.run_licm(prog)
        assert hoisted >= 3  # two movis + the mul
        assert count_in_block(prog, "loop", Opcode.MUL) == 0
        assert count_in_block(prog, "entry", Opcode.MUL) == 1
        assert Interpreter(prog).run().output == golden.output

    def test_does_not_hoist_variant_code(self):
        prog = invariant_loop_program()
        self.run_licm(prog)
        # the adds using i / acc must stay in the loop
        assert count_in_block(prog, "loop", Opcode.ADD) == 3

    def test_does_not_hoist_loop_carried(self, loop_program):
        prog = loop_program
        self.run_licm(prog)
        # loop-carried updates (mov i, mov acc) must remain
        movs = count_in_block(prog, "loop", Opcode.MOV)
        assert movs == 2

    def test_does_not_hoist_memory_ops(self):
        b = IRBuilder("main")
        f = b.function
        b.add_and_enter("entry")
        i = f.new_gp()
        b.movi_to(i, 0)
        b.jmp("loop")
        b.add_and_enter("loop")
        addr = b.movi(1)
        v = b.load(addr)         # invariant address, but loads never move
        b.store(addr, b.add(v, 1))
        i2 = b.add(i, 1)
        b.mov_to(i, i2)
        p = b.cmplt(i, 5)
        b.brt(p, "loop", "exit")
        b.add_and_enter("exit")
        b.out(b.load(b.movi(1)))
        b.halt(0)
        prog = Program(f, [GlobalArray("g", 2)])
        golden = Interpreter(prog).run()
        self.run_licm(prog)
        assert count_in_block(prog, "loop", Opcode.LOAD) == 1
        assert Interpreter(prog).run().output == golden.output == (5,)

    def test_zero_trip_loop_safe(self):
        """Hoisted code must not change a loop that never runs."""
        b = IRBuilder("main")
        f = b.function
        b.add_and_enter("entry")
        i = f.new_gp()
        b.movi_to(i, 100)     # loop condition immediately false
        b.jmp("head")
        b.add_and_enter("head")
        p = b.cmplt(i, 10)
        b.brt(p, "body", "exit")
        b.add_and_enter("body")
        k = b.mul(b.movi(3), b.movi(4))
        i2 = b.add(i, k)
        b.mov_to(i, i2)
        b.jmp("head")
        b.add_and_enter("exit")
        b.out(i)
        b.halt(0)
        prog = Program(f)
        golden = Interpreter(prog).run()
        self.run_licm(prog)
        verify_program(prog)
        assert Interpreter(prog).run().output == golden.output == (100,)

    def test_nested_loops(self):
        b = IRBuilder("main")
        f = b.function
        b.add_and_enter("entry")
        i, j, acc = f.new_gp(), f.new_gp(), f.new_gp()
        b.movi_to(i, 0)
        b.movi_to(acc, 0)
        b.jmp("outer")
        b.add_and_enter("outer")
        b.movi_to(j, 0)
        b.jmp("inner")
        b.add_and_enter("inner")
        c = b.mul(b.movi(5), b.movi(9))   # invariant to both loops
        acc2 = b.add(acc, c)
        b.mov_to(acc, acc2)
        j2 = b.add(j, 1)
        b.mov_to(j, j2)
        p = b.cmplt(j, 3)
        b.brt(p, "inner", "latch")
        b.add_and_enter("latch")
        i2 = b.add(i, 1)
        b.mov_to(i, i2)
        q = b.cmplt(i, 4)
        b.brt(q, "outer", "exit")
        b.add_and_enter("exit")
        b.out(acc)
        b.halt(0)
        prog = Program(f)
        golden = Interpreter(prog).run()
        hoisted = self.run_licm(prog)
        assert hoisted >= 3
        assert count_in_block(prog, "inner", Opcode.MUL) == 0
        r = Interpreter(prog).run()
        assert r.output == golden.output == (4 * 3 * 45,)

    def test_workloads_preserved_and_improved(self):
        from repro.workloads import get_workload

        for name in ("cjpeg", "vpr"):
            prog = get_workload(name).program.clone()
            golden = Interpreter(get_workload(name).program).run()
            self.run_licm(prog)
            r = Interpreter(prog).run()
            assert r.output == golden.output, name
            assert r.dyn_instructions <= golden.dyn_instructions, name
