"""Property tests: random straight-line blocks through assignment +
scheduling must always validate and preserve sequential semantics.

Unlike the minic fuzzer (whole programs), this targets the scheduler and
BUG directly with adversarial single-block shapes: deep dependence chains,
wide independent fans, heavy register reuse, memory ops, check-like side
exits — under random machine shapes.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ir.builder import IRBuilder
from repro.ir.interp import Interpreter
from repro.ir.program import GlobalArray, Program
from repro.isa.registers import Reg
from repro.machine.config import MachineConfig
from repro.passes.assignment.bug import bug_assign_block
from repro.passes.schedule_check import validate_block_schedule
from repro.passes.scheduler import schedule_block

_N_REGS = 6
_MEM_WORDS = 8


@st.composite
def random_block_program(draw):
    """A straight-line program over a small register pool + tiny memory."""
    b = IRBuilder("main")
    f = b.function
    b.add_and_enter("entry")
    regs = [f.new_gp() for _ in range(_N_REGS)]
    for i, r in enumerate(regs):
        b.movi_to(r, draw(st.integers(-9, 9)))

    n_ops = draw(st.integers(3, 25))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["alu", "alu", "alu", "store", "load", "out"]))
        if kind == "alu":
            op = draw(st.sampled_from(["add", "sub", "mul", "xor", "and_", "min_"]))
            a = draw(st.sampled_from(regs))
            c = draw(st.sampled_from(regs))
            dest = draw(st.sampled_from(regs))  # heavy reuse on purpose
            b.mov_to(dest, getattr(b, op)(a, c))
        elif kind == "store":
            addr = b.add(b.and_(draw(st.sampled_from(regs)), _MEM_WORDS - 1), 1)
            b.store(addr, draw(st.sampled_from(regs)))
        elif kind == "load":
            addr = b.add(b.and_(draw(st.sampled_from(regs)), _MEM_WORDS - 1), 1)
            dest = draw(st.sampled_from(regs))
            b.mov_to(dest, b.load(addr))
        else:
            b.out(draw(st.sampled_from(regs)))
    b.out(regs[0])
    b.halt(0)
    return Program(f, [GlobalArray("mem", _MEM_WORDS)])


@st.composite
def machines(draw):
    return MachineConfig(
        n_clusters=draw(st.integers(1, 3)),
        issue_width=draw(st.integers(1, 4)),
        inter_cluster_delay=draw(st.integers(0, 5)),
    )


class TestRandomBlocks:
    @given(random_block_program(), machines())
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bug_plus_scheduler_always_legal(self, program, machine):
        block = program.main.entry
        pinned: dict[Reg, int] = {}
        bug_assign_block(block, machine, pinned)
        sched = schedule_block(block, machine, pinned)
        validate_block_schedule(block, sched, machine, pinned)
        # schedule length can never beat the issue-bandwidth bound
        n = len(block.instructions)
        assert sched.length >= n / (machine.n_clusters * machine.issue_width)

    @given(random_block_program(), machines())
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_full_pipeline_preserves_semantics(self, program, machine):
        from repro.pipeline import Scheme, compile_program
        from repro.sim.executor import VLIWExecutor

        golden = Interpreter(program).run()
        schemes = [Scheme.NOED, Scheme.SCED]
        if machine.n_clusters >= 2:
            schemes += [Scheme.DCED, Scheme.CASTED]
        for scheme in schemes:
            cp = compile_program(program, scheme, machine)
            sim = VLIWExecutor(cp).run()
            assert sim.kind is golden.kind, scheme
            assert sim.output == golden.output, scheme

    @given(random_block_program())
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_wider_machines_never_slower_statically(self, program):
        lengths = []
        for iw in (1, 2, 4):
            machine = MachineConfig(issue_width=iw, inter_cluster_delay=1)
            prog = program.clone()
            block = prog.main.entry
            pinned: dict[Reg, int] = {}
            bug_assign_block(block, machine, pinned)
            lengths.append(schedule_block(block, machine, pinned).length)
        # BUG is greedy, so small non-monotonicity happens (a wider machine
        # can bait it into cluster-splitting a short block); allow slack.
        assert lengths[2] <= lengths[0] * 1.1 + 2
