import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimError
from repro.ir.builder import IRBuilder
from repro.ir.interp import ExitKind, FaultSpec, Interpreter
from repro.ir.program import GlobalArray, Program
from repro.isa.opcodes import Opcode
from tests.conftest import build_loop_program


def straightline(emit):
    b = IRBuilder("main")
    b.add_and_enter("entry")
    emit(b)
    if not b.current.is_terminated:
        b.halt(0)
    return Program(b.function)


class TestBasicExecution:
    def test_loop_result(self, loop_program):
        r = Interpreter(loop_program).run()
        assert r.kind is ExitKind.OK
        assert r.exit_code == 0
        assert r.output == (sum(i * i for i in range(10)),)

    def test_dyn_count_exact(self):
        prog = straightline(lambda b: b.out(b.movi(1)))
        r = Interpreter(prog).run()
        assert r.dyn_instructions == 3  # movi, out, halt

    def test_trace_recording(self, loop_program):
        r = Interpreter(loop_program).run(record_trace=True)
        assert r.block_trace[0] == "entry"
        assert r.block_trace.count("loop") == 10
        assert r.block_trace[-1] == "exit"

    def test_exit_code(self):
        prog = straightline(lambda b: b.halt(7))
        assert Interpreter(prog).run().exit_code == 7

    def test_runs_are_independent(self, loop_program):
        interp = Interpreter(loop_program)
        r1 = interp.run()
        r2 = interp.run()
        assert r1.output == r2.output
        assert r1.dyn_instructions == r2.dyn_instructions

    def test_global_initializers_applied(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        addr = b.movi(1)
        b.out(b.load(addr))
        b.out(b.load(addr, 1))
        b.halt(0)
        prog = Program(b.function, [GlobalArray("g", 2, (11, 22))])
        assert Interpreter(prog).run().output == (11, 22)

    def test_memory_reset_between_runs(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        addr = b.movi(1)
        old = b.load(addr)
        b.store(addr, b.add(old, 1))
        b.out(b.load(addr))
        b.halt(0)
        prog = Program(b.function, [GlobalArray("g", 1)])
        interp = Interpreter(prog)
        assert interp.run().output == (1,)
        assert interp.run().output == (1,)


class TestTraps:
    def test_load_out_of_bounds(self):
        prog = straightline(lambda b: b.out(b.load(b.movi(10**9))))
        r = Interpreter(prog).run()
        assert r.kind is ExitKind.EXCEPTION
        assert r.trap == "memory-fault"

    def test_null_access(self):
        prog = straightline(lambda b: b.out(b.load(b.movi(0))))
        assert Interpreter(prog).run().kind is ExitKind.EXCEPTION

    def test_store_negative_address(self):
        prog = straightline(lambda b: b.store(b.movi(-5), b.movi(1)))
        assert Interpreter(prog).run().kind is ExitKind.EXCEPTION

    def test_division_by_zero(self):
        prog = straightline(lambda b: b.out(b.div(b.movi(3), b.movi(0))))
        r = Interpreter(prog).run()
        assert r.kind is ExitKind.EXCEPTION
        assert r.trap == "arithmetic-trap"

    def test_watchdog(self):
        def emit(b):
            b.jmp("spin")
            b.add_and_enter("spin")
            b.jmp("spin")

        prog = straightline(emit)
        r = Interpreter(prog, max_steps=1000).run()
        assert r.kind is ExitKind.TIMEOUT
        assert r.trap == "watchdog"

    def test_per_run_step_override(self, loop_program):
        interp = Interpreter(loop_program)
        assert interp.run(max_steps=5).kind is ExitKind.TIMEOUT
        assert interp.run().kind is ExitKind.OK

    def test_too_small_memory_rejected(self, loop_program):
        with pytest.raises(SimError):
            Interpreter(loop_program, mem_words=2)


class TestFaultInjection:
    def test_fault_changes_output(self, loop_program):
        interp = Interpreter(loop_program)
        golden = interp.run()
        # flip a high bit of the very first movi (i := 0 becomes huge)
        r = interp.run(faults=(FaultSpec(0, 40),))
        assert r.architectural_state != golden.architectural_state

    def test_fault_on_no_dest_instruction_is_dropped(self):
        prog = straightline(lambda b: (b.store(b.movi(1), b.movi(5)), b.out(b.movi(9))))
        # give the program a global so address 1 is valid
        prog = Program(prog.main.clone(), [GlobalArray("g", 2)])
        interp = Interpreter(prog)
        golden = interp.run()
        # dyn index 2 is the store (movi, movi, store, ...)
        r = interp.run(faults=(FaultSpec(2, 5),))
        assert r.output == golden.output

    def test_predicate_fault_flips_branch(self, loop_program):
        interp = Interpreter(loop_program)
        golden = interp.run()
        # find the dyn index of the first cmplt: entry(3) + loop body...
        # easier: scan for a run whose outcome differs with bit 0 flips
        changed = False
        for dyn in range(3, 30):
            r = interp.run(faults=(FaultSpec(dyn, 0),))
            if r.architectural_state != golden.architectural_state:
                changed = True
                break
        assert changed

    def test_multiple_faults(self, loop_program):
        interp = Interpreter(loop_program)
        r = interp.run(faults=(FaultSpec(0, 1), FaultSpec(4, 2), FaultSpec(9, 3)))
        assert r.kind in (ExitKind.OK, ExitKind.EXCEPTION, ExitKind.TIMEOUT)

    def test_fault_determinism(self, loop_program):
        interp = Interpreter(loop_program)
        a = interp.run(faults=(FaultSpec(7, 13),))
        b = interp.run(faults=(FaultSpec(7, 13),))
        assert a.architectural_state == b.architectural_state

    def test_fault_beyond_execution_ignored(self, loop_program):
        interp = Interpreter(loop_program)
        golden = interp.run()
        r = interp.run(faults=(FaultSpec(10**6, 3),))
        assert r.architectural_state == golden.architectural_state

    @given(st.integers(0, 70), st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_any_single_fault_is_classified(self, dyn, bit):
        prog = build_loop_program()
        interp = Interpreter(prog, max_steps=100_000)
        r = interp.run(faults=(FaultSpec(dyn, bit),))
        assert r.kind in ExitKind


class TestFrameOps:
    def test_loadfp_storefp(self):
        def emit(b):
            x = b.movi(77)
            b.emit(Opcode.STOREFP, srcs=(x,), imm=0)
            y = b.function.new_gp()
            b.emit(Opcode.LOADFP, (y,), imm=0)
            b.out(y)

        prog = straightline(emit)
        r = Interpreter(prog, frame_words=2).run()
        assert r.output == (77,)

    def test_frame_outside_memory_rejected(self):
        def emit(b):
            x = b.movi(1)
            b.emit(Opcode.STOREFP, srcs=(x,), imm=500)

        prog = straightline(emit)
        with pytest.raises(SimError):
            Interpreter(prog, frame_words=0, mem_words=16)
