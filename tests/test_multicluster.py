"""CASTED on more than two clusters (the paper's "wide range of core
counts" contribution; its evaluation fixes 2, ours generalizes)."""

import pytest

from repro.ir.interp import Interpreter
from repro.machine.config import MachineConfig
from repro.passes.schedule_check import validate_compiled
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.workloads import get_workload
from tests.conftest import build_loop_program


@pytest.mark.parametrize("n_clusters", [1, 2, 3, 4])
class TestClusterCounts:
    def test_noed_sced_any_cluster_count(self, n_clusters):
        machine = MachineConfig(
            n_clusters=n_clusters, issue_width=2, inter_cluster_delay=1
        )
        golden = Interpreter(build_loop_program()).run()
        for scheme in (Scheme.NOED, Scheme.SCED):
            cp = compile_program(build_loop_program(), scheme, machine)
            validate_compiled(cp.program, cp.schedules, machine)
            assert VLIWExecutor(cp).run().output == golden.output

    def test_casted_any_cluster_count(self, n_clusters):
        if n_clusters < 2:
            pytest.skip("CASTED needs >= 2 clusters")
        machine = MachineConfig(
            n_clusters=n_clusters, issue_width=1, inter_cluster_delay=1
        )
        golden = Interpreter(build_loop_program()).run()
        cp = compile_program(build_loop_program(), Scheme.CASTED, machine)
        validate_compiled(cp.program, cp.schedules, machine)
        assert VLIWExecutor(cp).run().output == golden.output


class TestScalingBehaviour:
    def test_casted_uses_extra_clusters_when_starved(self):
        # With measured block weights the mixed placement wins the safety
        # net and spreads over all four clusters; the static loop-depth
        # proxy is too coarse to guarantee that on this workload.
        from repro.pipeline import collect_block_profile

        prog = get_workload("h263enc").program
        machine = MachineConfig(
            n_clusters=4, issue_width=1, inter_cluster_delay=1
        )
        cp = compile_program(
            prog, Scheme.CASTED, machine,
            block_profile=collect_block_profile(prog),
        )
        used = {
            i.cluster for _, _, i in cp.program.main.all_instructions()
        }
        assert len(used) >= 3

    def test_more_clusters_never_hurt_much(self):
        """Extra clusters are opt-in resources: cycles should not regress
        beyond greedy noise."""
        prog = get_workload("h263enc").program
        cycles = {}
        for n in (2, 4):
            machine = MachineConfig(
                n_clusters=n, issue_width=1, inter_cluster_delay=1
            )
            cp = compile_program(prog, Scheme.CASTED, machine)
            cycles[n] = VLIWExecutor(cp).run().cycles
        assert cycles[4] <= cycles[2] * 1.05

    def test_dced_stays_dual_core(self):
        machine = MachineConfig(
            n_clusters=4, issue_width=1, inter_cluster_delay=1
        )
        cp = compile_program(build_loop_program(), Scheme.DCED, machine)
        used = {i.cluster for _, _, i in cp.program.main.all_instructions()}
        assert used == {0, 1}  # it is a dual-core technique by definition
