from repro.ir.builder import IRBuilder
from repro.ir.dfg import DFG, DepKind
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode


def edges_of(dfg, kind=None):
    return [
        (e.src, e.dst, e.kind)
        for e in dfg.edges
        if kind is None or e.kind is kind
    ]


def build_block(emit):
    b = IRBuilder("f")
    b.add_and_enter("entry")
    emit(b)
    if not b.current.is_terminated:
        b.halt(0)
    return b.current


class TestDataEdges:
    def test_true_dependence(self):
        blk = build_block(lambda b: b.add(b.movi(1), b.movi(2)))
        dfg = DFG(blk)
        data = edges_of(dfg, DepKind.DATA)
        assert (0, 2, DepKind.DATA) in data
        assert (1, 2, DepKind.DATA) in data

    def test_anti_dependence(self):
        def emit(b):
            x = b.function.new_gp()
            b.movi_to(x, 1)       # 0: def x
            y = b.add(x, 2)       # 1: read x
            b.movi_to(x, 3)       # 2: redef x -> ANTI 1->2, OUTPUT 0->2
            b.out(y)

        dfg = DFG(build_block(emit))
        assert (1, 2, DepKind.ANTI) in edges_of(dfg, DepKind.ANTI)
        assert (0, 2, DepKind.OUTPUT) in edges_of(dfg, DepKind.OUTPUT)

    def test_dag_property(self, loop_program):
        for block in loop_program.main.blocks():
            assert DFG(block).is_dag()


class TestMemoryEdges:
    def test_store_orders_everything(self):
        def emit(b):
            a = b.movi(1)
            v = b.movi(2)
            b.store(a, v)         # 2
            x = b.load(a)         # 3: MEM 2->3
            b.store(a, x)         # 4: MEM 2->4 and 3->4
            b.out(x)

        dfg = DFG(build_block(emit))
        mem = edges_of(dfg, DepKind.MEM)
        assert (2, 3, DepKind.MEM) in mem
        assert (2, 4, DepKind.MEM) in mem
        assert (3, 4, DepKind.MEM) in mem

    def test_loads_unordered_between_stores(self):
        def emit(b):
            a = b.movi(1)
            x = b.load(a)        # 1
            y = b.load(a, 1)     # 2 — no edge between loads
            b.out(b.add(x, y))

        dfg = DFG(build_block(emit))
        mem = edges_of(dfg, DepKind.MEM)
        assert (1, 2, DepKind.MEM) not in mem

    def test_out_keeps_program_order(self):
        def emit(b):
            x = b.movi(1)
            b.out(x)             # 1
            b.out(x)             # 2: MEM 1->2 so the stream stays ordered

        dfg = DFG(build_block(emit))
        assert (1, 2, DepKind.MEM) in edges_of(dfg, DepKind.MEM)

    def test_frame_slots_disambiguate_exactly(self):
        def emit(b):
            f = b.function
            t0, t1 = f.new_gp(), f.new_gp()
            b.emit(Opcode.MOVI, (t0,), imm=1)
            b.emit(Opcode.STOREFP, srcs=(t0,), imm=0, role=Role.SPILL)   # 1
            b.emit(Opcode.STOREFP, srcs=(t0,), imm=1, role=Role.SPILL)   # 2
            b.emit(Opcode.LOADFP, (t1,), imm=0, role=Role.SPILL)         # 3
            b.out(t1)

        dfg = DFG(build_block(emit))
        mem = edges_of(dfg, DepKind.MEM)
        assert (1, 3, DepKind.MEM) in mem      # same slot
        assert (2, 3, DepKind.MEM) not in mem  # different slot
        assert (1, 2, DepKind.MEM) not in mem  # different slots


class TestControlEdges:
    def test_check_guards_next_store(self):
        def emit(b):
            a = b.movi(1)
            v = b.movi(2)
            p = b.cmpne(a, v)     # 2
            b.chkbr(p)            # 3
            b.store(a, v)         # 4: CTRL 3->4

        dfg = DFG(build_block(emit))
        assert (3, 4, DepKind.CTRL) in edges_of(dfg, DepKind.CTRL)

    def test_spill_store_does_not_consume_check(self):
        def emit(b):
            a = b.movi(1)
            p = b.cmpne(a, 0)     # 1
            b.chkbr(p)            # 2
            b.emit(Opcode.STOREFP, srcs=(a,), imm=0, role=Role.SPILL)  # 3
            b.store(a, a)         # 4: the real guarded store

        dfg = DFG(build_block(emit))
        ctrl = edges_of(dfg, DepKind.CTRL)
        assert (2, 4, DepKind.CTRL) in ctrl

    def test_terminator_barrier(self):
        blk = build_block(lambda b: b.out(b.add(b.movi(1), 2)))
        dfg = DFG(blk)
        term = len(blk.instructions) - 1
        for i in range(term):
            assert any(e.dst == term for e in dfg.succs[i]), f"node {i}"

    def test_heights_monotone(self, loop_program):
        block = loop_program.main.block("loop")
        dfg = DFG(block)
        h = dfg.heights(lambda e: 1)
        for e in dfg.edges:
            assert h[e.src] >= 1 + h[e.dst] - (0 if e.kind else 0) or h[e.src] >= h[e.dst]

    def test_roots_have_no_preds(self, loop_program):
        for block in loop_program.main.blocks():
            dfg = DFG(block)
            for r in dfg.roots():
                assert not dfg.preds[r]
