"""The static fault-coverage prover: taint rules, verdicts, mutations,
cross-validation against measured trials, formats, CLI, scheme registry."""

import json

import pytest

from repro.analysis.coverage import (
    MODEL_SITE_KINDS,
    CoverageReport,
    cross_validate,
    prove_compiled,
    prove_function,
    prove_program,
)
from repro.analysis.formats import (
    PROVE_FORMATTERS,
    format_prove_json,
    format_prove_sarif,
    format_prove_text,
)
from repro.analysis.mutate import drop_nth_check, drop_nth_replica
from repro.analysis.protection import Severity
from repro.analysis.taint import find_detectors
from repro.cli import main
from repro.errors import SimError
from repro.faults.classify import SITE_ADMISSIBLE, Outcome, SiteClass
from repro.faults.injector import FaultInjector
from repro.ir.builder import IRBuilder
from repro.ir.program import Program
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.schemes import (
    SchemeInfo,
    get_scheme_info,
    register_scheme,
    scheme_names,
)
from tests.conftest import build_loop_program

PROTECTED = [Scheme.CASTED, Scheme.SCED, Scheme.DCED]


def build_checked_program(with_check: bool = True) -> Program:
    """x -> y with a full second stream and (optionally) a check on y."""
    b = IRBuilder("main")
    fn = b.function
    b.add_and_enter("entry")
    x = b.movi(5)
    y = b.add(x, 3)
    x2, y2 = fn.new_gp(), fn.new_gp()
    b.emit(Opcode.MOVI, (x2,), imm=5, role=Role.DUP)
    b.emit(Opcode.ADD, (y2,), srcs=(x2,), imm=3, role=Role.DUP)
    if with_check:
        p = fn.new_pr()
        b.emit(Opcode.CMPNE, (p,), (y, y2), role=Role.CHECK)
        b.chkbr(p)
    b.out(y)
    b.halt(0)
    return Program(fn)


def verdict_by_uid(program: Program, kind: str = "reg"):
    return {
        v.site.uid: v for v in prove_function(program.main, kind)
    }


class TestTaintVerdicts:
    """Per-site classification on hand-built IR."""

    def test_checked_sites_detected(self):
        program = build_checked_program()
        verdicts = verdict_by_uid(program)
        # Every value-producing site feeds the check (or is its predicate):
        # all sites are provably detected.
        assert {v.verdict for v in verdicts.values()} == {SiteClass.DETECTED}

    def test_unchecked_site_escapes(self):
        program = build_checked_program(with_check=False)
        verdicts = verdict_by_uid(program)
        escaping = [
            v for v in verdicts.values()
            if v.verdict is SiteClass.SDC_POSSIBLE
        ]
        assert escaping, "OUT-reaching taint must be SDC_POSSIBLE"
        assert any("out-escape" in (v.escape or "") for v in escaping)
        assert all(v.witness for v in escaping)

    def test_dead_value_masked(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        b.movi(7)  # never read
        live = b.movi(1)
        b.out(live)
        b.halt(0)
        verdicts = verdict_by_uid(Program(b.function))
        assert any(
            v.verdict is SiteClass.MASKED for v in verdicts.values()
        )

    def test_tainted_address_is_trap_escape(self):
        b = IRBuilder("main")
        b.add_and_enter("entry")
        addr = b.movi(1)
        b.load(addr)  # result dead — only the trap matters
        ok = b.movi(0)
        b.out(ok)
        b.halt(0)
        verdicts = verdict_by_uid(Program(b.function))
        addr_site = verdicts[_uid_of(b, Opcode.MOVI, 0)]
        assert addr_site.verdict is SiteClass.SDC_POSSIBLE
        assert addr_site.n_traps >= 1

    def test_shared_source_defeats_check(self):
        # A shadow stream copied from the original value (no independent
        # replica): one fault corrupts both compare operands, so the check
        # proves nothing and the prover must stay conservative.
        b = IRBuilder("main")
        fn = b.function
        b.add_and_enter("entry")
        x = b.movi(5)
        y = b.add(x, 3)
        y2 = fn.new_gp()
        b.emit(Opcode.ADD, (y2,), srcs=(x,), imm=3, role=Role.DUP)
        p = fn.new_pr()
        b.emit(Opcode.CMPNE, (p,), (y, y2), role=Role.CHECK)
        b.chkbr(p)
        b.out(y)
        b.halt(0)
        verdicts = verdict_by_uid(Program(fn))
        x_site = next(
            v for v in verdicts.values() if v.site.opcode == "MOVI"
        )
        assert x_site.verdict is SiteClass.SDC_POSSIBLE

    def test_detector_requires_redundant_producer(self):
        # A check compare whose operands no DUP/SHADOW_COPY writes is not
        # trusted as a detector.
        b = IRBuilder("main")
        fn = b.function
        b.add_and_enter("entry")
        x = b.movi(5)
        y = b.add(x, 3)
        p = fn.new_pr()
        b.emit(Opcode.CMPNE, (p,), (y, y), role=Role.CHECK)
        b.chkbr(p)
        b.out(y)
        b.halt(0)
        assert find_detectors(fn) == frozenset()

    def test_cf_sites_exposed(self):
        program = build_loop_program()
        verdicts = prove_function(program.main, "cf")
        assert verdicts, "loop program has branches"
        assert all(
            v.verdict is SiteClass.SDC_POSSIBLE for v in verdicts
        )

    def test_mem_pseudo_site(self):
        exposed = prove_function(build_loop_program().main, "mem")
        assert len(exposed) == 1
        assert exposed[0].verdict is SiteClass.SDC_POSSIBLE
        b = IRBuilder("main")
        b.add_and_enter("entry")
        b.out(b.movi(1))
        b.halt(0)
        pure = prove_function(Program(b.function).main, "mem")
        assert pure[0].verdict is SiteClass.MASKED


def _uid_of(builder: IRBuilder, opcode: Opcode, nth: int) -> int:
    seen = 0
    for _, _, insn in builder.function.all_instructions():
        if insn.opcode is opcode:
            if seen == nth:
                return insn.uid
            seen += 1
    raise AssertionError(f"no {opcode} #{nth}")


class TestAdmissibleOutcomes:
    def test_detected_never_admits_corruption(self):
        assert Outcome.SDC not in SITE_ADMISSIBLE[SiteClass.DETECTED]
        assert Outcome.TIMEOUT not in SITE_ADMISSIBLE[SiteClass.DETECTED]

    def test_masked_only_benign(self):
        assert SITE_ADMISSIBLE[SiteClass.MASKED] == frozenset(
            {Outcome.BENIGN}
        )

    def test_sdc_possible_admits_everything(self):
        assert SITE_ADMISSIBLE[SiteClass.SDC_POSSIBLE] == frozenset(Outcome)


@pytest.fixture(scope="module")
def compiled_loop():
    return compile_program(
        build_loop_program(),
        Scheme.CASTED,
        MachineConfig(issue_width=2, inter_cluster_delay=1),
        capture_pre_regalloc=True,
    )


class TestMutationsFlip:
    """Dropping one protection element flips at least one static verdict
    from DETECTED to SDC_POSSIBLE (the prover's mutation acceptance)."""

    def _verdicts(self, program):
        return {v.site.uid: v.verdict for v in prove_function(program.main, "reg")}

    def test_drop_replica_flips_site(self, compiled_loop):
        baseline = self._verdicts(compiled_loop.pre_regalloc)
        snap = compiled_loop.pre_regalloc.clone()
        # Clones get fresh uids, so re-prove the clone as its own baseline.
        before = self._verdicts(snap)
        assert drop_nth_replica(snap, 0)
        after = self._verdicts(snap)
        flipped = [
            uid
            for uid, verdict in after.items()
            if verdict is SiteClass.SDC_POSSIBLE
            and before.get(uid) is SiteClass.DETECTED
        ]
        assert flipped, "dropping a replica must expose at least one site"
        assert SiteClass.DETECTED in set(baseline.values())

    def test_drop_check_flips_site(self, compiled_loop):
        snap = compiled_loop.pre_regalloc.clone()
        before = self._verdicts(snap)
        assert drop_nth_check(snap, 0)
        after = self._verdicts(snap)
        flipped = [
            uid
            for uid, verdict in after.items()
            if verdict is SiteClass.SDC_POSSIBLE
            and before.get(uid) is SiteClass.DETECTED
        ]
        assert flipped, "dropping a check must expose at least one site"


class TestWorkloadProofs:
    def test_protected_vs_unprotected_coverage(self, machine):
        from repro.workloads import get_workload

        program = get_workload("mcf").program
        unprotected = prove_compiled(
            compile_program(program, Scheme.NOED, machine),
            fault_models=["reg-bit"],
        ).proofs["reg-bit"]
        protected = prove_compiled(
            compile_program(program, Scheme.CASTED, machine),
            fault_models=["reg-bit"],
        ).proofs["reg-bit"]
        assert unprotected.static_coverage < 0.3
        assert protected.static_coverage > 0.8
        assert protected.counts()["detected"] > 0

    def test_report_exit_codes(self, machine):
        from repro.workloads import get_workload

        compiled = compile_program(
            get_workload("mcf").program, Scheme.CASTED, machine
        )
        report = prove_compiled(compiled, fault_models=["reg-bit"])
        assert report.exit_code(fail_on=Severity.ERROR) == 0
        # Exposed protectable sites surface as warnings.
        if report.counts()["warning"]:
            assert report.exit_code(fail_on=Severity.WARNING) == 1

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="site population"):
            prove_program(build_loop_program(), "casted", ["gamma-ray"])


class TestCrossValidation:
    @pytest.fixture(scope="class")
    def compiled(self):
        return compile_program(
            build_loop_program(),
            Scheme.CASTED,
            MachineConfig(issue_width=2, inter_cluster_delay=1),
        )

    @pytest.mark.parametrize("model", sorted(MODEL_SITE_KINDS))
    def test_sound_on_loop(self, compiled, model):
        try:
            inj = FaultInjector(
                compiled.program,
                compiled.mem_words,
                compiled.frame_words,
                fault_model=model,
            )
        except SimError:
            pytest.skip(f"{model} unusable on this program")
        report = prove_compiled(
            compiled, fault_models=[model], weights=inj.visit_counts()
        )
        val = cross_validate(inj, report.proofs[model], n_trials=40, seed=3)
        assert val.violations == []
        assert val.n_trials == 40

    def test_model_mismatch_rejected(self, compiled):
        inj = FaultInjector(
            compiled.program, compiled.mem_words, compiled.frame_words
        )
        report = prove_compiled(compiled, fault_models=["cf"])
        with pytest.raises(ValueError, match="proof is for"):
            cross_validate(inj, report.proofs["cf"], n_trials=1, seed=0)

    def test_site_of_maps_the_golden_trace(self, compiled):
        inj = FaultInjector(
            compiled.program, compiled.mem_words, compiled.frame_words
        )
        counts = inj.visit_counts()
        assert sum(counts.values()) == len(inj.golden.block_trace)
        label, index = inj.site_of(0)
        assert label == inj.golden.block_trace[0]
        assert index == 0
        with pytest.raises(SimError):
            inj.site_of(-1)
        with pytest.raises(SimError):
            inj.site_of(inj.golden.dyn_instructions)


class TestFormats:
    @pytest.fixture(scope="class")
    def report(self) -> CoverageReport:
        compiled = compile_program(
            build_loop_program(),
            Scheme.CASTED,
            MachineConfig(issue_width=2, inter_cluster_delay=1),
        )
        return prove_compiled(compiled)

    def test_text(self, report):
        text = format_prove_text(report)
        assert "static coverage" in text
        assert "reg-bit" in text

    def test_json_roundtrip(self, report):
        doc = json.loads(format_prove_json(report))
        assert set(doc["models"]) == set(MODEL_SITE_KINDS)
        reg = doc["models"]["reg-bit"]
        assert 0.0 <= reg["static_coverage"] <= 1.0
        assert reg["sites"]

    def test_sarif_driver(self, report):
        doc = json.loads(format_prove_sarif(report))
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-prove"

    def test_formatter_table(self):
        assert set(PROVE_FORMATTERS) == {"text", "json", "sarif"}


class TestProveCLI:
    def test_text_output(self, capsys):
        assert main(["prove", "workload:mcf", "--scheme", "casted"]) == 0
        out = capsys.readouterr().out
        assert "static coverage" in out

    def test_json_output(self, capsys):
        assert (
            main(
                [
                    "prove",
                    "workload:mcf",
                    "--scheme",
                    "noed",
                    "--format",
                    "json",
                    "--models",
                    "reg-bit",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert list(doc["models"]) == ["reg-bit"]

    def test_validate_runs_clean(self, capsys):
        assert (
            main(
                [
                    "prove",
                    "workload:mcf",
                    "--scheme",
                    "casted",
                    "--validate",
                    "25",
                    "--seed",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "0 violation(s)" in out


class TestSchemeRegistry:
    def test_names_cover_pipeline_schemes(self):
        assert set(scheme_names()) == {s.value for s in Scheme}

    def test_info_drives_scheme_properties(self):
        assert Scheme.NOED.protected is False
        assert Scheme.CASTED.protected is True
        assert Scheme.CASTED.info.cluster_policy == "adaptive"
        assert Scheme.DCED.info.min_clusters == 2
        assert get_scheme_info("sced").replicates is True

    def test_unknown_scheme_raises(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            get_scheme_info("tmr")

    def test_register_validates_policy(self):
        with pytest.raises(ValueError, match="cluster policy"):
            register_scheme(
                SchemeInfo(
                    name="bogus",
                    description="",
                    replicates=True,
                    check_placement="pre-consumer",
                    cluster_policy="diagonal",
                )
            )
