"""Issue-trace tool."""

import pytest

from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.sim.tracing import issue_trace, render_issue_trace
from tests.conftest import build_loop_program


@pytest.fixture(scope="module")
def compiled():
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    return compile_program(build_loop_program(3), Scheme.DCED, machine)


class TestIssueTrace:
    def test_monotone_cycles(self, compiled):
        records = list(issue_trace(compiled))
        cycles = [r.cycle for r in records]
        assert cycles == sorted(cycles)

    def test_counts_match_execution(self, compiled):
        records = list(issue_trace(compiled))
        sim = VLIWExecutor(compiled).run()
        assert len(records) == sim.dyn_instructions

    def test_final_cycle_matches_compute_time(self, compiled):
        records = list(issue_trace(compiled))
        sim = VLIWExecutor(compiled).run()
        assert records[-1].cycle == sim.cycles - sim.stall_cycles - 1

    def test_slot_capacity_respected(self, compiled):
        from collections import Counter

        per_cell = Counter(
            (r.cycle, r.cluster) for r in issue_trace(compiled)
        )
        width = compiled.machine.issue_width
        assert all(v <= width for v in per_cell.values())

    def test_max_records(self, compiled):
        assert len(list(issue_trace(compiled, max_records=5))) == 5

    def test_roles_present(self, compiled):
        roles = {r.role for r in issue_trace(compiled)}
        assert {"orig", "dup", "check"} <= roles


class TestRendering:
    def test_render(self, compiled):
        text = render_issue_trace(compiled, max_records=12)
        lines = text.splitlines()
        assert len(lines) == 13  # header + 12 records
        assert "cycle" in lines[0]
        assert "entry" in text
