#!/usr/bin/env python
"""A tour of the compiler pipeline, pass by pass.

Builds a tiny program directly with the IR builder (no minic), then applies
each stage by hand — optimizations, Algorithm 1's three error-detection
steps, BUG cluster assignment, register allocation, scheduling — printing
the program after each, so you can watch the paper's transformation happen.

Run:  python examples/ir_pipeline_tour.py
"""

from repro.ir import IRBuilder, Program, GlobalArray
from repro.ir.printer import print_function
from repro.machine.config import MachineConfig
from repro.passes.assignment.casted import CastedAssignmentPass
from repro.passes.base import PassContext
from repro.passes.checks import emit_checks
from repro.passes.duplication import replicate_instructions
from repro.passes.regalloc import LinearScanAllocator
from repro.passes.renaming import rename_replicas
from repro.passes.scheduler import ListScheduler


def build_program() -> Program:
    b = IRBuilder("demo")
    f = b.function
    b.add_and_enter("entry")
    i = f.new_gp()
    b.movi_to(i, 0)
    b.jmp("loop")
    b.add_and_enter("loop")
    x = b.add(i, 3)
    y = b.mul(x, x)
    addr = b.add(i, 1)
    b.store(addr, y)
    i2 = b.add(i, 1)
    b.mov_to(i, i2)
    p = b.cmplt(i, 8)
    b.brt(p, "loop", "exit")
    b.add_and_enter("exit")
    b.out(i)
    b.halt(0)
    return Program(f, [GlobalArray("buf", 10)])


def show(title: str, program: Program) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))
    print(print_function(program.main))


def main() -> None:
    program = build_program()
    show("front-end IR", program)

    # Algorithm 1, step i: replication
    table = replicate_instructions(program)
    show(f"after replication ({len(table)} replicas)", program)

    # step ii: isolation by register renaming (+ COPY_INSN where needed)
    shadows, n_copies = rename_replicas(program, table)
    show(f"after renaming ({len(shadows)} shadows, {n_copies} copies)", program)

    # step iii: checks (compare + jump before each non-replicated insn)
    n_checks = emit_checks(program, shadows)
    show(f"after check emission ({n_checks} check pairs)", program)

    # Algorithm 2: adaptive cluster assignment (note the !cl0/!cl1 tags)
    machine = MachineConfig(issue_width=1, inter_cluster_delay=1)
    ctx = PassContext(machine=machine)
    CastedAssignmentPass().run(program, ctx)
    show("after CASTED/BUG cluster assignment (issue 1, delay 1)", program)

    # back end: registers + schedule
    LinearScanAllocator().run(program, ctx)
    ListScheduler().run(program, ctx)
    schedules = ctx.artifacts["schedule"]
    loop_sched = schedules.blocks["loop"]
    print("\n=== final loop schedule " + "=" * 37)
    block = program.main.block("loop")
    for cycle in range(loop_sched.length):
        slots = [
            f"cl{block.instructions[i].cluster}: {block.instructions[i]}"
            for i in range(len(block.instructions))
            if loop_sched.cycle_of[i] == cycle
        ]
        print(f"cycle {cycle:2d}  " + "   |   ".join(slots))


if __name__ == "__main__":
    main()
