#!/usr/bin/env python
"""Bring your own workload: write minic, protect it, inspect the result.

Shows the full user journey for protecting custom code:

1. compile minic source to IR,
2. run the error-detection + CASTED pipeline,
3. inspect the transformed code (replicas, shadow copies, checks and their
   cluster placement),
4. verify fault coverage with a quick campaign.

Run:  python examples/custom_workload.py
"""

from collections import Counter

from repro import (
    FaultInjector,
    MachineConfig,
    Outcome,
    Scheme,
    compile_program,
    compile_source,
)
from repro.ir.printer import format_instruction

SOURCE = """
global histogram[16];

lib func noise(s) {
    return s * 2862933555777941757 + 3037000493;
}

func bucket(v) {
    var b = v & 15;
    if (b < 0) { b = 0; }
    return b;
}

func main() {
    var seed = 99;
    for (var i = 0; i < 300; i = i + 1) {
        seed = noise(seed);
        var b = bucket(seed >> 33);
        histogram[b] = histogram[b] + 1;
    }
    var peak = 0;
    for (var j = 0; j < 16; j = j + 1) {
        out(histogram[j]);
        if (histogram[j] > peak) { peak = histogram[j]; }
    }
    out(peak);
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE, name="histogram")
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    compiled = compile_program(program, Scheme.CASTED, machine)

    # 1. What did the pipeline do?
    print("pipeline statistics:")
    for key, value in sorted(compiled.stats.n_by_role.items()):
        print(f"  {key:8s} instructions: {value}")
    print(f"  code growth: {compiled.stats.code_growth:.2f}x, "
          f"spilled registers: {compiled.stats.n_spilled}")

    # 2. Where did CASTED put the code?
    placement = Counter(
        (insn.role.value, insn.cluster)
        for _, _, insn in compiled.program.main.all_instructions()
    )
    print("\nplacement (role, cluster) -> count:")
    for (role, cluster), count in sorted(placement.items()):
        print(f"  {role:8s} cluster {cluster}: {count}")

    # 3. A peek at the protected hot block.
    hot = max(compiled.program.main.blocks(), key=len)
    print(f"\nfirst 14 instructions of the largest block ({hot.label}):")
    for insn in hot.instructions[:14]:
        print(f"  {format_instruction(insn)}")

    # 4. Does it actually detect faults?
    injector = FaultInjector(
        compiled.program,
        mem_words=compiled.mem_words,
        frame_words=compiled.frame_words,
    )
    campaign = injector.run_campaign(trials=150, seed=5)
    print(
        f"\nfault campaign (150 single-flip trials): "
        f"detected {campaign.fraction(Outcome.DETECTED) * 100:.0f}%, "
        f"silent corruption {campaign.fraction(Outcome.SDC) * 100:.0f}%, "
        f"coverage {campaign.coverage * 100:.0f}%"
    )


if __name__ == "__main__":
    main()
