#!/usr/bin/env python
"""Watch CASTED adapt across machine configurations.

Sweeps issue width and inter-cluster delay for one workload and shows how
the best *fixed* scheme flips from DCED (narrow machines: resources are the
bottleneck) to SCED (wide machines with slow interconnect: communication is
the bottleneck) — while CASTED tracks, and sometimes beats, whichever is
best (paper Figs. 2, 3, 6, 7).

Run:  python examples/adaptive_placement.py [workload]
"""

import sys

from repro import MachineConfig, Scheme, VLIWExecutor, compile_program
from repro.utils.tables import format_table
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    program = get_workload(name).program

    rows = []
    for iw in (1, 2, 4):
        for d in (1, 2, 4):
            machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
            cycles = {}
            for scheme in Scheme:
                compiled = compile_program(program, scheme, machine)
                cycles[scheme] = VLIWExecutor(compiled).run().cycles
            noed = cycles[Scheme.NOED]
            best_fixed = min(
                (Scheme.SCED, Scheme.DCED), key=lambda s: cycles[s]
            )
            verdict = "ties"
            if cycles[Scheme.CASTED] < cycles[best_fixed]:
                verdict = "beats"
            elif cycles[Scheme.CASTED] > cycles[best_fixed]:
                verdict = "trails"
            rows.append(
                [
                    f"iw{iw} d{d}",
                    f"{cycles[Scheme.SCED] / noed:.2f}",
                    f"{cycles[Scheme.DCED] / noed:.2f}",
                    f"{cycles[Scheme.CASTED] / noed:.2f}",
                    best_fixed.name,
                    f"CASTED {verdict} it",
                ]
            )

    print(
        format_table(
            ["config", "SCED", "DCED", "CASTED", "best fixed", "adaptivity"],
            rows,
            title=f"{name}: slowdown vs NOED across configurations "
            f"(available: {', '.join(workload_names())})",
        )
    )


if __name__ == "__main__":
    main()
