#!/usr/bin/env python
"""Recovery extension: restart-on-detection turns coverage into availability.

Transient faults strike once (paper §I), so a detected error simply needs a
re-execution from a safe checkpoint — here, program start (memory is inside
its own ECC-protected sphere, and every store was checked before commit).
This demo injects faults into a CASTED-protected workload and compares the
plain detection taxonomy against the outcome with restart enabled.

Run:  python examples/recovery_demo.py [workload] [trials]
"""

import sys

from repro import MachineConfig, Scheme, compile_program
from repro.faults.classify import OUTCOME_ORDER
from repro.faults.injector import FaultInjector
from repro.recovery import run_recovery_campaign
from repro.sim.executor import VLIWExecutor
from repro.utils.tables import format_table
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "parser"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 150
    machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
    program = get_workload(name).program

    noed = compile_program(program, Scheme.NOED, machine)
    reference = VLIWExecutor(noed).run().dyn_instructions
    compiled = compile_program(program, Scheme.CASTED, machine)

    # Detection only (the paper's methodology).
    injector = FaultInjector(
        compiled.program, mem_words=compiled.mem_words, frame_words=compiled.frame_words
    )
    plain = injector.run_campaign(trials, seed=31, reference_dyn=reference)

    # Detection + restart.
    rec = run_recovery_campaign(
        compiled.program,
        trials=trials,
        seed=31,
        mem_words=compiled.mem_words,
        frame_words=compiled.frame_words,
        reference_dyn=reference,
    )

    rows = [
        ["detection only"]
        + [f"{plain.fraction(o) * 100:5.1f}%" for o in OUTCOME_ORDER]
        + ["-", f"{plain.fraction(OUTCOME_ORDER[0]) * 100:5.1f}%"],
        ["with restart"]
        + [
            f"{rec.fraction(k) * 100:5.1f}%"
            for k in ("benign", "detected", "exception", "data-corrupt", "timeout")
        ]
        + [
            f"{rec.fraction('recovered') * 100:5.1f}%",
            f"{rec.correct_completion_rate * 100:5.1f}%",
        ],
    ]
    print(
        format_table(
            ["policy"] + [o.value for o in OUTCOME_ORDER] + ["recovered", "correct"],
            rows,
            title=f"{name} under CASTED, {trials} fault trials",
        )
    )
    print(
        f"\nre-execution overhead: {rec.recovery_overhead * 100:.1f}% of a "
        f"golden run per trial on average\n"
        "('detected' is 0 with restart because every detected transient\n"
        " completes correctly on the second attempt)"
    )


if __name__ == "__main__":
    main()
