#!/usr/bin/env python
"""Quickstart: protect a program with CASTED and measure the cost.

Compiles a small minic kernel under all four schemes (NOED / SCED / DCED /
CASTED), runs each on the cycle-level clustered-VLIW simulator, and prints
the slowdown each protection scheme costs on this machine configuration.

Run:  python examples/quickstart.py
"""

from repro import MachineConfig, Scheme, VLIWExecutor, compile_program, compile_source

SOURCE = """
global data[256];

lib func lcg(s) {
    return s * 6364136223846793005 + 1442695040888963407;
}

func main() {
    // fill the array with pseudo-random values (library code)
    var seed = 7;
    for (var i = 0; i < 256; i = i + 1) {
        seed = lcg(seed);
        data[i] = (seed >> 40) & 0xff;
    }
    // compute a simple blocked checksum (protected code)
    var check = 0;
    for (var b = 0; b < 8; b = b + 1) {
        var acc = 0;
        for (var j = 0; j < 32; j = j + 1) {
            acc = acc + data[b * 32 + j] * (j + 1);
        }
        check = check ^ acc;
        out(acc);
    }
    out(check);
    return 0;
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    machine = MachineConfig(issue_width=2, inter_cluster_delay=1)
    print(f"machine: {machine.n_clusters} clusters x issue {machine.issue_width}, "
          f"inter-cluster delay {machine.inter_cluster_delay}\n")

    baseline = None
    for scheme in Scheme:
        compiled = compile_program(program, scheme, machine)
        result = VLIWExecutor(compiled).run()
        assert result.kind.value == "ok", result
        if baseline is None:
            baseline = result.cycles
        print(
            f"{scheme.name:7s} cycles={result.cycles:8d} "
            f"slowdown={result.cycles / baseline:5.2f}  "
            f"static-instrs={compiled.stats.n_instructions:5d} "
            f"(code growth {compiled.stats.code_growth:.2f}x)"
        )
    print("\nAll schemes produced identical output:",
          f"{len(result.output)} values, checksum {result.output[-1]}")


if __name__ == "__main__":
    main()
