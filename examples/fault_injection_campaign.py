#!/usr/bin/env python
"""Run a Monte-Carlo fault-injection campaign (paper §IV-C methodology).

Injects single-bit flips into instruction output registers of a workload
compiled without protection (NOED) and with CASTED, classifies each trial
as benign / detected / exception / silent corruption / timeout, and prints
the comparison — the protected binary turns silent corruptions into
detections, leaving only the unprotected-library residue.

Run:  python examples/fault_injection_campaign.py [workload] [trials]
"""

import sys

from repro import FaultInjector, MachineConfig, Scheme, compile_program
from repro.faults.classify import OUTCOME_ORDER
from repro.sim.executor import VLIWExecutor
from repro.utils.tables import format_table
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "h263dec"
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 200
    machine = MachineConfig(issue_width=2, inter_cluster_delay=2)
    program = get_workload(name).program

    print(f"workload={name}, {trials} trials per scheme\n")

    # Reference dynamic instruction count (the "original binary") pins the
    # fault *rate* for the larger protected binary.
    noed = compile_program(program, Scheme.NOED, machine)
    reference_dyn = VLIWExecutor(noed).run().dyn_instructions

    rows = []
    for scheme in (Scheme.NOED, Scheme.CASTED):
        compiled = compile_program(program, scheme, machine)
        injector = FaultInjector(
            compiled.program,
            mem_words=compiled.mem_words,
            frame_words=compiled.frame_words,
        )
        result = injector.run_campaign(
            trials=trials,
            seed=1234,
            reference_dyn=None if scheme is Scheme.NOED else reference_dyn,
        )
        rows.append(
            [scheme.name]
            + [f"{result.fraction(o) * 100:5.1f}%" for o in OUTCOME_ORDER]
            + [f"{result.total_faults_injected / trials:.2f}"]
        )

    print(
        format_table(
            ["scheme"] + [o.value for o in OUTCOME_ORDER] + ["flips/trial"],
            rows,
            title="Fault-injection outcomes",
        )
    )
    print(
        "\nResidual data corruption under CASTED comes from the inlined\n"
        "'lib func' code, which stays outside the sphere of replication —\n"
        "exactly the paper's explanation for its Fig. 9 residue."
    )


if __name__ == "__main__":
    main()
