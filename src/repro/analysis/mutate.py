"""Test-only protection mutations: break the sphere, prove the linter sees it.

Each knob removes exactly one piece of the protection machinery from a
pre-regalloc IR snapshot — one replica, or one compare+branch check pair —
mutating the program **in place**.  The linter's acceptance test compiles a
workload, applies a mutation, and asserts the corresponding rule fires:
dropping a replica must trip ``replication-coverage`` (and usually
``check-coverage``, since the shadow goes stale), dropping a check pair
must trip ``check-coverage`` or ``check-wiring``.

These helpers are deliberately *not* used by the pipeline; they live in the
analysis package so the tests and docs can share them.
"""

from __future__ import annotations

from repro.analysis.protection import CHECK_CMP_OPCODES
from repro.ir.program import Program
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode


def drop_nth_replica(program: Program, n: int = 0) -> bool:
    """Delete the ``n``-th replica instruction; True if one was removed."""
    seen = 0
    for function in program.functions():
        for block in function.blocks():
            for idx, insn in enumerate(block.instructions):
                if insn.role is Role.DUP:
                    if seen == n:
                        del block.instructions[idx]
                        return True
                    seen += 1
    return False


def drop_nth_check(program: Program, n: int = 0) -> bool:
    """Delete the ``n``-th compare+CHKBR check pair; True if removed.

    The pair is identified structurally: a check-role compare followed by
    the CHKBR consuming its predicate.
    """
    seen = 0
    for function in program.functions():
        for block in function.blocks():
            insns = block.instructions
            for idx, insn in enumerate(insns):
                if not (
                    insn.role is Role.CHECK
                    and insn.opcode in CHECK_CMP_OPCODES
                ):
                    continue
                if seen != n:
                    seen += 1
                    continue
                pred = insn.dests[0] if insn.dests else None
                del insns[idx]
                for j in range(idx, len(insns)):
                    branch = insns[j]
                    if (
                        branch.opcode is Opcode.CHKBR
                        and pred in branch.reads()
                    ):
                        del insns[j]
                        break
                return True
    return False
