"""Static analysis: the dataflow framework and the protection linter.

Import structure matters here: the IR layer (verifier, liveness) depends on
:mod:`repro.analysis.dataflow`, while the linter modules
(:mod:`repro.analysis.protection`, :mod:`repro.analysis.lint`) depend on the
pass/pipeline layer, which itself imports the verifier.  This ``__init__``
therefore re-exports only the dataflow layer; import the linter explicitly::

    from repro.analysis.lint import lint_program
"""

from repro.analysis.dataflow import (
    BlockFacts,
    DataflowAnalysis,
    DefSite,
    Direction,
    LiveVars,
    MustDefined,
    ReachingDefs,
    def_use_chains,
    solve,
    undefined_uses,
)

__all__ = [
    "BlockFacts",
    "DataflowAnalysis",
    "DefSite",
    "Direction",
    "LiveVars",
    "MustDefined",
    "ReachingDefs",
    "def_use_chains",
    "solve",
    "undefined_uses",
]
