"""Linter orchestration: compile, audit, measure vulnerability windows.

Entry points, in increasing convenience:

* :func:`lint_snapshot` — run the protection rules over an IR snapshot
  (the ``CompiledProgram.pre_regalloc`` clone, or any hand-built program
  at the same pipeline stage);
* :func:`lint_compiled` — the above plus the schedule-legality cross-check
  against the *final* compiled program;
* :func:`lint_program` — compile a source program under a scheme (with
  ``capture_pre_regalloc=True``) and lint the result, returning a full
  :class:`LintReport` with per-definition vulnerability windows.

A **vulnerability window** is the shortest number of executed instructions
between a protected value's definition and the earliest check compare of
that value (paths end where the register is redefined).  It is the static
analogue of the campaigns' measured *detection latency* — both are in
dynamic-instruction units — so the report correlates the two directly
(``results/lint_report.md``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.protection import (
    CHECK_CMP_OPCODES,
    AvailableChecks,
    Finding,
    Severity,
    SphereModel,
    build_sphere_model,
    lint_function,
)
from repro.errors import ScheduleError
from repro.ir.basic_block import BasicBlock
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.instruction import Role
from repro.isa.registers import Reg
from repro.machine.config import MachineConfig
from repro.pipeline import CompiledProgram, Scheme, compile_program


@dataclass(frozen=True)
class VulnWindow:
    """One protected definition's distance to its earliest check."""

    reg: str
    function: str
    block: str
    index: int
    #: Shortest executed-instruction count from the definition to the first
    #: check compare of the register; ``None`` when no check is reachable
    #: before every path redefines the value (covered transitively).
    distance: int | None
    #: Execution weight of the defining block (block profile count, or 1).
    weight: int


@dataclass
class WindowSummary:
    """Aggregate vulnerability-window statistics for one program."""

    windows: list[VulnWindow] = field(default_factory=list)

    @property
    def n_defs(self) -> int:
        return len(self.windows)

    @property
    def checked(self) -> list[VulnWindow]:
        return [w for w in self.windows if w.distance is not None]

    @property
    def n_unchecked(self) -> int:
        return sum(1 for w in self.windows if w.distance is None)

    @property
    def max_window(self) -> int:
        return max((w.distance or 0 for w in self.checked), default=0)

    @property
    def mean_window(self) -> float:
        checked = self.checked
        if not checked:
            return 0.0
        return sum(w.distance or 0 for w in checked) / len(checked)

    @property
    def weighted_mean_window(self) -> float:
        """Mean window weighted by defining-block execution counts."""
        checked = self.checked
        total_w = sum(w.weight for w in checked)
        if not total_w:
            return 0.0
        return sum((w.distance or 0) * w.weight for w in checked) / total_w

    def to_json(self) -> dict[str, object]:
        return {
            "n_defs": self.n_defs,
            "n_unchecked": self.n_unchecked,
            "max_window": self.max_window,
            "mean_window": round(self.mean_window, 3),
            "weighted_mean_window": round(self.weighted_mean_window, 3),
        }


#: BFS position cap per definition; windows past this are effectively
#: unbounded and reported as unchecked.
_BFS_LIMIT = 20_000


def _windows_for_function(
    function: Function,
    model: SphereModel,
    block_profile: dict[str, int] | None,
) -> list[VulnWindow]:
    """Shortest def-to-check distance for every protected original def."""
    analysis = AvailableChecks(model)
    # (block label, index) -> checked register at that check compare
    check_at: dict[tuple[str, int], Reg] = {}
    for block in function.blocks():
        for idx, insn in enumerate(block.instructions):
            if insn.role is Role.CHECK and insn.opcode in CHECK_CMP_OPCODES:
                reg = analysis._checked_register(insn)
                if reg is not None:
                    check_at[(block.label, idx)] = reg

    blocks = {b.label: b for b in function.blocks()}
    succs = {
        b.label: b.successor_labels() if b.is_terminated else ()
        for b in function.blocks()
    }

    windows: list[VulnWindow] = []
    for block, def_idx, insn in function.all_instructions():
        if insn.role is not Role.ORIG or insn.from_library:
            continue
        for reg in insn.writes():
            if reg not in model.shadow_of:
                continue
            distance = _bfs_to_check(
                reg, block.label, def_idx, blocks, succs, check_at
            )
            weight = 1
            if block_profile is not None:
                weight = max(1, block_profile.get(block.label, 0))
            windows.append(
                VulnWindow(
                    reg=str(reg),
                    function=function.name,
                    block=block.label,
                    index=def_idx,
                    distance=distance,
                    weight=weight,
                )
            )
    return windows


def _bfs_to_check(
    reg: Reg,
    def_block: str,
    def_idx: int,
    blocks: dict[str, BasicBlock],
    succs: dict[str, tuple[str, ...]],
    check_at: dict[tuple[str, int], Reg],
) -> int | None:
    """Shortest executed-instruction distance from a def to a check of it.

    Positions are (block, instruction index); stepping *past* an
    instruction costs 1.  A path dies where ``reg`` is redefined (the old
    value no longer needs checking) or falls off a function exit.
    """
    start = (def_block, def_idx + 1)
    seen: set[tuple[str, int]] = {start}
    queue: deque[tuple[str, int, int]] = deque([(def_block, def_idx + 1, 0)])
    visited = 0
    while queue:
        label, idx, dist = queue.popleft()
        visited += 1
        if visited > _BFS_LIMIT:
            return None
        insns = blocks[label].instructions
        if idx >= len(insns):
            for nxt in succs[label]:
                pos = (nxt, 0)
                if pos not in seen:
                    seen.add(pos)
                    queue.append((nxt, 0, dist))
            continue
        insn = insns[idx]
        if check_at.get((label, idx)) == reg:
            return dist + 1  # the check executes, then detection can fire
        if reg in insn.writes():
            continue  # value redefined: this path no longer exposes it
        pos = (label, idx + 1)
        if pos not in seen:
            seen.add(pos)
            queue.append((label, idx + 1, dist + 1))
    return None


def compute_windows(
    program: Program, block_profile: dict[str, int] | None = None
) -> WindowSummary:
    """Vulnerability windows for every function of a pre-regalloc program."""
    summary = WindowSummary()
    for function in program.functions():
        model = build_sphere_model(function)
        if not model.shadow_of:
            continue  # unprotected function: no sphere to measure
        summary.windows.extend(
            _windows_for_function(function, model, block_profile)
        )
    return summary


# ---------------------------------------------------------------------------
# Orchestration
# ---------------------------------------------------------------------------


@dataclass
class LintReport:
    """Everything ``repro lint`` knows about one program under one scheme."""

    program: str
    scheme: str
    machine: str
    findings: list[Finding]
    windows: WindowSummary

    def counts(self) -> dict[str, int]:
        out = {s.value: 0 for s in Severity}
        for f in self.findings:
            out[f.severity.value] += 1
        return out

    @property
    def max_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max((f.severity for f in self.findings), key=lambda s: s.rank)

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        """0 = clean, 1 = findings at/above the gate severity."""
        worst = self.max_severity
        if worst is None or worst.rank < fail_on.rank:
            return 0
        return 1

    def to_json(self) -> dict[str, object]:
        return {
            "program": self.program,
            "scheme": self.scheme,
            "machine": self.machine,
            "counts": self.counts(),
            "findings": [f.to_json() for f in self.findings],
            "windows": self.windows.to_json(),
        }


def lint_snapshot(
    program: Program,
    scheme: Scheme | str,
    n_clusters: int,
    partial_protection: bool = False,
) -> list[Finding]:
    """Run every per-function protection rule over an IR snapshot."""
    scheme_name = scheme.value if isinstance(scheme, Scheme) else scheme
    findings: list[Finding] = []
    for function in program.functions():
        findings.extend(
            lint_function(
                function, scheme_name, n_clusters, partial_protection
            )
        )
    return findings


def lint_compiled(
    compiled: CompiledProgram, partial_protection: bool = False
) -> list[Finding]:
    """Protection rules on the snapshot + schedule legality on the result."""
    if compiled.pre_regalloc is None:
        raise ValueError(
            "compile with capture_pre_regalloc=True to lint the result"
        )
    findings = lint_snapshot(
        compiled.pre_regalloc,
        compiled.scheme,
        compiled.machine.n_clusters,
        partial_protection,
    )
    from repro.passes.schedule_check import validate_compiled

    try:
        validate_compiled(
            compiled.program, compiled.schedules, compiled.machine
        )
    except ScheduleError as exc:
        findings.append(
            Finding(
                "schedule-legality",
                Severity.ERROR,
                str(exc),
                compiled.program.main.name,
            )
        )
    return findings


def lint_program(
    source: Program,
    scheme: Scheme,
    machine: MachineConfig,
    block_profile: dict[str, int] | None = None,
    partial_protection: bool = False,
    **compile_kwargs: Any,
) -> LintReport:
    """Compile ``source`` under ``scheme`` and lint the result."""
    partial_protection = partial_protection or (
        compile_kwargs.get("protect_slice_depth") is not None
    )
    compiled = compile_program(
        source,
        scheme,
        machine,
        capture_pre_regalloc=True,
        block_profile=block_profile,
        **compile_kwargs,
    )
    findings = lint_compiled(compiled, partial_protection)
    windows = compute_windows(compiled.pre_regalloc, block_profile)
    report = LintReport(
        program=source.main.name,
        scheme=scheme.value,
        machine=f"{machine.n_clusters}x{machine.issue_width}w d{machine.inter_cluster_delay}",
        findings=findings,
        windows=windows,
    )
    _publish_metrics(report)
    return report


def _publish_metrics(report: LintReport) -> None:
    """Mirror the report into the telemetry registry (no-op when disabled)."""
    from repro.obs import get_telemetry

    tel = get_telemetry()
    if not tel.enabled:
        return
    for severity, n in report.counts().items():
        if n:
            tel.count(f"lint.findings.{severity}", n)
    for finding in report.findings:
        tel.count(f"lint.rule.{finding.rule}")
    tel.gauge("lint.windows.defs", report.windows.n_defs)
    tel.gauge("lint.windows.unchecked", report.windows.n_unchecked)
    for w in report.windows.checked:
        tel.observe("lint.window", float(w.distance or 0))
