"""The protection linter: static sphere-of-replication analysis.

Every rule here is a static proof obligation derived from the paper's
Algorithm 1 invariants:

* **replication-coverage** (step i, ``replicate_insns``) — every eligible
  original instruction has a structurally identical replica;
* **shadow-isolation** (step ii, ``register_rename``) — replicas read and
  write only shadow registers, the original stream never touches them;
* **check-coverage** (step iii, ``emit_check_insns``) — every register a
  store/branch/``OUT`` consumes is compared against its shadow on *every*
  path from its definition, proven with an "available shadow-check"
  must-dataflow over the shared framework;
* **check-wiring** — every ``CHKBR`` is fed by a check compare and targets
  the fault handler, and no check compare's result is dropped;
* **duplicate-check** — no register is checked twice with no consumer in
  between (the pair is pure overhead);
* **cluster-placement** / **noed-purity** — the scheme's placement rules
  (SCED single cluster, DCED role split, CASTED single-home) hold, and an
  unprotected binary carries no redundant code.

The linter shares **no state** with the passes it audits: the shadow map and
the replica table are reconstructed structurally from the IR (role tags,
``dup_of`` links, operand positions), so a pass bug cannot hide in shared
bookkeeping — the same independence discipline as
:mod:`repro.passes.schedule_check`.

Rules run on the *post-assignment, pre-regalloc* IR snapshot
(``CompiledProgram.pre_regalloc``): shadow registers are still distinct
virtual registers there (linear scan later reuses physical registers across
streams, which destroys the shadow/original distinction), while cluster
assignments are already final.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.analysis.dataflow import (
    DataflowAnalysis,
    Direction,
    Fact,
    ReachingDefs,
    solve,
)
from repro.ir.basic_block import DETECT_LABEL
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg

#: Opcodes whose operands leave the sphere of replication (paper §III-B).
CONSUMER_OPCODES = frozenset(
    {Opcode.STORE, Opcode.OUT, Opcode.BRT, Opcode.BRF}
)

#: Opcodes a check compare may use (GP and PR flavours).
CHECK_CMP_OPCODES = frozenset({Opcode.CMPNE, Opcode.PNE})

def _known_schemes() -> tuple[str, ...]:
    """Schemes the linter knows placement rules for (registry-backed)."""
    from repro.schemes import scheme_names

    return tuple(scheme_names())


class Severity(enum.Enum):
    """Finding severity, ordered ERROR > WARNING > INFO."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Severity.{self.name}"


@dataclass(frozen=True)
class Finding:
    """One linter finding, anchored to an instruction when possible."""

    rule: str
    severity: Severity
    message: str
    function: str
    block: str | None = None
    index: int | None = None
    uid: int | None = None

    @property
    def location(self) -> str:
        """``function.block[index]`` (best effort)."""
        loc = self.function
        if self.block is not None:
            loc += f".{self.block}"
            if self.index is not None:
                loc += f"[{self.index}]"
        return loc

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.function,
            "block": self.block,
            "index": self.index,
            "uid": self.uid,
        }


#: Rule id -> one-line description (drives SARIF rule metadata and docs).
RULE_DESCRIPTIONS: dict[str, str] = {
    "replication-coverage": (
        "every eligible original instruction has a structurally identical "
        "replica (Algorithm 1 step i)"
    ),
    "shadow-isolation": (
        "replicas touch only shadow registers and the original stream never "
        "reads them (Algorithm 1 step ii)"
    ),
    "check-coverage": (
        "every register leaving the sphere of replication is compared "
        "against its shadow on every path (Algorithm 1 step iii)"
    ),
    "check-wiring": (
        "every CHKBR is fed by a check compare and targets the fault "
        "handler; no check compare result is dropped"
    ),
    "duplicate-check": (
        "no register is re-checked before any consumer uses it (redundant "
        "compare+branch pair)"
    ),
    "cluster-placement": (
        "the scheme's cluster-placement rules hold (SCED unified, DCED role "
        "split, single home cluster per register)"
    ),
    "noed-purity": (
        "an unprotected (NOED) binary carries no replicas, shadow copies or "
        "checks"
    ),
    "unshadowed-value": (
        "a consumed register has no shadow (library-produced value): the "
        "residual silent-data-corruption channel"
    ),
    "schedule-legality": (
        "the final schedule honours every dependence, issue-width and "
        "inter-cluster delay constraint (cross-check via schedule_check)"
    ),
}


# ---------------------------------------------------------------------------
# Structural sphere-of-replication model
# ---------------------------------------------------------------------------


@dataclass
class SphereModel:
    """Replica table + shadow map reconstructed from one function's IR."""

    function: Function
    replicas_of: dict[int, list[Instruction]] = field(default_factory=dict)
    by_uid: dict[int, Instruction] = field(default_factory=dict)
    shadow_of: dict[Reg, Reg] = field(default_factory=dict)
    shadow_regs: set[Reg] = field(default_factory=set)
    check_preds: set[Reg] = field(default_factory=set)
    findings: list[Finding] = field(default_factory=list)

    def _map_shadow(
        self, orig: Reg, shadow: Reg, where: Finding
    ) -> None:
        prev = self.shadow_of.get(orig)
        if prev is None:
            self.shadow_of[orig] = shadow
        elif prev != shadow:
            self.findings.append(where)
        self.shadow_regs.add(shadow)


def build_sphere_model(function: Function) -> SphereModel:
    """Reconstruct the duplication table and shadow map from role tags."""
    model = SphereModel(function)
    for _, _, insn in function.all_instructions():
        model.by_uid[insn.uid] = insn

    for block, idx, insn in function.all_instructions():
        if insn.role is Role.DUP:
            if insn.dup_of is None or insn.dup_of not in model.by_uid:
                model.findings.append(
                    Finding(
                        "replication-coverage",
                        Severity.ERROR,
                        f"replica {insn} has a dangling dup_of link",
                        function.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
                continue
            orig = model.by_uid[insn.dup_of]
            model.replicas_of.setdefault(orig.uid, []).append(insn)
            for o_reg, s_reg in zip(orig.writes(), insn.writes()):
                model._map_shadow(
                    o_reg,
                    s_reg,
                    Finding(
                        "shadow-isolation",
                        Severity.ERROR,
                        f"register {o_reg} maps to two different shadows "
                        f"({model.shadow_of.get(o_reg)} and {s_reg})",
                        function.name,
                        block.label,
                        idx,
                        insn.uid,
                    ),
                )
        elif insn.role is Role.SHADOW_COPY:
            if insn.srcs and insn.dests:
                model._map_shadow(
                    insn.srcs[0],
                    insn.dests[0],
                    Finding(
                        "shadow-isolation",
                        Severity.ERROR,
                        f"register {insn.srcs[0]} maps to two different "
                        f"shadows ({model.shadow_of.get(insn.srcs[0])} and "
                        f"{insn.dests[0]})",
                        function.name,
                        block.label,
                        idx,
                        insn.uid,
                    ),
                )
        elif insn.role is Role.CHECK and insn.opcode in CHECK_CMP_OPCODES:
            model.check_preds.update(insn.writes())

    # Source-side shadow pairs of replicas sharpen the map (a replica of
    # ``add d, a, b`` witnesses shadow(a) and shadow(b) too).
    for orig_uid, dups in model.replicas_of.items():
        orig = model.by_uid[orig_uid]
        for dup in dups:
            for o_reg, s_reg in zip(orig.reads(), dup.reads()):
                if o_reg != s_reg:
                    model._map_shadow(
                        o_reg,
                        s_reg,
                        Finding(
                            "shadow-isolation",
                            Severity.ERROR,
                            f"register {o_reg} maps to two different shadows "
                            f"({model.shadow_of.get(o_reg)} and {s_reg})",
                            function.name,
                        ),
                    )
    return model


class AvailableChecks(DataflowAnalysis):
    """Forward must-analysis: registers checked since their last definition.

    A check compare ``CMPNE/PNE p, r, shadow(r)`` *generates* the fact
    ``r``; any write to ``r`` or to ``shadow(r)`` *kills* it.  The meet is
    intersection, so a fact at a point means the check happened on **every**
    path — exactly the all-paths guarantee Algorithm 1's check placement is
    supposed to provide.
    """

    direction = Direction.FORWARD

    def __init__(self, model: SphereModel) -> None:
        self._model = model
        checked: set[Reg] = set()
        for reg in model.shadow_of:
            checked.add(reg)
        self._all_checked: Fact = frozenset(checked)
        # reverse map: shadow -> originals it shadows (kill on shadow write)
        self._shadowed_by: dict[Reg, list[Reg]] = {}
        for orig, shadow in model.shadow_of.items():
            self._shadowed_by.setdefault(shadow, []).append(orig)

    def boundary(self, function: Function) -> Fact:
        return frozenset()

    def initial(self, function: Function) -> Fact:
        return self._all_checked

    def meet(self, facts: list[Fact]) -> Fact:
        if not facts:
            return self._all_checked
        out = facts[0]
        for f in facts[1:]:
            out &= f
        return out

    def transfer_insn(self, insn: Instruction, fact: Fact) -> Fact:
        killed: set[Reg] = set()
        for w in insn.writes():
            if w in fact:
                killed.add(w)
            for orig in self._shadowed_by.get(w, ()):
                if orig in fact:
                    killed.add(orig)
        if killed:
            fact = fact - frozenset(killed)
        if insn.role is Role.CHECK and insn.opcode in CHECK_CMP_OPCODES:
            reg = self._checked_register(insn)
            if reg is not None:
                fact = fact | frozenset((reg,))
        return fact

    def _checked_register(self, insn: Instruction) -> Reg | None:
        """The original register a check compare guards, if well-formed."""
        if len(insn.srcs) != 2:
            return None
        reg, shadow = insn.srcs
        if self._model.shadow_of.get(reg) == shadow:
            return reg
        # tolerate swapped operand order (still a valid check of ``shadow``'s
        # original)
        if self._model.shadow_of.get(shadow) == reg:
            return shadow
        return None


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


def _eligible(insn: Instruction) -> bool:
    """Should step (i) have replicated this instruction?"""
    return insn.protectable


def check_replication_coverage(
    model: SphereModel, partial_protection: bool = False
) -> list[Finding]:
    """Algorithm 1 step (i): every eligible instruction has a replica."""
    findings: list[Finding] = []
    fn = model.function
    severity = Severity.WARNING if partial_protection else Severity.ERROR
    for block, idx, insn in fn.all_instructions():
        if not _eligible(insn):
            continue
        dups = model.replicas_of.get(insn.uid, [])
        if not dups:
            findings.append(
                Finding(
                    "replication-coverage",
                    severity,
                    f"eligible instruction has no replica: {insn}",
                    fn.name,
                    block.label,
                    idx,
                    insn.uid,
                )
            )
            continue
        if len(dups) > 1:
            findings.append(
                Finding(
                    "replication-coverage",
                    Severity.WARNING,
                    f"instruction replicated {len(dups)} times: {insn}",
                    fn.name,
                    block.label,
                    idx,
                    insn.uid,
                )
            )
        for dup in dups:
            if (
                dup.opcode is not insn.opcode
                or dup.imm != insn.imm
                or dup.targets != insn.targets
                or len(dup.srcs) != len(insn.srcs)
                or len(dup.dests) != len(insn.dests)
            ):
                findings.append(
                    Finding(
                        "replication-coverage",
                        Severity.ERROR,
                        f"replica {dup} is not structurally identical to "
                        f"its original {insn}",
                        fn.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
    return findings


def check_shadow_isolation(model: SphereModel) -> list[Finding]:
    """Algorithm 1 step (ii): the two streams touch disjoint register sets."""
    findings: list[Finding] = list(model.findings)
    fn = model.function
    shadow_regs = model.shadow_regs
    check_preds = model.check_preds

    # Architectural registers = everything the original stream writes.
    arch_regs: set[Reg] = set()
    for _, _, insn in fn.all_instructions():
        if insn.role in (Role.ORIG, Role.SPILL):
            arch_regs.update(insn.writes())

    for block, idx, insn in fn.all_instructions():
        if insn.role in (Role.ORIG, Role.SPILL):
            for r in insn.reads():
                if r in shadow_regs:
                    findings.append(
                        Finding(
                            "shadow-isolation",
                            Severity.ERROR,
                            f"original-stream instruction reads shadow "
                            f"register {r}: {insn}",
                            fn.name,
                            block.label,
                            idx,
                            insn.uid,
                        )
                    )
                if r in check_preds:
                    findings.append(
                        Finding(
                            "shadow-isolation",
                            Severity.ERROR,
                            f"original-stream instruction reads check "
                            f"predicate {r}: {insn}",
                            fn.name,
                            block.label,
                            idx,
                            insn.uid,
                        )
                    )
        elif insn.role is Role.DUP:
            for r in insn.writes():
                if r in arch_regs:
                    findings.append(
                        Finding(
                            "shadow-isolation",
                            Severity.ERROR,
                            f"replica writes architectural register {r}: "
                            f"{insn}",
                            fn.name,
                            block.label,
                            idx,
                            insn.uid,
                        )
                    )
            for r in insn.reads():
                if r not in shadow_regs:
                    findings.append(
                        Finding(
                            "shadow-isolation",
                            Severity.ERROR,
                            f"replica reads non-shadow register {r}: {insn}",
                            fn.name,
                            block.label,
                            idx,
                            insn.uid,
                        )
                    )
        elif insn.role is Role.SHADOW_COPY:
            for r in insn.writes():
                if r in arch_regs:
                    findings.append(
                        Finding(
                            "shadow-isolation",
                            Severity.ERROR,
                            f"shadow copy writes architectural register "
                            f"{r}: {insn}",
                            fn.name,
                            block.label,
                            idx,
                            insn.uid,
                        )
                    )
    return findings


def check_wiring(model: SphereModel, cfg: CFG | None = None) -> list[Finding]:
    """Compare/branch pairing: no orphan halves, correct handler target."""
    findings: list[Finding] = []
    fn = model.function
    cfg = cfg or CFG(fn)
    facts = solve(fn, ReachingDefs(), cfg)

    # Predicates some CHKBR actually consumes (to find dropped compares).
    consumed: set[Reg] = set()

    for block in fn.blocks():
        for idx, insn, fact in facts.instruction_facts(block.label):
            if insn.opcode is not Opcode.CHKBR:
                continue
            if insn.targets != (DETECT_LABEL,):
                findings.append(
                    Finding(
                        "check-wiring",
                        Severity.ERROR,
                        f"CHKBR targets {insn.targets}, not the fault "
                        f"handler {DETECT_LABEL!r}",
                        fn.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
            if insn.role is not Role.CHECK:
                findings.append(
                    Finding(
                        "check-wiring",
                        Severity.ERROR,
                        f"CHKBR without the check role: {insn}",
                        fn.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
            for pred in insn.reads():
                consumed.add(pred)
                defs = [d for d in fact if d[0] == pred]
                for _, def_uid in defs:
                    definer = model.by_uid.get(def_uid)
                    if definer is None or not (
                        definer.role is Role.CHECK
                        and definer.opcode in CHECK_CMP_OPCODES
                    ):
                        findings.append(
                            Finding(
                                "check-wiring",
                                Severity.ERROR,
                                f"CHKBR predicate {pred} may be defined by a "
                                f"non-check instruction "
                                f"({definer if definer else 'nothing'})",
                                fn.name,
                                block.label,
                                idx,
                                insn.uid,
                            )
                        )

    for block, idx, insn in fn.all_instructions():
        if insn.role is Role.CHECK and insn.opcode in CHECK_CMP_OPCODES:
            dest = insn.dests[0] if insn.dests else None
            if dest is not None and dest not in consumed:
                findings.append(
                    Finding(
                        "check-wiring",
                        Severity.ERROR,
                        f"check compare result {dest} never reaches a "
                        f"CHKBR: {insn}",
                        fn.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
    return findings


def check_coverage(
    model: SphereModel, cfg: CFG | None = None
) -> list[Finding]:
    """Algorithm 1 step (iii): all-paths shadow-check before every exit."""
    findings: list[Finding] = []
    fn = model.function
    cfg = cfg or CFG(fn)
    analysis = AvailableChecks(model)
    facts = solve(fn, analysis, cfg)

    for block in fn.blocks():
        for idx, insn, fact in facts.instruction_facts(block.label):
            if (
                insn.role is not Role.ORIG
                or insn.from_library
                or insn.opcode not in CONSUMER_OPCODES
            ):
                continue
            for reg in dict.fromkeys(insn.reads()):
                if reg in model.shadow_of:
                    if reg not in fact:
                        findings.append(
                            Finding(
                                "check-coverage",
                                Severity.ERROR,
                                f"register {reg} leaves the sphere of "
                                f"replication unchecked on some path: {insn}",
                                fn.name,
                                block.label,
                                idx,
                                insn.uid,
                            )
                        )
                else:
                    findings.append(
                        Finding(
                            "unshadowed-value",
                            Severity.INFO,
                            f"consumed register {reg} has no shadow "
                            f"(unprotected producer): {insn}",
                            fn.name,
                            block.label,
                            idx,
                            insn.uid,
                        )
                    )
    return findings


def check_duplicate_checks(model: SphereModel) -> list[Finding]:
    """Two checks of one register with no consumer in between are waste."""
    findings: list[Finding] = []
    fn = model.function
    analysis = AvailableChecks(model)
    for block in fn.blocks():
        # Block-local scan: available-and-unconsumed checked registers.
        pending: dict[Reg, int] = {}
        for idx, insn in enumerate(block.instructions):
            if insn.role is Role.CHECK and insn.opcode in CHECK_CMP_OPCODES:
                reg = analysis._checked_register(insn)
                if reg is not None:
                    if reg in pending:
                        findings.append(
                            Finding(
                                "duplicate-check",
                                Severity.WARNING,
                                f"register {reg} re-checked with no consumer "
                                f"since the check at index {pending[reg]}",
                                fn.name,
                                block.label,
                                idx,
                                insn.uid,
                            )
                        )
                    pending[reg] = idx
                continue
            if insn.opcode in CONSUMER_OPCODES:
                for r in insn.reads():
                    pending.pop(r, None)
            for w in insn.writes():
                pending.pop(w, None)
                for orig, shadow in model.shadow_of.items():
                    if shadow == w:
                        pending.pop(orig, None)
    return findings


def check_cluster_placement(
    function: Function, scheme: str, n_clusters: int
) -> list[Finding]:
    """Scheme placement audit, cross-checking schedule_check's home rule.

    Placement expectations come from the scheme's registered
    ``cluster_policy`` (:mod:`repro.schemes`): ``unified`` pins every
    instruction to the scheme's home cluster, ``role-split`` pins the
    redundant stream to cluster 1 and originals to 0, and ``adaptive``
    imposes only the universal single-home-per-register rule.
    """
    from repro.schemes import get_scheme_info

    info = get_scheme_info(scheme)
    findings: list[Finding] = []
    homes: dict[Reg, tuple[int, Instruction]] = {}
    for block, idx, insn in function.all_instructions():
        cluster = insn.cluster
        if cluster is None or not 0 <= cluster < n_clusters:
            findings.append(
                Finding(
                    "cluster-placement",
                    Severity.ERROR,
                    f"instruction has invalid cluster {cluster}: {insn}",
                    function.name,
                    block.label,
                    idx,
                    insn.uid,
                )
            )
            continue
        for d in insn.writes():
            prev = homes.get(d)
            if prev is not None and prev[0] != cluster:
                findings.append(
                    Finding(
                        "cluster-placement",
                        Severity.ERROR,
                        f"register {d} defined on clusters {prev[0]} and "
                        f"{cluster} (single-home rule): {insn}",
                        function.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
            else:
                homes[d] = (cluster, insn)
        if info.cluster_policy == "unified" and cluster != info.home_cluster:
            findings.append(
                Finding(
                    "cluster-placement",
                    Severity.ERROR,
                    f"{scheme.upper()} requires cluster {info.home_cluster}, "
                    f"got {cluster}: {insn}",
                    function.name,
                    block.label,
                    idx,
                    insn.uid,
                )
            )
        elif info.cluster_policy == "role-split":
            expected = 1 if insn.is_redundant else 0
            if cluster != expected:
                findings.append(
                    Finding(
                        "cluster-placement",
                        Severity.ERROR,
                        f"{scheme.upper()} expects "
                        f"{'redundant' if insn.is_redundant else 'original'} "
                        f"code on cluster {expected}, got {cluster}: {insn}",
                        function.name,
                        block.label,
                        idx,
                        insn.uid,
                    )
                )
    return findings


def check_noed_purity(function: Function) -> list[Finding]:
    """An unprotected binary must carry no redundant-stream code."""
    findings: list[Finding] = []
    for block, idx, insn in function.all_instructions():
        if insn.is_redundant or insn.opcode is Opcode.CHKBR:
            findings.append(
                Finding(
                    "noed-purity",
                    Severity.ERROR,
                    f"NOED binary contains {insn.role.value} code: {insn}",
                    function.name,
                    block.label,
                    idx,
                    insn.uid,
                )
            )
    return findings


def lint_function(
    function: Function,
    scheme: str,
    n_clusters: int,
    partial_protection: bool = False,
) -> list[Finding]:
    """Run every protection rule over one function; return all findings."""
    from repro.schemes import get_scheme_info

    if scheme not in _known_schemes():
        raise ValueError(f"unknown scheme {scheme!r}")
    info = get_scheme_info(scheme)
    findings: list[Finding] = []
    findings += check_cluster_placement(function, scheme, n_clusters)
    if not info.replicates:
        findings += check_noed_purity(function)
        return findings
    cfg = CFG(function)
    model = build_sphere_model(function)
    findings += check_replication_coverage(model, partial_protection)
    findings += check_shadow_isolation(model)
    findings += check_wiring(model, cfg)
    findings += check_coverage(model, cfg)
    findings += check_duplicate_checks(model)
    return findings
