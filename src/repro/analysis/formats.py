"""Render lint and prove reports as text, JSON or SARIF.

The SARIF output follows the 2.1.0 schema closely enough for standard
viewers (GitHub code scanning, VS Code SARIF viewer): one run, one driver
(``repro-lint`` for :class:`~repro.analysis.lint.LintReport`,
``repro-prove`` for :class:`~repro.analysis.coverage.CoverageReport`),
rule metadata from the owning module's rule table, and findings anchored
to logical locations (``function.block[index]``) because the IR has no
source files to point at.
"""

from __future__ import annotations

import json

from repro.analysis.coverage import COVERAGE_RULES, CoverageReport
from repro.analysis.lint import LintReport
from repro.analysis.protection import RULE_DESCRIPTIONS, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_SARIF_LEVEL = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def format_text(report: LintReport) -> str:
    """Human-readable summary, one finding per line, windows at the end."""
    lines = [
        f"lint {report.program} scheme={report.scheme} "
        f"machine={report.machine}"
    ]
    for f in sorted(
        report.findings, key=lambda f: (-f.severity.rank, f.rule, f.location)
    ):
        lines.append(
            f"  {f.severity.value.upper():7s} {f.rule}: {f.message} "
            f"[{f.location}]"
        )
    counts = report.counts()
    lines.append(
        "  findings: "
        + ", ".join(f"{n} {sev}" for sev, n in counts.items())
    )
    w = report.windows
    lines.append(
        f"  vulnerability windows: {w.n_defs} protected defs, "
        f"{w.n_unchecked} unchecked, mean {w.mean_window:.2f}, "
        f"weighted mean {w.weighted_mean_window:.2f}, max {w.max_window} "
        f"insns"
    )
    return "\n".join(lines)


def format_json(report: LintReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def format_sarif(report: LintReport) -> str:
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": desc},
        }
        for rule, desc in sorted(RULE_DESCRIPTIONS.items())
    ]
    results = []
    for f in report.findings:
        result: dict[str, object] = {
            "ruleId": f.rule,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": f.location,
                            "kind": "function",
                        }
                    ]
                }
            ],
        }
        if f.uid is not None:
            result["partialFingerprints"] = {"insnUid": str(f.uid)}
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "properties": {
                    "program": report.program,
                    "scheme": report.scheme,
                    "machine": report.machine,
                    "windows": report.windows.to_json(),
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


FORMATTERS = {
    "text": format_text,
    "json": format_json,
    "sarif": format_sarif,
}


def format_prove_text(report: CoverageReport) -> str:
    """Human-readable prover summary: per-model coverage, then findings."""
    lines = [f"prove scheme={report.scheme} machine={report.machine}"]
    for model, proof in report.proofs.items():
        counts = proof.counts()
        lines.append(
            f"  [{model}] static coverage {proof.static_coverage * 100:.1f}% "
            f"({proof.covered_weight}/{proof.total_weight} weighted) — "
            + ", ".join(f"{n} {verdict}" for verdict, n in counts.items())
        )
    for f in sorted(
        report.findings, key=lambda f: (-f.severity.rank, f.rule, f.location)
    ):
        lines.append(
            f"  {f.severity.value.upper():7s} {f.rule}: {f.message} "
            f"[{f.location}]"
        )
    counts = report.counts()
    lines.append(
        "  findings: " + ", ".join(f"{n} {sev}" for sev, n in counts.items())
    )
    return "\n".join(lines)


def format_prove_json(report: CoverageReport) -> str:
    return json.dumps(report.to_json(), indent=2, sort_keys=True)


def format_prove_sarif(report: CoverageReport) -> str:
    rules = [
        {
            "id": rule,
            "shortDescription": {"text": desc},
        }
        for rule, desc in sorted(COVERAGE_RULES.items())
    ]
    results = []
    for f in report.findings:
        result: dict[str, object] = {
            "ruleId": f.rule,
            "level": _SARIF_LEVEL[f.severity],
            "message": {"text": f.message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": f.location,
                            "kind": "function",
                        }
                    ]
                }
            ],
        }
        if f.uid is not None:
            result["partialFingerprints"] = {"insnUid": str(f.uid)}
        results.append(result)
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-prove",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rules,
                    }
                },
                "properties": {
                    "scheme": report.scheme,
                    "machine": report.machine,
                    "models": {
                        model: {
                            "static_coverage": proof.static_coverage,
                            "counts": proof.counts(),
                        }
                        for model, proof in report.proofs.items()
                    },
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2)


PROVE_FORMATTERS = {
    "text": format_prove_text,
    "json": format_prove_json,
    "sarif": format_prove_sarif,
}
