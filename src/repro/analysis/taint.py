"""Corruption-propagation (taint) analysis for the coverage prover.

One :class:`TaintAnalysis` instance models the consequences of **one
fault site**: the fact at a program point is the set of locations whose
value *may differ from the golden execution* because of a fault injected
at that site.  Locations are

* :class:`~repro.isa.registers.Reg` objects — a (physical or virtual)
  register holds a possibly-corrupt value;
* ``("fp", slot)`` — a register-allocator frame slot (``STOREFP``
  spilled a corrupt value there);
* :data:`MEM` — at least one addressable data-memory word may be corrupt
  (``STORE`` has no static address, so data memory is one cell);
* :data:`FP_ANY` — a store through a corrupt *address* may have smashed
  any frame slot, so per-slot strong updates are disabled.

The analysis is a forward may-problem on the existing
:func:`repro.analysis.dataflow.solve` framework (union meet, empty
boundary).  The seed is injected *through the transfer function*: the
fault model corrupts an instruction's destination after it commits
(:mod:`repro.ir.interp` applies ``FaultSpec`` post-commit), so the
transfer of the seed instruction unions its destinations into the
outgoing fact.  Seeding every execution of the site over-approximates the
single-visit fault of a real trial, which is sound for a may-analysis.

Soundness of the two non-obvious transfer rules — both rest on the
campaign precondition that the **golden run completes OK** (the injector
refuses to run otherwise), so every check compare that executes has equal
operands in the fault-free execution:

* **one-sided detector kill** — at a :meth:`detector <find_detectors>`
  check compare with exactly one tainted operand, either the operands
  differ (the same-block ``CHKBR`` is then guaranteed to fire before the
  block ends, and a fired check ends the run ``DETECTED`` — detection
  preempts any later store or branch), or they are equal, in which case
  the tainted operand equals the untainted one's golden value, which by
  golden-equality is its *own* golden value: the corruption is gone.
  Either way no continuing path carries the taint.
* **CHKBR pred kill** — any path that continues past a ``CHKBR`` had a
  false predicate, and the golden run's predicate there was also false,
  so the predicate provably holds its golden value afterwards.

Both rules only matter on paths without control divergence; any path
where taint reaches a branch predicate records an *escape*
(:class:`TaintEvents`) and the site is classified ``SDC_POSSIBLE``
anyway, where every measured outcome is admissible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.dataflow import EMPTY_FACT, Fact, _UnionMeet, solve
from repro.analysis.protection import CHECK_CMP_OPCODES
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode

#: Abstract token: some data-memory word may differ from golden.
MEM = "mem"

#: Abstract token: an unknown frame slot may differ from golden
#: (disables per-slot strong updates on ``STOREFP``).
FP_ANY = "fpany"

#: Roles that belong to the redundant stream *and* produce values (the
#: detector criterion requires the compared shadow to actually be
#: computed by redundant code — see :func:`find_detectors`).
_PRODUCER_ROLES = frozenset({Role.DUP, Role.SHADOW_COPY})


def find_detectors(function: Function) -> frozenset[int]:
    """Uids of check compares whose firing is *guaranteed* once executed.

    A check compare qualifies as a detector when

    1. it is a ``CHECK``-role ``CMPNE``/``PNE`` over two registers,
    2. a ``CHKBR`` reading its predicate appears **later in the same
       block**, with no redefinition of the predicate in between (a block
       executes straight-line once entered — the only early exits are
       other ``CHKBR``\\ s, which end the run detected, and traps, which
       end it as an exception — so the consuming ``CHKBR`` is guaranteed
       to execute), and
    3. at least one compared register is written by a redundant-stream
       producer (``DUP``/``SHADOW_COPY``) somewhere in the function — a
       compare whose shadow operand nothing computes compares against
       garbage and proves nothing — and
    4. neither compared register may derive from a register the function
       never defines (a ``drop-replica`` mutation leaves the rest of the
       dup chain reading an undefined value, so the compare's
       golden-equality guarantee is void).
    """
    redundant_defs: set[object] = set()
    for _, _, insn in function.all_instructions():
        if insn.role in _PRODUCER_ROLES:
            redundant_defs.update(insn.writes())

    contaminated = _contaminated_regs(function)
    detectors: set[int] = set()
    for block in function.blocks():
        insns = block.instructions
        for i, insn in enumerate(insns):
            if (
                insn.role is not Role.CHECK
                or insn.opcode not in CHECK_CMP_OPCODES
                or len(insn.srcs) != 2
                or not insn.dests
            ):
                continue
            if not (set(insn.srcs) & redundant_defs):
                continue
            if any(s in contaminated for s in insn.srcs):
                continue
            pred = insn.dests[0]
            for later in insns[i + 1 :]:
                if later.opcode is Opcode.CHKBR and later.srcs[0] == pred:
                    detectors.add(insn.uid)
                    break
                if pred in later.writes():
                    break
    return frozenset(detectors)


def _contaminated_regs(function: Function) -> set[object]:
    """Registers whose value may derive from an uninitialized read.

    A forward must-defined analysis finds reads a definition does not
    reach on every path; the closure then propagates through def-use
    (flow-insensitively — conservative is fine here).  Compiled programs
    define everything they read, so this is empty outside mutated or
    otherwise broken IR.
    """
    cfg = CFG(function)
    order = cfg.reverse_postorder()
    universe: set[object] = set()
    writes_of: dict[str, set[object]] = {}
    for block in function.blocks():
        w: set[object] = set()
        for insn in block.instructions:
            universe.update(insn.srcs)
            w.update(insn.writes())
        writes_of[block.label] = w
        universe.update(w)

    # IN[b] = registers definitely written on every path reaching b.
    in_facts: dict[str, set[object]] = {
        label: set() if label == cfg.entry_label else set(universe)
        for label in order
    }
    changed = True
    while changed:
        changed = False
        for label in order:
            if label != cfg.entry_label:
                preds = [p for p in cfg.preds.get(label, []) if p in in_facts]
                fact = set(universe)
                for p in preds:
                    fact &= in_facts[p] | writes_of[p]
                if fact != in_facts[label]:
                    in_facts[label] = fact
                    changed = True

    suspects: set[object] = set()
    for label in order:
        cur = set(in_facts[label])
        for insn in function.block(label).instructions:
            suspects.update(s for s in insn.srcs if s not in cur)
            cur.update(insn.writes())

    contaminated = set(suspects)
    changed = bool(contaminated)
    while changed:
        changed = False
        for _, _, insn in function.all_instructions():
            if any(s in contaminated for s in insn.srcs):
                for d in insn.writes():
                    if d not in contaminated:
                        contaminated.add(d)
                        changed = True
    return contaminated


class TaintAnalysis(_UnionMeet):
    """May-corruption of one fault site (see the module docstring).

    ``seed_uid`` taints the destinations of that instruction after its
    transfer (a register fault); ``entry_taint`` taints the entry
    boundary instead (the memory fault model corrupts state before/while
    the program runs anywhere).
    """

    def __init__(
        self,
        detectors: frozenset[int],
        seed_uid: int | None = None,
        entry_taint: Fact = EMPTY_FACT,
    ) -> None:
        self._detectors = detectors
        self._seed_uid = seed_uid
        self._entry_taint = entry_taint

    def boundary(self, function: Function) -> Fact:
        return self._entry_taint

    def transfer_insn(self, insn: Instruction, fact: Fact) -> Fact:
        if not fact and insn.uid != self._seed_uid:
            return fact  # nothing tainted and no seed here: fast path
        out = self._transfer(insn, fact)
        if insn.uid == self._seed_uid and insn.dests:
            # The fault corrupts the destination after commit, clobbering
            # whatever the transfer concluded about it.
            out = out | frozenset(insn.dests)
        return out

    def _transfer(self, insn: Instruction, fact: Fact) -> Fact:
        op = insn.opcode

        if op is Opcode.LOAD:
            tainted = insn.srcs[0] in fact or MEM in fact
            return self._write(fact, insn, tainted)
        if op is Opcode.LOADFP:
            tainted = ("fp", insn.imm) in fact or FP_ANY in fact
            return self._write(fact, insn, tainted)
        if op is Opcode.STORE:
            addr, value = insn.srcs
            if addr in fact:
                # Wild store: any data word or frame slot may be smashed.
                return fact | frozenset((MEM, FP_ANY))
            if value in fact:
                return fact | frozenset((MEM,))
            return fact
        if op is Opcode.STOREFP:
            slot = ("fp", insn.imm)
            if insn.srcs[0] in fact:
                return fact | frozenset((slot,))
            # Strong update: an untainted value is the golden value, so
            # the slot now provably matches golden — unless a wild store
            # may have aliased it (FP_ANY stays regardless).
            return fact - frozenset((slot,)) if slot in fact else fact
        if op is Opcode.CHKBR:
            # Continuing past a CHKBR proves the predicate false — its
            # golden value (the golden run never fires checks).
            return (
                fact - frozenset((insn.srcs[0],))
                if insn.srcs[0] in fact
                else fact
            )
        if insn.uid in self._detectors:
            tainted_ops = [s for s in insn.srcs if s in fact]
            if len(tainted_ops) == 1:
                # One-sided check: fires (run ends detected) or proves
                # the operand golden.  The predicate is false on every
                # continuing path, i.e. golden, so the dest is clean too.
                return fact - frozenset((tainted_ops[0], *insn.dests))
            # Two-sided (both streams corrupt, possibly identically): the
            # compare may pass on equal-but-wrong values — operands stay
            # tainted.  The predicate itself may still fire spuriously,
            # so it is tainted until the same-block CHKBR consumes it.
            return self._write(fact, insn, bool(tainted_ops))

        # Default: destinations are corrupt iff any source is.
        return self._write(fact, insn, any(s in fact for s in insn.srcs))

    @staticmethod
    def _write(fact: Fact, insn: Instruction, tainted: bool) -> Fact:
        dests = insn.dests
        if not dests:
            return fact
        if tainted:
            return fact | frozenset(dests)
        if any(d in fact for d in dests):
            return fact - frozenset(dests)
        return fact


@dataclass(frozen=True)
class TaintEvent:
    """One observable contact between taint and the outside world."""

    #: ``out-escape`` / ``branch-escape`` / ``trap`` / ``check``.
    kind: str
    block: str
    index: int
    uid: int
    instruction: str


@dataclass
class TaintEvents:
    """Every event of one site's taint, bucketed by consequence."""

    #: Taint reached an ``OUT`` value or a ``BRT``/``BRF`` predicate:
    #: silent corruption or control divergence cannot be ruled out.
    escapes: list[TaintEvent]
    #: Taint reached a detector compare operand or a ``CHKBR`` predicate:
    #: a check can fire on the corruption.
    checks: list[TaintEvent]
    #: Taint reached a ``DIV``/``REM`` divisor or a memory address: the
    #: run may end in an architectural exception.
    traps: list[TaintEvent]


def propagate(
    function: Function,
    detectors: frozenset[int],
    cfg: CFG | None = None,
    seed_uid: int | None = None,
    entry_taint: Fact = EMPTY_FACT,
) -> TaintEvents:
    """Solve one site's taint problem and collect its events.

    Events are gathered by replaying the transfer inside every reachable
    block (``instruction_facts``), using the fact holding immediately
    *before* each instruction — a fault corrupts its destination after
    commit, so the seed instruction itself consumes clean inputs.
    """
    cfg = cfg or CFG(function)
    analysis = TaintAnalysis(
        detectors, seed_uid=seed_uid, entry_taint=entry_taint
    )
    facts = solve(function, analysis, cfg)

    seed_block: str | None = None
    if seed_uid is not None:
        for block in function.blocks():
            if any(i.uid == seed_uid for i in block.instructions):
                seed_block = block.label
                break

    events = TaintEvents(escapes=[], checks=[], traps=[])
    for label in cfg.reverse_postorder():
        if (
            not facts.entry[label]
            and not facts.exit[label]
            and label != seed_block
        ):
            # Taint neither enters nor survives this block, and it does
            # not originate here either (the seed block must be replayed
            # even when a same-block check kills the taint before the
            # block ends): nothing to replay.
            continue
        for idx, insn, fact in facts.instruction_facts(label):
            if not fact:
                continue
            op = insn.opcode
            if op is Opcode.OUT:
                if insn.srcs[0] in fact:
                    events.escapes.append(
                        _event("out-escape", label, idx, insn)
                    )
            elif op in (Opcode.BRT, Opcode.BRF):
                if insn.srcs[0] in fact:
                    events.escapes.append(
                        _event("branch-escape", label, idx, insn)
                    )
            elif op is Opcode.CHKBR:
                if insn.srcs[0] in fact:
                    events.checks.append(_event("check", label, idx, insn))
            elif insn.uid in detectors:
                if any(s in fact for s in insn.srcs):
                    events.checks.append(_event("check", label, idx, insn))
            if op in (Opcode.LOAD, Opcode.STORE) and insn.srcs[0] in fact:
                events.traps.append(_event("trap", label, idx, insn))
            elif (
                op in (Opcode.DIV, Opcode.REM)
                and insn.imm is None
                and insn.srcs[1] in fact
            ):
                events.traps.append(_event("trap", label, idx, insn))
    return events


def _event(kind: str, label: str, idx: int, insn: Instruction) -> TaintEvent:
    return TaintEvent(
        kind=kind, block=label, index=idx, uid=insn.uid, instruction=str(insn)
    )
