"""Reusable forward/backward dataflow framework over the CFG.

Before this module existed, every dataflow computation in the repo was
hand-rolled: :mod:`repro.ir.liveness` hard-coded backward liveness, the IR
verifier hard-coded a "definitely defined" forward pass, and the protection
linter would have needed a third copy.  This module factors the common
machinery out once:

* an analysis declares its *direction*, its *meet* (union for may-problems,
  intersection for must-problems), its *boundary* fact, and a per-instruction
  *transfer* function over immutable ``frozenset`` facts;
* :func:`solve` iterates the block-level equations to a fixed point in
  (reverse) postorder and returns per-block entry/exit facts;
* :meth:`BlockFacts.instruction_facts` replays the transfer function inside a
  block, yielding the fact holding immediately *before* each instruction —
  the granularity use-site queries (verifier, linter) need.

Three concrete analyses ship here because several subsystems share them:

* :class:`MustDefined` — registers definitely defined on every path (the
  verifier's use-before-def check);
* :class:`ReachingDefs` — which definitions (``(reg, uid)`` pairs) may reach
  a point; :func:`def_use_chains` derives use -> defs chains from it;
* :class:`LiveVars` — classic backward liveness,
  :func:`repro.ir.liveness.compute_liveness` is now a thin wrapper over it.

The protection linter (:mod:`repro.analysis.protection`) builds its
"available shadow-check" must-analysis on the same base class.

This module deliberately imports only :mod:`repro.ir` / :mod:`repro.isa`
so that IR-layer modules (the verifier, liveness) can depend on it without
import cycles.
"""

from __future__ import annotations

import abc
import enum
from typing import Any, Iterator

from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.isa.instruction import Instruction
from repro.isa.registers import Reg


class Direction(enum.Enum):
    """Which way facts propagate along CFG edges."""

    FORWARD = "forward"
    BACKWARD = "backward"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Direction.{self.name}"


#: A definition site: the defined register plus the defining instruction's
#: uid (process-unique, so one fact set can mix definitions of many
#: registers without ambiguity).
DefSite = tuple[Reg, int]

#: Every shipped analysis uses immutable register/def-site sets as facts.
#: The element type varies per analysis (``Reg``, ``DefSite``), hence Any.
Fact = frozenset[Any]

EMPTY_FACT: Fact = frozenset()


class DataflowAnalysis(abc.ABC):
    """One dataflow problem over ``frozenset`` facts.

    Subclasses fix the direction and meet, and express the whole transfer
    through :meth:`transfer_insn` — the framework composes the per-block
    transfer and handles iteration order and convergence.
    """

    direction: Direction = Direction.FORWARD

    @abc.abstractmethod
    def boundary(self, function: Function) -> Fact:
        """Fact at the entry (forward) or exit (backward) boundary."""

    @abc.abstractmethod
    def initial(self, function: Function) -> Fact:
        """Optimistic initial fact for interior blocks (the lattice top)."""

    @abc.abstractmethod
    def meet(self, facts: list[Fact]) -> Fact:
        """Combine facts flowing in from several CFG edges."""

    @abc.abstractmethod
    def transfer_insn(self, insn: Instruction, fact: Fact) -> Fact:
        """Fact after ``insn`` (forward) / before it (backward)."""

    def transfer_block(self, block: BasicBlock, fact: Fact) -> Fact:
        """Apply the per-instruction transfer across a whole block."""
        insns = block.instructions
        if self.direction is Direction.BACKWARD:
            insns = insns[::-1]
        for insn in insns:
            fact = self.transfer_insn(insn, fact)
        return fact


class BlockFacts:
    """Solved per-block facts of one analysis over one function.

    ``entry[label]``/``exit[label]`` are the facts at block entry and exit in
    *program* order regardless of analysis direction (for a backward problem
    ``entry`` is what the analysis computed flowing out of the block top).
    """

    def __init__(
        self,
        analysis: DataflowAnalysis,
        function: Function,
        entry: dict[str, Fact],
        exit_: dict[str, Fact],
    ) -> None:
        self.analysis = analysis
        self.function = function
        self.entry = entry
        self.exit = exit_

    def instruction_facts(self, label: str) -> Iterator[tuple[int, Instruction, Fact]]:
        """Yield ``(index, insn, fact)`` with the fact holding *at* ``insn``.

        For a forward analysis the fact is the one immediately before the
        instruction executes; for a backward analysis it is the fact
        immediately after it (i.e. what is demanded downstream).
        """
        analysis = self.analysis
        block = self.function.block(label)
        if analysis.direction is Direction.FORWARD:
            fact = self.entry[label]
            for idx, insn in enumerate(block.instructions):
                yield idx, insn, fact
                fact = analysis.transfer_insn(insn, fact)
        else:
            fact = self.exit[label]
            rev: list[tuple[int, Instruction, Fact]] = []
            for idx in range(len(block.instructions) - 1, -1, -1):
                insn = block.instructions[idx]
                rev.append((idx, insn, fact))
                fact = analysis.transfer_insn(insn, fact)
            yield from reversed(rev)


def solve(
    function: Function,
    analysis: DataflowAnalysis,
    cfg: CFG | None = None,
) -> BlockFacts:
    """Iterate ``analysis`` over ``function`` to a fixed point.

    Unreachable blocks keep their optimistic initial fact: no execution
    reaches them, so any answer is sound, and the clients that care
    (the verifier) reject unreachable code separately.
    """
    cfg = cfg or CFG(function)
    order = cfg.reverse_postorder()
    forward = analysis.direction is Direction.FORWARD
    if not forward:
        order = order[::-1]

    boundary = analysis.boundary(function)
    top = analysis.initial(function)
    # state[label]: the fact at the block's *input* side for this direction.
    state: dict[str, Fact] = {b.label: top for b in function.blocks()}
    out_state: dict[str, Fact] = {b.label: top for b in function.blocks()}

    reachable = set(order)
    boundary_labels = (
        {cfg.entry_label}
        if forward
        else {lb for lb in order if not [s for s in cfg.succs[lb] if s in reachable]}
    )

    changed = True
    while changed:
        changed = False
        for label in order:
            if forward:
                edges = [p for p in cfg.preds[label] if p in reachable]
            else:
                edges = [s for s in cfg.succs[label] if s in reachable]
            incoming = [out_state[e] for e in edges]
            if label in boundary_labels:
                incoming.append(boundary)
            fact = analysis.meet(incoming) if incoming else top
            new_out = analysis.transfer_block(function.block(label), fact)
            if fact != state[label] or new_out != out_state[label]:
                state[label] = fact
                out_state[label] = new_out
                changed = True

    if forward:
        entry, exit_ = state, out_state
    else:
        entry, exit_ = out_state, state
    return BlockFacts(analysis, function, entry, exit_)


# ---------------------------------------------------------------------------
# Concrete analyses
# ---------------------------------------------------------------------------


class _UnionMeet(DataflowAnalysis):
    """Base for may-problems: union meet, empty top/boundary."""

    def boundary(self, function: Function) -> Fact:
        return EMPTY_FACT

    def initial(self, function: Function) -> Fact:
        return EMPTY_FACT

    def meet(self, facts: list[Fact]) -> Fact:
        return frozenset().union(*facts) if facts else EMPTY_FACT


class MustDefined(DataflowAnalysis):
    """Registers definitely defined on *every* path from the entry.

    Forward, intersection meet.  A use of a register not in the incoming
    fact may execute before any definition — the verifier's use-before-def
    condition.
    """

    direction = Direction.FORWARD

    def __init__(self, function: Function) -> None:
        regs: set[Reg] = set()
        for _, _, insn in function.all_instructions():
            regs.update(insn.reads())
            regs.update(insn.writes())
        self._all_regs: Fact = frozenset(regs)

    def boundary(self, function: Function) -> Fact:
        return EMPTY_FACT

    def initial(self, function: Function) -> Fact:
        return self._all_regs

    def meet(self, facts: list[Fact]) -> Fact:
        if not facts:
            return self._all_regs
        out = facts[0]
        for f in facts[1:]:
            out &= f
        return out

    def transfer_insn(self, insn: Instruction, fact: Fact) -> Fact:
        writes = insn.writes()
        return fact | frozenset(writes) if writes else fact


class ReachingDefs(_UnionMeet):
    """Which definition sites ``(reg, uid)`` may reach each point.

    Forward, union meet.  ``uid`` is the defining instruction's process-wide
    unique id, so chains survive any amount of instruction cloning as long
    as queries use the same IR snapshot.
    """

    direction = Direction.FORWARD

    def transfer_insn(self, insn: Instruction, fact: Fact) -> Fact:
        writes = insn.writes()
        if not writes:
            return fact
        written = set(writes)
        kept = frozenset(d for d in fact if d[0] not in written)
        return kept | frozenset((r, insn.uid) for r in writes)


class LiveVars(_UnionMeet):
    """Classic backward liveness: registers whose value may still be read."""

    direction = Direction.BACKWARD

    def transfer_insn(self, insn: Instruction, fact: Fact) -> Fact:
        fact = fact - frozenset(insn.writes())
        reads = insn.reads()
        return fact | frozenset(reads) if reads else fact


#: A use site: (block label, instruction index, instruction uid, register).
UseSite = tuple[str, int, int, Reg]


def def_use_chains(
    function: Function, cfg: CFG | None = None
) -> dict[UseSite, frozenset[DefSite]]:
    """Map every register use to the definition sites that may reach it."""
    facts = solve(function, ReachingDefs(), cfg)
    chains: dict[UseSite, frozenset[DefSite]] = {}
    for block in function.blocks():
        for idx, insn, fact in facts.instruction_facts(block.label):
            for r in insn.reads():
                chains[(block.label, idx, insn.uid, r)] = frozenset(
                    d for d in fact if d[0] == r
                )
    return chains


def undefined_uses(
    function: Function, cfg: CFG | None = None
) -> list[tuple[str, int, Instruction, Reg]]:
    """Every use that may execute before any definition of its register.

    Returns ``(block label, index, insn, reg)`` tuples in layout order; empty
    means the function is use-before-def clean on all reachable paths.
    """
    cfg = cfg or CFG(function)
    facts = solve(function, MustDefined(function), cfg)
    reachable = cfg.reachable()
    bad: list[tuple[str, int, Instruction, Reg]] = []
    for block in function.blocks():
        if block.label not in reachable:
            continue
        for idx, insn, fact in facts.instruction_facts(block.label):
            for r in insn.reads():
                if r not in fact:
                    bad.append((block.label, idx, insn, r))
    return bad
