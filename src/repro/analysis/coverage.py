"""Static fault-coverage prover: per-site detectability verdicts.

For every fault site a registered fault model can hit, decide — by taint
propagation over the scheduled IR (:mod:`repro.analysis.taint`) — whether
a fault there is provably caught, provably harmless, or possibly a silent
corruption:

``DETECTED``
    The corruption contacts a check (detector compare or ``CHKBR``) and
    never reaches an ``OUT`` value or a conditional-branch predicate
    unchecked.  The measured outcome can only be benign (logical
    masking), detected, or an architectural exception.
``MASKED``
    Nothing ever reads the corrupt value.  The measured outcome must be
    benign.
``SDC_POSSIBLE``
    Some path carries the corruption to an output, a branch decision, or
    an unchecked trap.  Anything may happen.

The verdicts are *sound over-approximations*: a site's measured outcome
must fall inside :data:`repro.faults.classify.SITE_ADMISSIBLE` for its
verdict.  ``benchmarks/bench_coverage.py`` enforces exactly that by
attributing single-fault campaign trials back to their static site via
:meth:`FaultInjector.site_of <repro.faults.injector.FaultInjector.site_of>`
(:func:`cross_validate` below).

Site enumeration mirrors the fault models' sampling domains
(:data:`MODEL_SITE_KINDS`): register-corrupting models (``reg-bit``,
``burst``, ``opcode``) hit every instruction that writes a register —
the same population as the injector's ``n_dest_sites``; the ``cf`` model
hits every ``BRT``/``BRF``/``JMP``; the ``mem`` model is a single
program-level pseudo-site analyzed with whole-memory entry taint.  Sites
are weighted by the dynamic visit count of their block (when a golden
profile is supplied) so the weighted static coverage is directly
comparable with a campaign's measured coverage.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.analysis.protection import Finding, Severity
from repro.analysis.taint import (
    FP_ANY,
    MEM,
    TaintEvent,
    TaintEvents,
    find_detectors,
    propagate,
)
from repro.errors import SimError
from repro.faults.classify import SITE_ADMISSIBLE, Outcome, SiteClass
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.opcodes import Opcode

#: Which static site population each registered fault model draws from.
MODEL_SITE_KINDS: dict[str, str] = {
    "reg-bit": "reg",
    "burst": "reg",
    "opcode": "reg",
    "cf": "cf",
    "mem": "mem",
}

#: ``(block, index)`` key of the memory model's program-level pseudo-site.
MEM_SITE: tuple[str, int] = ("", -1)

#: Rules the prover can report, for formatters and SARIF metadata.
COVERAGE_RULES: dict[str, str] = {
    "site-sdc-possible": (
        "a register fault at this site can reach an output, branch "
        "decision, or unchecked trap without meeting a check"
    ),
    "cf-exposure": (
        "control-flow faults (wrong branch target) are outside the sphere "
        "of replication and cannot be statically ruled out"
    ),
    "mem-exposure": (
        "data-memory faults bypass the sphere of replication (the paper "
        "assumes ECC memory); corruption can reach outputs unchecked"
    ),
}


@dataclass(frozen=True)
class FaultSite:
    """One statically enumerable injection point."""

    function: str
    block: str
    index: int
    uid: int
    opcode: str
    role: str
    protectable: bool
    #: Dynamic executions of the enclosing block in the golden run (or a
    #: static 1/0 reachability weight when no profile is available).
    weight: int

    @property
    def key(self) -> tuple[str, int]:
        return (self.block, self.index)


@dataclass
class SiteVerdict:
    """A site, its verdict, and the evidence behind it."""

    site: FaultSite
    verdict: SiteClass
    #: Shortest block path from the site to its first escape (empty for
    #: non-escaping sites).
    witness: tuple[str, ...] = ()
    #: Rendering of the first escaping instruction, if any.
    escape: str | None = None
    n_checks: int = 0
    n_traps: int = 0

    def to_json(self) -> dict[str, Any]:
        rec: dict[str, Any] = {
            "function": self.site.function,
            "block": self.site.block,
            "index": self.site.index,
            "uid": self.site.uid,
            "opcode": self.site.opcode,
            "role": self.site.role,
            "weight": self.site.weight,
            "verdict": self.verdict.value,
            "checks": self.n_checks,
            "traps": self.n_traps,
        }
        if self.witness:
            rec["witness"] = list(self.witness)
        if self.escape is not None:
            rec["escape"] = self.escape
        return rec


@dataclass
class ModelProof:
    """All verdicts for one fault model's site population."""

    model: str
    site_kind: str
    verdicts: list[SiteVerdict] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        c = Counter(v.verdict.value for v in self.verdicts)
        return {sc.value: c.get(sc.value, 0) for sc in SiteClass}

    @property
    def total_weight(self) -> int:
        return sum(v.site.weight for v in self.verdicts)

    @property
    def covered_weight(self) -> int:
        return sum(
            v.site.weight
            for v in self.verdicts
            if v.verdict is not SiteClass.SDC_POSSIBLE
        )

    @property
    def static_coverage(self) -> float:
        """Weighted fraction of sites provably not silently corrupting.

        A guaranteed lower bound on the campaign's measured coverage
        (``1 - SDC - timeout``): detected sites can only measure
        benign/detected/exception and masked sites only benign, all of
        which count toward measured coverage.
        """
        total = self.total_weight
        return self.covered_weight / total if total else 1.0

    def by_key(self) -> dict[tuple[str, int], SiteVerdict]:
        """Index main-function verdicts by ``(block, index)``."""
        return {v.site.key: v for v in self.verdicts}

    def to_json(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "site_kind": self.site_kind,
            "counts": self.counts(),
            "total_weight": self.total_weight,
            "static_coverage": self.static_coverage,
            "sites": [v.to_json() for v in self.verdicts],
        }


@dataclass
class CoverageReport:
    """Program-level prover output (the ``repro prove`` payload)."""

    scheme: str
    machine: str | None
    proofs: dict[str, ModelProof]
    findings: list[Finding]

    def counts(self) -> dict[str, int]:
        c = Counter(f.severity.value for f in self.findings)
        return {sev.value: c.get(sev.value, 0) for sev in Severity}

    @property
    def max_severity(self) -> Severity | None:
        return max(
            (f.severity for f in self.findings),
            key=lambda s: s.rank,
            default=None,
        )

    def exit_code(self, fail_on: Severity = Severity.ERROR) -> int:
        worst = self.max_severity
        return 1 if worst is not None and worst.rank >= fail_on.rank else 0

    def to_json(self) -> dict[str, Any]:
        return {
            "scheme": self.scheme,
            "machine": self.machine,
            "counts": self.counts(),
            "models": {m: p.to_json() for m, p in self.proofs.items()},
            "findings": [f.to_json() for f in self.findings],
        }


# ---------------------------------------------------------------------------
# proving


def _classify(events: TaintEvents) -> SiteClass:
    if events.escapes:
        return SiteClass.SDC_POSSIBLE
    if events.traps and not events.checks:
        # The run may trap (exception) but no check ever contacts the
        # corruption — neither DETECTED's nor MASKED's contract holds.
        return SiteClass.SDC_POSSIBLE
    if events.checks:
        return SiteClass.DETECTED
    return SiteClass.MASKED


def _shortest_path(
    cfg: CFG, src: str, dst: str
) -> tuple[str, ...]:
    """Shortest block path ``src -> dst`` (BFS over CFG successors)."""
    if src == dst:
        return (src,)
    prev: dict[str, str] = {}
    queue = deque([src])
    while queue:
        label = queue.popleft()
        for succ in cfg.succs.get(label, ()):
            if succ in prev or succ == src:
                continue
            prev[succ] = label
            if succ == dst:
                path = [dst]
                while path[-1] != src:
                    path.append(prev[path[-1]])
                return tuple(reversed(path))
            queue.append(succ)
    return (src, dst)  # dst unreachable from src: degenerate witness


def _verdict_for(
    site: FaultSite, events: TaintEvents, cfg: CFG, origin: str
) -> SiteVerdict:
    verdict = _classify(events)
    witness: tuple[str, ...] = ()
    escape: str | None = None
    if verdict is SiteClass.SDC_POSSIBLE:
        first: TaintEvent = (events.escapes or events.traps)[0]
        witness = _shortest_path(cfg, origin, first.block)
        escape = f"{first.kind} @ {first.block}[{first.index}]: {first.instruction}"
    return SiteVerdict(
        site=site,
        verdict=verdict,
        witness=witness,
        escape=escape,
        n_checks=len(events.checks),
        n_traps=len(events.traps),
    )


def _block_weights(
    function: Function, cfg: CFG, weights: Mapping[str, int] | None, is_main: bool
) -> dict[str, int]:
    if weights is not None:
        return {b.label: int(weights.get(b.label, 0)) for b in function.blocks()}
    if not is_main:
        # No CALL opcode: only main executes.  Non-entry functions are
        # proven for linter parity but carry no coverage weight.
        return {b.label: 0 for b in function.blocks()}
    reachable = cfg.reachable()
    return {b.label: 1 if b.label in reachable else 0 for b in function.blocks()}


def prove_function(
    function: Function,
    site_kind: str,
    weights: Mapping[str, int] | None = None,
    is_main: bool = True,
) -> list[SiteVerdict]:
    """Prove every ``site_kind`` site of one function.

    ``weights`` maps block label to golden visit count; omitted blocks
    weigh 0 (never executed).  Without a profile, statically reachable
    blocks of ``main`` weigh 1.
    """
    cfg = CFG(function)
    detectors = find_detectors(function)
    block_weight = _block_weights(function, cfg, weights, is_main)
    verdicts: list[SiteVerdict] = []

    if site_kind == "mem":
        site = FaultSite(
            function=function.name,
            block=MEM_SITE[0],
            index=MEM_SITE[1],
            uid=-1,
            opcode="*memory*",
            role="-",
            protectable=False,
            weight=1,
        )
        events = propagate(
            function, detectors, cfg, entry_taint=frozenset((MEM, FP_ANY))
        )
        verdicts.append(_verdict_for(site, events, cfg, function.entry.label))
        return verdicts

    for block, idx, insn in function.all_instructions():
        if site_kind == "reg":
            if not insn.dests:
                continue
            site = FaultSite(
                function=function.name,
                block=block.label,
                index=idx,
                uid=insn.uid,
                opcode=insn.opcode.name,
                role=insn.role.value,
                protectable=insn.protectable,
                weight=block_weight[block.label],
            )
            events = propagate(function, detectors, cfg, seed_uid=insn.uid)
            verdicts.append(_verdict_for(site, events, cfg, block.label))
        elif site_kind == "cf":
            if insn.opcode not in (Opcode.BRT, Opcode.BRF, Opcode.JMP):
                continue
            site = FaultSite(
                function=function.name,
                block=block.label,
                index=idx,
                uid=insn.uid,
                opcode=insn.opcode.name,
                role=insn.role.value,
                protectable=insn.protectable,
                weight=block_weight[block.label],
            )
            # A wrong-target transfer diverges from the golden path at
            # once; no scheme in the repo checks control-flow signatures,
            # so nothing can be ruled out (weight-0 sites never execute).
            verdict = (
                SiteClass.MASKED
                if site.weight == 0
                else SiteClass.SDC_POSSIBLE
            )
            verdicts.append(
                SiteVerdict(
                    site=site,
                    verdict=verdict,
                    witness=(block.label,) if verdict is not SiteClass.MASKED else (),
                    escape=(
                        f"cf @ {block.label}[{idx}]: {insn}"
                        if verdict is not SiteClass.MASKED
                        else None
                    ),
                )
            )
        else:
            raise ValueError(f"unknown site kind {site_kind!r}")
    return verdicts


def prove_program(
    program: Program,
    scheme: str,
    fault_models: Sequence[str] | None = None,
    weights: Mapping[str, int] | None = None,
    machine: str | None = None,
) -> CoverageReport:
    """Prove every function of ``program`` under each fault model.

    ``weights`` (golden block visit counts) applies to ``main`` — pass
    :meth:`FaultInjector.visit_counts` for campaign-comparable numbers.
    """
    from repro.schemes import get_scheme_info

    info = get_scheme_info(scheme)
    models = list(fault_models) if fault_models else list(MODEL_SITE_KINDS)
    unknown = [m for m in models if m not in MODEL_SITE_KINDS]
    if unknown:
        raise ValueError(f"no site population for fault model(s) {unknown}")

    proofs: dict[str, ModelProof] = {}
    kind_cache: dict[str, list[SiteVerdict]] = {}
    for model in models:
        kind = MODEL_SITE_KINDS[model]
        if kind not in kind_cache:
            verdicts: list[SiteVerdict] = []
            for function in program.functions():
                is_main = function is program.main
                verdicts.extend(
                    prove_function(
                        function,
                        kind,
                        weights=weights if is_main else None,
                        is_main=is_main,
                    )
                )
            kind_cache[kind] = verdicts
        proofs[model] = ModelProof(
            model=model, site_kind=kind, verdicts=kind_cache[kind]
        )

    findings = _collect_findings(proofs, replicates=info.replicates)
    report = CoverageReport(
        scheme=scheme, machine=machine, proofs=proofs, findings=findings
    )
    _publish_metrics(report)
    return report


def prove_compiled(
    compiled: Any,
    fault_models: Sequence[str] | None = None,
    weights: Mapping[str, int] | None = None,
) -> CoverageReport:
    """Prove a :class:`~repro.pipeline.CompiledProgram` (post-regalloc IR)."""
    machine = (
        f"{compiled.machine.n_clusters}x{compiled.machine.issue_width}w "
        f"d{compiled.machine.inter_cluster_delay}"
    )
    return prove_program(
        compiled.program,
        compiled.scheme.value,
        fault_models=fault_models,
        weights=weights,
        machine=machine,
    )


def _collect_findings(
    proofs: Mapping[str, ModelProof], replicates: bool
) -> list[Finding]:
    """Turn verdicts into linter-style findings.

    Only register-fault proofs produce per-site findings: an
    ``SDC_POSSIBLE`` verdict on a site the scheme claims to protect (a
    protectable original under a replicating scheme) is a WARNING, other
    exposed register sites are INFO.  The ``cf``/``mem`` exposures are
    structural (no scheme here covers them) and collapse into one INFO
    finding each.
    """
    findings: list[Finding] = []
    seen_reg = False
    for proof in proofs.values():
        if proof.site_kind == "reg":
            if seen_reg:
                continue  # reg models share one site population
            seen_reg = True
            for v in proof.verdicts:
                if v.verdict is not SiteClass.SDC_POSSIBLE or v.site.weight == 0:
                    continue
                severity = (
                    Severity.WARNING
                    if replicates and v.site.protectable
                    else Severity.INFO
                )
                findings.append(
                    Finding(
                        rule="site-sdc-possible",
                        severity=severity,
                        message=(
                            f"fault in {v.site.opcode} dest can escape "
                            f"unchecked ({v.escape}; "
                            f"path {' -> '.join(v.witness)})"
                        ),
                        function=v.site.function,
                        block=v.site.block,
                        index=v.site.index,
                        uid=v.site.uid,
                    )
                )
        elif proof.site_kind == "cf":
            exposed = sum(
                1
                for v in proof.verdicts
                if v.verdict is SiteClass.SDC_POSSIBLE
            )
            if exposed:
                findings.append(
                    Finding(
                        rule="cf-exposure",
                        severity=Severity.INFO,
                        message=(
                            f"{exposed} control-transfer site(s) exposed to "
                            "wrong-target faults (no control-flow signatures)"
                        ),
                        function="-",
                    )
                )
        elif proof.site_kind == "mem":
            exposed = [
                v
                for v in proof.verdicts
                if v.verdict is SiteClass.SDC_POSSIBLE
            ]
            if exposed:
                findings.append(
                    Finding(
                        rule="mem-exposure",
                        severity=Severity.INFO,
                        message=(
                            "data-memory faults can reach outputs unchecked "
                            "(sphere of replication assumes ECC memory)"
                        ),
                        function="-",
                    )
                )
    findings.sort(key=lambda f: -f.severity.rank)
    return findings


def _publish_metrics(report: CoverageReport) -> None:
    """Mirror the report into the telemetry registry (no-op when disabled)."""
    from repro.obs import get_telemetry

    tel = get_telemetry()
    if not tel.enabled:
        return
    for model, proof in report.proofs.items():
        tel.gauge(
            f"analysis.coverage.static.{model}", proof.static_coverage
        )
        for verdict, n in proof.counts().items():
            if n:
                tel.count(f"analysis.coverage.sites.{model}.{verdict}", n)
    for severity, n in report.counts().items():
        if n:
            tel.count(f"analysis.coverage.findings.{severity}", n)


# ---------------------------------------------------------------------------
# differential cross-validation


@dataclass(frozen=True)
class Violation:
    """A measured outcome the static verdict does not admit."""

    model: str
    block: str
    index: int
    verdict: SiteClass
    outcome: Outcome
    dyn_index: int

    def __str__(self) -> str:
        return (
            f"[{self.model}] site {self.block}[{self.index}] statically "
            f"{self.verdict.value} but trial at dyn {self.dyn_index} "
            f"measured {self.outcome.value}"
        )


@dataclass
class ValidationResult:
    """Outcome of attributing measured trials to static verdicts."""

    model: str
    n_trials: int
    skipped: int
    violations: list[Violation]
    #: Measured outcome tallies bucketed by the hit site's verdict.
    tallies: dict[SiteClass, Counter[Outcome]]

    @property
    def sound(self) -> bool:
        return not self.violations

    @property
    def measured_coverage(self) -> float:
        """``1 - SDC - timeout`` over the attributed trials."""
        total = sum(sum(c.values()) for c in self.tallies.values())
        if not total:
            return 1.0
        bad = sum(
            c.get(Outcome.SDC, 0) + c.get(Outcome.TIMEOUT, 0)
            for c in self.tallies.values()
        )
        return 1.0 - bad / total

    def to_json(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "trials": self.n_trials,
            "skipped": self.skipped,
            "sound": self.sound,
            "measured_coverage": self.measured_coverage,
            "violations": [str(v) for v in self.violations],
            "tallies": {
                sc.value: {o.value: n for o, n in c.items()}
                for sc, c in self.tallies.items()
            },
        }


def cross_validate(
    injector: Any,
    proof: ModelProof,
    n_trials: int,
    seed: int,
) -> ValidationResult:
    """Attribute ``n_trials`` single-fault trials to their static sites.

    Each trial samples one fault from the proof's model, runs it, maps
    its dynamic index back to the static ``(block, index)`` site via
    :meth:`FaultInjector.site_of`, and checks the measured outcome
    against :data:`SITE_ADMISSIBLE` for that site's verdict.  Uses a
    fresh RNG stream (never the frozen campaign stream).
    """
    from repro.utils.rng import make_rng

    if injector.fault_model != proof.model:
        raise ValueError(
            f"injector runs {injector.fault_model!r} "
            f"but proof is for {proof.model!r}"
        )
    index = proof.by_key()
    rng = make_rng(seed, "coverage-xval", proof.model)
    tallies: dict[SiteClass, Counter[Outcome]] = {
        sc: Counter() for sc in SiteClass
    }
    violations: list[Violation] = []
    skipped = 0
    for _ in range(n_trials):
        try:
            fault = injector.model.sample(injector, rng)
        except SimError:
            skipped += 1
            continue
        key = (
            MEM_SITE
            if proof.site_kind == "mem"
            else injector.site_of(fault.dyn_index)
        )
        verdict = index.get(key)
        if verdict is None:
            # A sampled site the static enumeration missed is itself a
            # soundness bug — surface it as a violation, not a skip.
            outcome = injector.run_trial((fault,))
            violations.append(
                Violation(
                    model=proof.model,
                    block=key[0],
                    index=key[1],
                    verdict=SiteClass.MASKED,
                    outcome=outcome,
                    dyn_index=fault.dyn_index,
                )
            )
            continue
        outcome = injector.run_trial((fault,))
        tallies[verdict.verdict][outcome] += 1
        if outcome not in SITE_ADMISSIBLE[verdict.verdict]:
            violations.append(
                Violation(
                    model=proof.model,
                    block=key[0],
                    index=key[1],
                    verdict=verdict.verdict,
                    outcome=outcome,
                    dyn_index=fault.dyn_index,
                )
            )
    return ValidationResult(
        model=proof.model,
        n_trials=n_trials,
        skipped=skipped,
        violations=violations,
        tallies=tallies,
    )
