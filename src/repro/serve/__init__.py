"""Fault-tolerant campaign service: job queue, retries, resume-on-restart.

``repro serve`` exposes compile / inject / sweep jobs over a JSON HTTP
API (stdlib only).  The package splits into:

* :mod:`repro.serve.store` — durable job records + explicit state machine,
* :mod:`repro.serve.queue` — bounded multi-tenant priority queue (429 +
  Retry-After backpressure),
* :mod:`repro.serve.runner` — the single-job executor, watchdog deadlines,
  cooperative cancellation, graceful degradation to partial results,
* :mod:`repro.serve.daemon` — :class:`ServeApp` and the HTTP front-end,
* :mod:`repro.serve.client` — a urllib client for scripts and tests.

See ``docs/serve.md`` for the API and the failure-mode contract.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import ServeApp, ServeHTTPServer, ServerThread, make_server
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.runner import JobInterrupted, JobRunner, Watchdog
from repro.serve.store import (
    JOB_KINDS,
    Job,
    JobError,
    JobState,
    JobStore,
)

__all__ = [
    "JOB_KINDS",
    "Job",
    "JobError",
    "JobInterrupted",
    "JobQueue",
    "JobRunner",
    "JobState",
    "JobStore",
    "QueueFull",
    "ServeApp",
    "ServeClient",
    "ServeClientError",
    "ServeHTTPServer",
    "ServerThread",
    "Watchdog",
    "make_server",
]
