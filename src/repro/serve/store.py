"""Durable job store for the campaign service: one JSON file per job.

Layout under the service state directory (default ``results/serve/``,
override with ``REPRO_SERVE_DIR``)::

    results/serve/
        jobs/<job_id>.json          # the job record (state machine below)
        checkpoints/<job_id>.jsonl  # campaign shard checkpoint (inject jobs)
        events/<job_id>.jsonl       # per-job structured event log

Every job record is written atomically (temp + ``os.replace``) on every
state change, so a ``kill -9`` at any instant leaves either the previous
or the next complete record on disk — never a torn one.  A record that is
nevertheless unreadable (disk corruption, a foreign file) is quarantined
as ``<file>.bad`` with one warning and skipped, mirroring the run-ledger
and eval-cache behaviour.

The job state machine::

    queued ──► running ──► checkpointing ──► done | failed | cancelled
      │           │              │
      ▼           └──────────────┴──► queued      (requeue: daemon restart
    cancelled                                      or graceful shutdown)

``checkpointing`` is the finalization window — the runner is flushing the
job's result/partial state; it exists so a crash there is distinguishable
from a crash mid-execution (both requeue, and the campaign checkpoint
makes the replay cheap either way).  Terminal states never transition.
:meth:`JobStore.recover` is the resume-on-restart half: it rescans the
store, requeues every interrupted job, and leaves terminal jobs untouched.
"""

from __future__ import annotations

import json
import logging
import os
import secrets
import threading
import time
from dataclasses import asdict, dataclass, field
from enum import Enum
from pathlib import Path

from repro.errors import ReproError

logger = logging.getLogger(__name__)

#: Default service state directory, relative to the working directory.
DEFAULT_SERVE_DIR = Path("results") / "serve"


class JobError(ReproError):
    """Job lookup, validation, or persistence failure."""


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    CHECKPOINTING = "checkpointing"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"


#: States a job never leaves.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

#: The legal state machine; anything else is a bug, not a request.
ALLOWED_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset({JobState.RUNNING, JobState.CANCELLED}),
    JobState.RUNNING: frozenset({JobState.CHECKPOINTING, JobState.QUEUED}),
    JobState.CHECKPOINTING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.QUEUED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}

#: Job kinds the runner knows how to execute.
JOB_KINDS = ("inject", "compile", "sweep")


@dataclass
class Job:
    """One unit of service work, durably mirrored to ``jobs/<id>.json``."""

    id: str
    kind: str
    spec: dict
    client: str = "anonymous"
    priority: int = 10  #: lower runs sooner; ties break by submission order
    seq: int = 0  #: monotonic submission sequence (survives restarts)
    state: JobState = JobState.QUEUED
    attempts: int = 0  #: times the runner started executing this job
    restarts: int = 0  #: times a daemon restart requeued this job
    created_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    incomplete: bool = False  #: degraded: result is partial but usable
    result: dict | None = None
    note: str | None = None  #: last lifecycle annotation (requeue reason...)

    def transition(self, new: JobState) -> None:
        """Advance the state machine; illegal moves raise :class:`JobError`."""
        if new not in ALLOWED_TRANSITIONS[self.state]:
            raise JobError(
                f"job {self.id}: illegal transition "
                f"{self.state.value} -> {new.value}"
            )
        self.state = new

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json(self) -> dict:
        data = asdict(self)
        data["state"] = self.state.value
        return data

    @classmethod
    def from_json(cls, data: dict) -> Job:
        state = JobState(data["state"])
        kwargs = {k: data[k] for k in cls.__dataclass_fields__ if k in data}
        kwargs["state"] = state
        job = cls(**kwargs)
        if job.kind not in JOB_KINDS:
            raise JobError(f"job {job.id}: unknown kind {job.kind!r}")
        return job

    def summary(self) -> dict:
        """The compact listing shape (``GET /jobs``)."""
        return {
            "id": self.id,
            "kind": self.kind,
            "client": self.client,
            "priority": self.priority,
            "state": self.state.value,
            "attempts": self.attempts,
            "restarts": self.restarts,
            "incomplete": self.incomplete,
            "created_at": self.created_at,
            "error": self.error,
        }


class JobStore:
    """Reader/writer for the durable job directory."""

    def __init__(self, root: str | Path | None = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_SERVE_DIR") or DEFAULT_SERVE_DIR
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.checkpoints_dir = self.root / "checkpoints"
        self.events_dir = self.root / "events"
        for d in (self.jobs_dir, self.checkpoints_dir, self.events_dir):
            d.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._next_seq = self._scan_next_seq()

    def _scan_next_seq(self) -> int:
        top = 0
        for path in self.jobs_dir.glob("*.json"):
            try:
                top = max(top, int(json.loads(path.read_text()).get("seq", 0)))
            except (OSError, ValueError, TypeError):
                continue  # quarantined on the next load_all()
        return top + 1

    # -- paths -----------------------------------------------------------------
    def job_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.json"

    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.jsonl"

    def events_path(self, job_id: str) -> Path:
        return self.events_dir / f"{job_id}.jsonl"

    # -- creating / writing ----------------------------------------------------
    def new_job(
        self,
        kind: str,
        spec: dict,
        client: str = "anonymous",
        priority: int = 10,
    ) -> Job:
        """Mint a new (unsaved) job with a unique id and the next seq."""
        if kind not in JOB_KINDS:
            raise JobError(
                f"unknown job kind {kind!r} (expected one of {JOB_KINDS})"
            )
        if not isinstance(spec, dict):
            raise JobError("job spec must be a JSON object")
        with self._lock:
            seq = self._next_seq
            self._next_seq += 1
        return Job(
            id=f"j{seq:06d}-{secrets.token_hex(3)}",
            kind=kind,
            spec=spec,
            client=str(client),
            priority=int(priority),
            seq=seq,
        )

    def save(self, job: Job) -> None:
        """Atomically persist ``job`` (temp + ``os.replace``)."""
        path = self.job_path(job.id)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        try:
            with open(tmp, "w") as f:
                json.dump(job.to_json(), f, indent=2, sort_keys=True)
                f.write("\n")
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)

    # -- reading ---------------------------------------------------------------
    def _read_job(self, path: Path) -> Job | None:
        """Load one record, quarantining corruption (warn once, ``.bad``)."""
        try:
            return Job.from_json(json.loads(path.read_text()))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, TypeError, KeyError, JobError) as exc:
            logger.warning(
                "corrupt job record %s: %s — quarantining as %s.bad and "
                "skipping", path, exc, path.name,
            )
            try:
                os.replace(path, path.with_name(f"{path.name}.bad"))
            except OSError as rexc:  # pragma: no cover - fs permissions
                logger.warning("could not quarantine %s: %s", path, rexc)
            return None

    def load(self, job_id: str) -> Job:
        job = self._read_job(self.job_path(job_id))
        if job is None:
            raise JobError(f"no job {job_id!r} in {self.jobs_dir}")
        return job

    def load_all(self) -> list[Job]:
        """Every readable job, oldest first (by submission seq)."""
        jobs = []
        for path in sorted(self.jobs_dir.glob("*.json")):
            job = self._read_job(path)
            if job is not None:
                jobs.append(job)
        jobs.sort(key=lambda j: j.seq)
        return jobs

    # -- resume-on-restart -----------------------------------------------------
    def recover(self) -> list[Job]:
        """Requeue every job a previous daemon left interrupted.

        Jobs found ``running`` or ``checkpointing`` were in flight when the
        previous process died; they go back to ``queued`` (restart counter
        bumped, note set) and their campaign checkpoints make the re-run
        resume from the last completed shard.  Returns every job now
        queued, in scheduling order (priority, then submission seq) — the
        caller feeds them straight into the queue.
        """
        queued: list[Job] = []
        for job in self.load_all():
            if job.state in (JobState.RUNNING, JobState.CHECKPOINTING):
                prior = job.state.value
                job.transition(JobState.QUEUED)
                job.restarts += 1
                job.note = f"requeued-on-restart (was {prior})"
                self.save(job)
                logger.warning(
                    "job %s was %s at shutdown; requeued (restart #%d)",
                    job.id, prior, job.restarts,
                )
                queued.append(job)
            elif job.state is JobState.QUEUED:
                queued.append(job)
        queued.sort(key=lambda j: (j.priority, j.seq))
        return queued
