"""Bounded, multi-tenant priority queue feeding the job runner.

Admission control is the backpressure half of the service contract: a full
queue refuses new work *at submission time* with :class:`QueueFull` — the
HTTP layer turns that into ``429 Too Many Requests`` plus a
``Retry-After`` estimate — instead of accepting unbounded work and melting
down later.  ``max_per_client`` additionally caps any single tenant's
queued jobs so one noisy client cannot monopolize the backlog.

Scheduling order is ``(priority, submission seq)``: lower priority numbers
run sooner, ties run first-come-first-served.  The retry estimate is the
backlog depth times an exponential moving average of recent job durations
(the runner feeds completions back via :meth:`note_duration`), clamped to
at least one second.
"""

from __future__ import annotations

import heapq
import threading

from repro.errors import ReproError
from repro.serve.store import Job


class QueueFull(ReproError):
    """Submission refused by backpressure; carries the retry estimate."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobQueue:
    """Thread-safe bounded priority queue of :class:`Job` objects."""

    def __init__(
        self,
        limit: int = 16,
        max_per_client: int = 0,
        initial_job_s: float = 30.0,
    ) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = limit
        self.max_per_client = max_per_client  #: 0 = no per-client cap
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, str]] = []  # (priority, seq, id)
        self._jobs: dict[str, Job] = {}
        self._avg_job_s = initial_job_s

    def __len__(self) -> int:
        with self._cond:
            return len(self._jobs)

    def depth_for(self, client: str) -> int:
        with self._cond:
            return sum(1 for j in self._jobs.values() if j.client == client)

    # -- backpressure ----------------------------------------------------------
    def retry_after_s(self) -> float:
        """Seconds a refused client should wait before resubmitting."""
        with self._cond:
            return max(1.0, round(len(self._jobs) * self._avg_job_s, 1))

    def ensure_capacity(self, client: str) -> None:
        """Raise :class:`QueueFull` if a submission by ``client`` must wait.

        Checked *before* the job record is persisted, so a refused job
        leaves no trace.  The check and the later :meth:`push` are not one
        atomic step — concurrent submitters can overshoot the limit by at
        most the number of in-flight HTTP threads, which is the usual
        bounded-queue tolerance.
        """
        with self._cond:
            if len(self._jobs) >= self.limit:
                raise QueueFull(
                    f"queue is full ({len(self._jobs)}/{self.limit} jobs)",
                    self.retry_after_s(),
                )
            if self.max_per_client:
                mine = sum(
                    1 for j in self._jobs.values() if j.client == client
                )
                if mine >= self.max_per_client:
                    raise QueueFull(
                        f"client {client!r} already has {mine} queued job(s) "
                        f"(per-client cap {self.max_per_client})",
                        self.retry_after_s(),
                    )

    def note_duration(self, seconds: float) -> None:
        """Fold one completed job's wall time into the retry estimate."""
        with self._cond:
            self._avg_job_s = 0.7 * self._avg_job_s + 0.3 * max(seconds, 0.0)

    # -- queue operations ------------------------------------------------------
    def push(self, job: Job, force: bool = False) -> None:
        """Enqueue ``job``; ``force`` bypasses capacity (recovery, requeues).

        Recovered and requeued jobs were already admitted once — dropping
        them at restart because fresh traffic filled the queue would turn
        a crash into data loss, so they always fit.
        """
        with self._cond:
            if not force and len(self._jobs) >= self.limit:
                raise QueueFull(
                    f"queue is full ({len(self._jobs)}/{self.limit} jobs)",
                    self.retry_after_s(),
                )
            if job.id in self._jobs:
                return  # idempotent re-push
            self._jobs[job.id] = job
            heapq.heappush(self._heap, (job.priority, job.seq, job.id))
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> Job | None:
        """Dequeue the best job, waiting up to ``timeout`` for one."""
        with self._cond:
            job = self._pop_locked()
            if job is not None or timeout is None:
                return job
            self._cond.wait(timeout)
            return self._pop_locked()

    def _pop_locked(self) -> Job | None:
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.pop(job_id, None)
            if job is not None:  # stale entries = jobs removed (cancelled)
                return job
        return None

    def remove(self, job_id: str) -> Job | None:
        """Withdraw a queued job (cancellation); ``None`` if already gone.

        Lazy deletion: the heap entry stays behind and is skipped by
        :meth:`pop` — cheaper than re-heapifying, and correct because
        ``_jobs`` is the membership authority.
        """
        with self._cond:
            return self._jobs.pop(job_id, None)

    def queued_ids(self) -> list[str]:
        with self._cond:
            return sorted(
                self._jobs,
                key=lambda jid: (self._jobs[jid].priority, self._jobs[jid].seq),
            )
