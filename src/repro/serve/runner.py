"""Job execution: runner thread, watchdog, handlers, graceful degradation.

The runner executes one job at a time off the queue (the parallelism lives
*inside* a job — campaign shards fan out over the worker pool), walking
each through the durable state machine and persisting every transition.
Execution is separated from reporting in the MEEK sense: handlers only
compute and return a result dict; all state, persistence, and event-log
bookkeeping happens here, so a handler failure can never wedge the
service.

Failure modes and what happens:

* **worker crash** — ``parallel_map`` retries the shard with jittered
  backoff; an exhausted shard degrades the campaign to a ``partial``
  result, which lands as ``done`` + ``incomplete`` (never ``failed``);
* **hung worker** — the per-shard deadline (``shard_timeout``) kills the
  pool and retries on the same budget (see
  :func:`repro.parallel.parallel_map`);
* **job over deadline** — the watchdog requests cooperative cancellation;
  the completed shards are merged from the job's checkpoint into a
  ``done`` + ``incomplete`` partial result;
* **client cancel** — same cooperative path, terminal state ``cancelled``
  (completed shards stay checkpointed; the partial counts ride along);
* **handler exception** — terminal state ``failed`` with the error string;
* **daemon death** — nothing to do here: every completed shard is already
  in the checkpoint and the job record says ``running``, so the next
  daemon's :meth:`~repro.serve.store.JobStore.recover` requeues it and the
  re-run resumes bit-identically.

Cancellation is *cooperative*: the cancel flag is observed at campaign
heartbeats (shard granularity under a pool), which is exactly the place
where all completed work is already durable — "checkpoint before exiting"
costs nothing because the checkpoint is written shard-by-shard.
"""

from __future__ import annotations

import contextlib
import json
import logging
import threading
import time
from dataclasses import dataclass
from typing import Callable, ContextManager

from repro.chaos import chaos_point
from repro.machine.config import MachineConfig
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry, get_telemetry, set_telemetry
from repro.parallel import WorkerPool
from repro.pipeline import Scheme, compile_program
from repro.serve.queue import JobQueue
from repro.serve.store import Job, JobState, JobStore

logger = logging.getLogger(__name__)


class JobInterrupted(Exception):
    """Cooperative interruption of a running job (cancel/deadline/shutdown)."""

    def __init__(self, reason: str, requeue: bool = False) -> None:
        super().__init__(reason)
        self.reason = reason
        self.requeue = requeue


@dataclass
class RunContext:
    """What a handler may use: resources plus the cancellation probe."""

    store: JobStore
    jobs: int  #: worker processes available to this job
    shard_timeout: float | None  #: per-shard watchdog deadline (seconds)
    check: Callable[[], None]  #: raises JobInterrupted when flagged


def _machine_for(spec: dict) -> MachineConfig:
    return MachineConfig(
        issue_width=int(spec.get("issue", 2)),
        inter_cluster_delay=int(spec.get("delay", 1)),
    )


def _compile_spec(spec: dict):
    from repro.cli import _load_program

    program = _load_program(spec["program"])
    scheme = Scheme(spec.get("scheme", "casted"))
    return compile_program(program, scheme, _machine_for(spec)), scheme


# -- handlers ------------------------------------------------------------------
def _handle_inject(job: Job, ctx: RunContext) -> dict:
    """Fault-injection campaign; always checkpointed, always resumable."""
    from repro.faults.injector import FaultInjector
    from repro.sim.executor import VLIWExecutor

    spec = job.spec
    trials = int(spec.get("trials", 200))
    seed = int(spec.get("seed", 2013))
    compiled, scheme = _compile_spec(spec)
    ctx.check()
    reference = None
    if scheme is not Scheme.NOED:
        from repro.cli import _load_program

        noed = compile_program(
            _load_program(spec["program"]), Scheme.NOED, _machine_for(spec)
        )
        reference = VLIWExecutor(noed).run().dyn_instructions
    injector = FaultInjector(
        compiled.program,
        mem_words=compiled.mem_words,
        frame_words=compiled.frame_words,
        fault_model=spec.get("fault_model", "reg-bit"),
        backend=spec.get("backend"),
        snapshots=bool(spec.get("snapshots", True)),
    )
    ctx.check()

    def on_progress(_event) -> None:
        chaos_point("daemon.heartbeat")
        ctx.check()

    res = injector.run_campaign(
        trials,
        seed,
        reference_dyn=reference,
        progress=on_progress,
        heartbeat=int(spec.get("heartbeat", 25)),
        jobs=ctx.jobs,
        checkpoint=ctx.store.checkpoint_path(job.id),
        resume=True,  # a fresh job simply finds no prior shards
        shard_timeout=ctx.shard_timeout,
        batch=spec.get("batch"),
    )
    result = {
        "kind": "inject",
        "trials": res.trials,
        "requested_trials": trials,
        "counts": {o.value: n for o, n in sorted(
            res.counts.items(), key=lambda kv: kv[0].value
        )},
        "faults": res.total_faults_injected,
        "coverage": round(res.coverage, 6),
        "golden_dyn": res.golden_dyn,
        "fault_model": res.fault_model,
        "incomplete": res.partial,
        "lost_trials": res.lost_trials,
    }
    if res.detections_timed:
        result["mean_detection_latency"] = round(res.mean_detection_latency, 2)
    return result


def _handle_compile(job: Job, ctx: RunContext) -> dict:
    """Compile-and-report: the cheap job kind (also the smoke-test one)."""
    compiled, scheme = _compile_spec(job.spec)
    ctx.check()
    stats = compiled.stats
    return {
        "kind": "compile",
        "scheme": scheme.value,
        "instructions": stats.n_instructions,
        "code_growth": round(stats.code_growth, 4),
        "spilled": stats.n_spilled,
        "static_cycles": stats.static_cycles,
        "incomplete": False,
    }


def _handle_sweep(job: Job, ctx: RunContext) -> dict:
    """Slowdown grid; lost grid points degrade to ``null`` + incomplete."""
    from repro.cli import _sweep_cell_worker
    from repro.parallel import parallel_map

    spec = job.spec
    issues = [int(v) for v in spec.get("issues", [1, 2, 4])]
    delays = [int(v) for v in spec.get("delays", [1, 2, 4])]
    grid = [(iw, d) for iw in issues for d in delays]
    tasks = [(spec["program"], iw, d, spec.get("backend")) for iw, d in grid]
    lost: list[int] = []

    def on_result(_i, _r) -> None:
        ctx.check()

    cells = parallel_map(
        _sweep_cell_worker,
        tasks,
        jobs=ctx.jobs,
        on_result=on_result,
        retries=2,
        retry_backoff=0.5,
        timeout=ctx.shard_timeout,
        on_failure=lambda i, exc: lost.append(i),
    )
    ctx.check()
    points = [
        {"issue": iw, "delay": d, "cycles": cells[i]}
        for i, (iw, d) in enumerate(grid)
    ]
    return {
        "kind": "sweep",
        "points": points,
        "incomplete": bool(lost),
        "lost_points": len(lost),
    }


HANDLERS: dict[str, Callable[[Job, RunContext], dict]] = {
    "inject": _handle_inject,
    "compile": _handle_compile,
    "sweep": _handle_sweep,
}


def checkpoint_partial(path) -> dict | None:
    """Merge a campaign checkpoint's completed shards into a partial result.

    Used when a job is stopped before ``run_campaign`` could return (job
    deadline, client cancel): the durable shard records *are* the result
    so far.  Tolerates a torn trailing line the same way resume does.
    """
    try:
        lines = path.read_text().splitlines()
    except OSError:
        return None
    counts: dict[str, int] = {}
    trials = faults = 0
    for line in lines[1:]:  # line 0 is the campaign header
        if not line.strip():
            continue
        try:
            rec = json.loads(line)
            shard_counts = {str(k): int(v) for k, v in rec["counts"].items()}
            shard_trials = int(rec["trials"])
            shard_faults = int(rec["faults"])
        except (ValueError, KeyError, TypeError):
            break  # torn tail — everything before it is intact
        for k, v in shard_counts.items():
            counts[k] = counts.get(k, 0) + v
        trials += shard_trials
        faults += shard_faults
    if not trials:
        return None
    return {
        "kind": "inject",
        "trials": trials,
        "counts": dict(sorted(counts.items())),
        "faults": faults,
        "incomplete": True,
    }


class JobRunner(threading.Thread):
    """Pops jobs off the queue and executes them, one at a time."""

    def __init__(
        self,
        store: JobStore,
        queue: JobQueue,
        jobs: int = 1,
        shard_timeout: float | None = None,
        default_deadline_s: float | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        super().__init__(name="serve-runner", daemon=True)
        self.store = store
        self.queue = queue
        self.jobs = jobs
        self.shard_timeout = shard_timeout
        self.default_deadline_s = default_deadline_s
        self.metrics = metrics
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        #: (job, monotonic deadline or None) while a job is executing.
        self._current: tuple[Job, float | None] | None = None
        #: job_id -> (reason, requeue) cancellation requests.
        self._cancel: dict[str, tuple[str, bool]] = {}
        #: One persistent worker pool for the daemon's whole lifetime —
        #: spawned lazily by the first parallel job, reused by every later
        #: one (a serve daemon is the textbook case for pool reuse: many
        #: jobs, often over the same few workloads, so worker-resident
        #: caches stay hot across jobs too).
        self._pool: WorkerPool | None = None

    # -- control surface (called from HTTP / watchdog / shutdown threads) ------
    def current_job(self) -> tuple[Job, float | None] | None:
        with self._lock:
            return self._current

    def request_cancel(
        self, job_id: str, reason: str = "cancelled", requeue: bool = False
    ) -> bool:
        """Flag ``job_id`` for cooperative interruption; True if it is current."""
        with self._lock:
            self._cancel[job_id] = (reason, requeue)
            return (
                self._current is not None and self._current[0].id == job_id
            )

    def stop(self, requeue_current: bool = True) -> None:
        """Stop after the current job yields (graceful-shutdown half)."""
        self._stopping.set()
        with self._lock:
            current = self._current
        if requeue_current and current is not None:
            self.request_cancel(
                current[0].id, reason="daemon-shutdown", requeue=True
            )

    def _count(self, name: str, n: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.count(name, n)

    def _pool_context(self) -> ContextManager:
        """The ambient-pool scope a job's handler executes under.

        Serial runners (``jobs <= 1``) never create a pool.  Parallel
        runners lazily construct one :class:`WorkerPool` and *activate* it
        around each job — workers spawn on the first map that needs them
        and survive until :meth:`close_pool` at daemon shutdown.
        """
        if self.jobs <= 1:
            return contextlib.nullcontext()
        if self._pool is None:
            self._pool = WorkerPool(self.jobs)
        return self._pool.activate()

    def close_pool(self) -> None:
        """Shut the persistent pool down (daemon shutdown path)."""
        if self._pool is not None:
            self._pool.shutdown()

    def _check_for(self, job: Job) -> Callable[[], None]:
        def check() -> None:
            with self._lock:
                flagged = self._cancel.get(job.id)
            if flagged is not None:
                raise JobInterrupted(flagged[0], requeue=flagged[1])

        return check

    # -- main loop -------------------------------------------------------------
    def run(self) -> None:  # pragma: no cover - exercised via daemon tests
        while not self._stopping.is_set():
            job = self.queue.pop(timeout=0.25)
            if job is not None:
                self.execute(job)
        # Drain nothing further: queued jobs stay durable for the next run.
        self.close_pool()

    def execute(self, job: Job) -> None:
        """Walk one job through the state machine, persisting every step."""
        base_tel = get_telemetry()
        job_events = EventLog(path=self.store.events_path(job.id))
        job_tel = Telemetry(metrics=self.metrics, events=job_events)
        deadline_s = job.spec.get("deadline_s", self.default_deadline_s)
        deadline = (
            time.monotonic() + float(deadline_s)
            if deadline_s is not None
            else None
        )
        t0 = time.monotonic()
        job.transition(JobState.RUNNING)
        job.attempts += 1
        job.started_at = time.time()
        self.store.save(job)
        with self._lock:
            self._current = (job, deadline)
        set_telemetry(job_tel)
        job_tel.event(
            "job-start", job=job.id, job_kind=job.kind, client=job.client,
            attempt=job.attempts, restarts=job.restarts, jobs=self.jobs,
        )
        chaos_point("daemon.job-start")
        try:
            ctx = RunContext(
                store=self.store,
                jobs=self.jobs,
                shard_timeout=self.shard_timeout,
                check=self._check_for(job),
            )
            with self._pool_context():
                result = HANDLERS[job.kind](job, ctx)
        except JobInterrupted as exc:
            self._finish_interrupted(job, job_tel, exc)
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            logger.exception("job %s failed", job.id)
            job.transition(JobState.CHECKPOINTING)
            self.store.save(job)
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
            job.transition(JobState.FAILED)
            self.store.save(job)
            job_tel.event("job-failed", job=job.id, error=job.error)
            self._count("serve.jobs_failed")
        else:
            job.transition(JobState.CHECKPOINTING)
            self.store.save(job)
            job.result = result
            job.incomplete = bool(result.get("incomplete"))
            job.finished_at = time.time()
            job.transition(JobState.DONE)
            self.store.save(job)
            job_tel.event(
                "job-done", job=job.id, incomplete=job.incomplete,
                wall_s=round(time.monotonic() - t0, 3),
            )
            self._count("serve.jobs_done")
            if job.incomplete:
                self._count("serve.jobs_degraded")
        finally:
            with self._lock:
                self._current = None
                self._cancel.pop(job.id, None)
            set_telemetry(base_tel)
            job_events.close()
            self.queue.note_duration(time.monotonic() - t0)

    def _finish_interrupted(
        self, job: Job, tel: Telemetry, exc: JobInterrupted
    ) -> None:
        """Route a cooperative interruption to its terminal (or requeued) state."""
        job.transition(JobState.CHECKPOINTING)
        job.note = exc.reason
        self.store.save(job)
        if exc.requeue:
            # Graceful shutdown: back to the durable queue, untouched
            # checkpoint, next daemon resumes it.
            job.transition(JobState.QUEUED)
            self.store.save(job)
            tel.event("job-requeued", job=job.id, reason=exc.reason)
            self._count("serve.jobs_requeued")
            return
        partial = None
        if job.kind == "inject":
            partial = checkpoint_partial(self.store.checkpoint_path(job.id))
        job.result = partial
        job.finished_at = time.time()
        if exc.reason == "deadline":
            # Degrade, don't error: the completed shards are a usable
            # partial result and the incomplete marker is the contract.
            job.incomplete = True
            job.transition(JobState.DONE)
            tel.event("job-deadline", job=job.id)
            self._count("serve.jobs_deadline")
        else:
            job.incomplete = partial is not None
            job.transition(JobState.CANCELLED)
            tel.event("job-cancelled", job=job.id, reason=exc.reason)
            self._count("serve.jobs_cancelled")
        self.store.save(job)


class Watchdog(threading.Thread):
    """Polls the runner's current job against its deadline."""

    def __init__(self, runner: JobRunner, poll_s: float = 0.2) -> None:
        super().__init__(name="serve-watchdog", daemon=True)
        self.runner = runner
        self.poll_s = poll_s
        self._stopping = threading.Event()
        self._flagged: str | None = None

    def stop(self) -> None:
        self._stopping.set()

    def run(self) -> None:
        while not self._stopping.wait(self.poll_s):
            current = self.runner.current_job()
            if current is None:
                self._flagged = None
                continue
            job, deadline = current
            if deadline is None or job.id == self._flagged:
                continue
            if time.monotonic() >= deadline:
                logger.warning(
                    "job %s exceeded its deadline; requesting cooperative "
                    "cancellation (degrades to a partial result)", job.id,
                )
                self._flagged = job.id
                self.runner.request_cancel(job.id, reason="deadline")
