"""The campaign service daemon: application core + stdlib HTTP front-end.

:class:`ServeApp` owns the durable store, the bounded queue, the runner
thread and the watchdog; :class:`ServeHTTPServer` is a thin
``ThreadingHTTPServer`` translating JSON-over-HTTP into app calls.  The
two are deliberately separable — tests drive :class:`ServeApp` directly,
the chaos/e2e suite drives the HTTP surface.

Routes (all JSON unless noted)::

    GET  /healthz                     liveness + queue depth
    GET  /metrics                     Prometheus text format 0.0.4
    GET  /jobs                        job summaries, oldest first
    GET  /jobs/<id>                   full job record
    GET  /jobs/<id>/result            result only; 409 until terminal
    GET  /jobs/<id>/events?since=N&wait=S   long-poll the job event log
    POST /jobs                        submit {"kind", "spec", ...}
    POST /jobs/<id>/cancel            cooperative cancellation

Backpressure: a full queue turns a submission into ``429 Too Many
Requests`` with a ``Retry-After`` header estimating when capacity frees
up.  Startup runs :meth:`~repro.serve.store.JobStore.recover` before the
runner starts, so jobs interrupted by the previous daemon's death are
requeued (force-pushed — recovered work is never dropped to make room for
new traffic).  Shutdown cancels the current job with ``requeue=True``,
which checkpoints and returns it to the durable queue.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.obs.events import read_events
from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry import Telemetry, set_telemetry
from repro.serve.queue import JobQueue, QueueFull
from repro.serve.runner import JobRunner, Watchdog
from repro.serve.store import JOB_KINDS, JobError, JobState, JobStore

logger = logging.getLogger(__name__)

#: Hard cap on one long-poll wait; clients re-poll with the new offset.
MAX_EVENT_WAIT_S = 30.0


class ServeApp:
    """Everything the service does, minus HTTP."""

    def __init__(
        self,
        state_dir: str | Path | None = None,
        jobs: int = 1,
        queue_limit: int = 16,
        max_per_client: int = 0,
        shard_timeout: float | None = None,
        job_timeout: float | None = None,
    ) -> None:
        self.store = JobStore(state_dir)
        self.queue = JobQueue(limit=queue_limit, max_per_client=max_per_client)
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        # Base telemetry: shared metrics, no event log (jobs get their own).
        self._base_tel = Telemetry(metrics=self.metrics)
        set_telemetry(self._base_tel)
        recovered = self.store.recover()
        for job in recovered:
            self.queue.push(job, force=True)
        if recovered:
            logger.info(
                "recovered %d queued/interrupted job(s) from %s",
                len(recovered), self.store.root,
            )
            self.metrics.count("serve.jobs_recovered", len(recovered))
        self.runner = JobRunner(
            self.store,
            self.queue,
            jobs=jobs,
            shard_timeout=shard_timeout,
            default_deadline_s=job_timeout,
            metrics=self.metrics,
        )
        self.watchdog = Watchdog(self.runner)
        self._shut = False

    def start(self) -> None:
        self.runner.start()
        self.watchdog.start()

    # -- submission ------------------------------------------------------------
    def submit(self, payload: dict) -> dict:
        """Admit one job: capacity check, durable save, then enqueue.

        File-then-queue ordering on purpose: a crash between the two
        leaves a ``queued`` record on disk that the next startup's
        ``recover()`` re-enqueues — whereas queue-then-file would lose the
        job entirely.
        """
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise ValueError(
                f"unknown job kind {kind!r} (expected one of {JOB_KINDS})"
            )
        spec = payload.get("spec")
        if not isinstance(spec, dict):
            raise ValueError('"spec" must be a JSON object')
        client = str(payload.get("client", "anonymous"))
        priority = int(payload.get("priority", 10))
        self.queue.ensure_capacity(client)
        job = self.store.new_job(kind, spec, client=client, priority=priority)
        self.store.save(job)
        self.queue.push(job, force=True)
        self.metrics.count("serve.jobs_submitted")
        logger.info(
            "accepted job %s (%s) from %s, priority %d",
            job.id, kind, client, priority,
        )
        return job.summary()

    # -- queries ---------------------------------------------------------------
    def healthz(self) -> dict:
        current = self.runner.current_job()
        return {
            "ok": True,
            "uptime_s": round(time.time() - self.started_at, 1),
            "queued": len(self.queue),
            "running": current[0].id if current else None,
        }

    def list_jobs(self) -> list[dict]:
        return [job.summary() for job in self.store.load_all()]

    def get_job(self, job_id: str) -> dict:
        return self.store.load(job_id).to_json()

    def get_result(self, job_id: str) -> tuple[int, dict]:
        job = self.store.load(job_id)
        if not job.terminal:
            return 409, {
                "error": f"job {job_id} is {job.state.value}, not terminal"
            }
        return 200, {
            "id": job.id,
            "state": job.state.value,
            "incomplete": job.incomplete,
            "error": job.error,
            "result": job.result,
        }

    def events(
        self, job_id: str, since: int = 0, wait: float = 0.0
    ) -> dict:
        """Events after offset ``since``; long-polls up to ``wait`` seconds.

        Plain polling over the append-only JSONL log: cheap, stateless,
        and tolerant of a torn tail by construction (``read_events``).
        Returns early once the job is terminal — nothing more will be
        appended, so there is no reason to hold the connection open.
        """
        since = max(0, since)
        job = self.store.load(job_id)  # 404 before we block
        path = self.store.events_path(job_id)
        deadline = time.monotonic() + min(max(wait, 0.0), MAX_EVENT_WAIT_S)
        while True:
            events = read_events(path) if path.exists() else []
            fresh = events[since:] if since < len(events) else []
            if fresh or job.terminal or time.monotonic() >= deadline:
                return {
                    "id": job_id,
                    "state": job.state.value,
                    "next": since + len(fresh),
                    "events": fresh,
                }
            time.sleep(0.1)
            job = self.store.load(job_id)

    def metrics_text(self) -> str:
        self.metrics.gauge("serve.queue_depth", len(self.queue))
        self.metrics.gauge(
            "serve.uptime_seconds", round(time.time() - self.started_at, 1)
        )
        return to_prometheus(self.metrics)

    # -- cancellation ----------------------------------------------------------
    def cancel(self, job_id: str, reason: str = "client-cancel") -> dict:
        """Cancel a job wherever it is: queued, running, or already done."""
        job = self.store.load(job_id)
        if job.terminal:
            return {"id": job_id, "state": job.state.value, "changed": False}
        removed = self.queue.remove(job_id)
        if removed is not None:
            removed.transition(JobState.CANCELLED)
            removed.finished_at = time.time()
            removed.note = reason
            self.store.save(removed)
            self.metrics.count("serve.jobs_cancelled")
            return {"id": job_id, "state": "cancelled", "changed": True}
        # Not queued: if it is the running job this flags it; the runner
        # checkpoints at the next heartbeat and finishes the transition.
        self.runner.request_cancel(job_id, reason=reason)
        return {"id": job_id, "state": job.state.value, "changed": True}

    # -- lifecycle -------------------------------------------------------------
    def shutdown(self, requeue: bool = True) -> None:
        """Graceful stop: current job checkpoints and returns to the queue."""
        if self._shut:
            return
        self._shut = True
        self.watchdog.stop()
        self.runner.stop(requeue_current=requeue)
        self.runner.join(timeout=30.0)
        self.watchdog.join(timeout=5.0)
        logger.info("serve daemon stopped (queued jobs remain durable)")


class _Handler(BaseHTTPRequestHandler):
    """JSON route dispatch; every response body is a JSON document."""

    server: ServeHTTPServer  # typing aid

    protocol_version = "HTTP/1.1"

    # -- plumbing --------------------------------------------------------------
    def log_message(self, fmt: str, *args) -> None:  # noqa: A003
        logger.debug("http: " + fmt, *args)

    def _send(
        self, status: int, payload: dict | list, headers: dict | None = None
    ) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from None

    # -- routing ---------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        app = self.server.app
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send(200, app.healthz())
            elif parts == ["metrics"]:
                self._send_text(
                    200, app.metrics_text(),
                    "text/plain; version=0.0.4; charset=utf-8",
                )
            elif parts == ["jobs"]:
                self._send(200, app.list_jobs())
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send(200, app.get_job(parts[1]))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                status, payload = app.get_result(parts[1])
                self._send(status, payload)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                query = parse_qs(url.query)
                self._send(200, app.events(
                    parts[1],
                    since=int(query.get("since", ["0"])[0]),
                    wait=float(query.get("wait", ["0"])[0]),
                ))
            else:
                self._send(404, {"error": f"no route {url.path}"})
        except JobError as exc:
            self._send(404, {"error": str(exc)})
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            logger.exception("GET %s failed", self.path)
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_POST(self) -> None:  # noqa: N802
        app = self.server.app
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["jobs"]:
                self._send(202, app.submit(self._read_body()))
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "cancel":
                self._send(200, app.cancel(parts[1]))
            else:
                self._send(404, {"error": f"no route {url.path}"})
        except QueueFull as exc:
            retry = max(1, int(round(exc.retry_after_s)))
            self._send(
                429,
                {"error": str(exc), "retry_after_s": retry},
                headers={"Retry-After": str(retry)},
            )
        except JobError as exc:
            self._send(404, {"error": str(exc)})
        except ValueError as exc:
            self._send(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - keep the server alive
            logger.exception("POST %s failed", self.path)
            self._send(500, {"error": f"{type(exc).__name__}: {exc}"})


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to a :class:`ServeApp`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: ServeApp) -> None:
        super().__init__(address, _Handler)
        self.app = app


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    **app_kwargs,
) -> ServeHTTPServer:
    """Build the app + server pair; ``port=0`` binds an ephemeral port."""
    app = ServeApp(**app_kwargs)
    server = ServeHTTPServer((host, port), app)
    app.start()
    return server


class ServerThread:
    """In-process server harness for tests: start, talk, stop."""

    def __init__(self, server: ServeHTTPServer) -> None:
        self.server = server
        self._thread = threading.Thread(
            target=server.serve_forever, name="serve-http", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def __enter__(self) -> ServerThread:
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.server.app.shutdown(requeue=True)
        self.server.shutdown()
        self.server.server_close()
        self._thread.join(timeout=10.0)
