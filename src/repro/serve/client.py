"""Minimal stdlib client for the campaign service (urllib, no deps).

Used by the CLI smoke script, the chaos harness, and anyone scripting
against a running daemon::

    client = ServeClient("http://127.0.0.1:8321")
    job = client.submit("inject", {"program": "workload:matmul", "trials": 200})
    final = client.wait(job["id"])
    print(final["result"]["counts"])

Every call raises :class:`ServeClientError` on a non-2xx response; a 429
carries ``retry_after_s`` so callers can implement polite backoff.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.errors import ReproError


class ServeClientError(ReproError):
    """Non-2xx response from the service."""

    def __init__(
        self, message: str, status: int = 0, retry_after_s: float = 0.0
    ) -> None:
        super().__init__(message)
        self.status = status
        self.retry_after_s = retry_after_s


class ServeClient:
    """Tiny JSON-over-HTTP client bound to one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -------------------------------------------------------------
    def _request(self, method: str, path: str, body: dict | None = None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            f"{self.base_url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return resp.status, resp.read(), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read(), dict(exc.headers)
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"{method} {path}: daemon unreachable ({exc.reason})"
            ) from None

    def _json(self, method: str, path: str, body: dict | None = None):
        status, raw, headers = self._request(method, path, body)
        try:
            payload = json.loads(raw) if raw else {}
        except ValueError:
            payload = {"error": raw.decode(errors="replace")}
        if status >= 400:
            retry = float(headers.get("Retry-After", 0) or 0)
            message = payload.get("error") if isinstance(payload, dict) else None
            raise ServeClientError(
                f"{method} {path} -> {status}: {message or raw[:200]!r}",
                status=status,
                retry_after_s=retry,
            )
        return payload

    # -- API -------------------------------------------------------------------
    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def metrics_text(self) -> str:
        status, raw, _ = self._request("GET", "/metrics")
        if status != 200:
            raise ServeClientError(f"GET /metrics -> {status}", status=status)
        return raw.decode()

    def submit(
        self,
        kind: str,
        spec: dict,
        client: str = "anonymous",
        priority: int = 10,
    ) -> dict:
        return self._json("POST", "/jobs", {
            "kind": kind, "spec": spec, "client": client, "priority": priority,
        })

    def jobs(self) -> list[dict]:
        return self._json("GET", "/jobs")

    def job(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._json("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str, since: int = 0, wait: float = 0.0) -> dict:
        return self._json(
            "GET", f"/jobs/{job_id}/events?since={since}&wait={wait}"
        )

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/jobs/{job_id}/cancel")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll_s: float = 0.25
    ) -> dict:
        """Poll until ``job_id`` reaches a terminal state; return the record."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServeClientError(
                    f"job {job_id} still {record['state']} after {timeout}s"
                )
            time.sleep(poll_s)
