"""Exception hierarchy for the CASTED reproduction.

Every error raised by the package derives from :class:`ReproError` so callers
can catch the whole family with one clause.  Simulator-level *architectural*
exceptions (the ones a fault-injection trial classifies as "Exception") derive
from :class:`SimTrap` and carry the cycle at which they fired.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class IRError(ReproError):
    """Malformed IR detected by the builder or the verifier."""


class ParseError(ReproError):
    """Syntax or lexical error in textual IR or minic source.

    Attributes
    ----------
    line, col:
        1-based source position of the offending token (0 when unknown).
    """

    def __init__(self, message: str, line: int = 0, col: int = 0) -> None:
        self.line = line
        self.col = col
        where = f" at {line}:{col}" if line else ""
        super().__init__(f"{message}{where}")


class SemanticError(ReproError):
    """Semantic (type / scope / arity) error in a minic program."""


class PassError(ReproError):
    """A compiler pass was mis-configured or hit an internal invariant."""


class ScheduleError(ReproError):
    """The VLIW scheduler could not produce a legal schedule."""


class RegAllocError(ReproError):
    """Register allocation failed (e.g. unsatisfiable register class)."""


class MachineConfigError(ReproError):
    """Invalid machine/cache configuration."""


class SimError(ReproError):
    """Internal simulator invariant violation (a bug, not a guest fault)."""


class SimTrap(ReproError):
    """Architectural trap raised by guest execution.

    These are the events the fault-injection campaign classifies as
    *Exception* outcomes: the (possibly corrupted) guest program performed an
    operation the hardware would fault on.
    """

    kind = "trap"

    def __init__(self, message: str, cycle: int = -1) -> None:
        self.cycle = cycle
        super().__init__(message)


class MemoryFault(SimTrap):
    """Access outside the valid address space or misaligned access."""

    kind = "memory-fault"


class ArithmeticTrap(SimTrap):
    """Division (or remainder) by zero."""

    kind = "arithmetic-trap"


class InvalidInstructionTrap(SimTrap):
    """Executor decoded an instruction it cannot execute."""

    kind = "invalid-instruction"


class Watchdog(SimTrap):
    """Guest exceeded its cycle budget (the paper's *Time out* outcome)."""

    kind = "watchdog"
