"""Crossover analysis: where the best fixed scheme flips, and how CASTED
tracks it.

The paper's core argument (§II-B, §IV-B5/6) is that neither fixed placement
wins everywhere — DCED wins resource-starved configurations, SCED wins
wide/slow-interconnect ones — and that CASTED follows the winner.  This
module computes, per workload, the frontier in the (issue width, delay)
grid where the winner flips, plus CASTED's tracking quality on each side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.eval.experiment import Evaluator
from repro.eval.metrics import DELAYS, ISSUE_WIDTHS
from repro.pipeline import Scheme
from repro.utils.tables import format_table


@dataclass(frozen=True)
class CrossoverCell:
    issue_width: int
    delay: int
    winner: Scheme  # SCED or DCED
    margin: float  # winner advantage over the loser, as a fraction
    casted_vs_winner: float  # casted cycles / winner cycles


@dataclass
class CrossoverMap:
    workload: str
    cells: list[CrossoverCell] = field(default_factory=list)

    @property
    def sced_region(self) -> list[CrossoverCell]:
        return [c for c in self.cells if c.winner is Scheme.SCED]

    @property
    def dced_region(self) -> list[CrossoverCell]:
        return [c for c in self.cells if c.winner is Scheme.DCED]

    @property
    def has_crossover(self) -> bool:
        return bool(self.sced_region) and bool(self.dced_region)

    def worst_tracking(self) -> float:
        return max((c.casted_vs_winner for c in self.cells), default=1.0)


def crossover_map(
    ev: Evaluator,
    workload: str,
    issue_widths=ISSUE_WIDTHS,
    delays=DELAYS,
) -> CrossoverMap:
    cells = []
    for iw in issue_widths:
        for d in delays:
            sced = ev.perf(workload, Scheme.SCED, iw, d).cycles
            dced = ev.perf(workload, Scheme.DCED, iw, d).cycles
            casted = ev.perf(workload, Scheme.CASTED, iw, d).cycles
            winner, win_c, lose_c = (
                (Scheme.SCED, sced, dced) if sced <= dced else (Scheme.DCED, dced, sced)
            )
            cells.append(
                CrossoverCell(
                    issue_width=iw,
                    delay=d,
                    winner=winner,
                    margin=(lose_c - win_c) / lose_c,
                    casted_vs_winner=casted / win_c,
                )
            )
    return CrossoverMap(workload=workload, cells=cells)


def render_crossover_grid(cm: CrossoverMap, delays=DELAYS, issue_widths=ISSUE_WIDTHS) -> str:
    """One character cell per configuration: who wins, does CASTED track."""
    by_key = {(c.issue_width, c.delay): c for c in cm.cells}
    rows = []
    for d in delays:
        cells = []
        for iw in issue_widths:
            c = by_key[(iw, d)]
            glyph = "S" if c.winner is Scheme.SCED else "D"
            if c.casted_vs_winner < 0.995:
                glyph += "+"  # CASTED beats the winner
            elif c.casted_vs_winner > 1.02:
                glyph += "!"  # CASTED trails noticeably
            else:
                glyph += "="
            cells.append(glyph)
        rows.append([f"delay {d}"] + cells)
    legend = (
        "S/D = winner (SCED/DCED); '+' CASTED beats it, '=' matches "
        "(<2%), '!' trails"
    )
    return (
        format_table(
            ["", *(f"iw{iw}" for iw in issue_widths)],
            rows,
            title=f"{cm.workload}: best fixed scheme per configuration",
        )
        + "\n"
        + legend
    )


def summarize_crossovers(ev: Evaluator, workloads: list[str]) -> str:
    rows = []
    for w in workloads:
        cm = crossover_map(ev, w)
        rows.append(
            [
                w,
                len(cm.dced_region),
                len(cm.sced_region),
                "yes" if cm.has_crossover else "no",
                f"{(cm.worst_tracking() - 1) * 100:.1f}%",
            ]
        )
    return format_table(
        ["workload", "DCED wins", "SCED wins", "crossover", "CASTED worst gap"],
        rows,
        title="Fixed-scheme crossover summary (16-configuration grid)",
    )
