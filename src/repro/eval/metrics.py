"""Derived metrics over sweep results (the numbers §IV-B quotes)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval.experiment import Evaluator
from repro.pipeline import Scheme
from repro.utils.stats import Summary, summarize

ISSUE_WIDTHS = (1, 2, 3, 4)
DELAYS = (1, 2, 3, 4)


def slowdown(
    ev: Evaluator, workload: str, scheme: Scheme, issue_width: int, delay: int
) -> float:
    """Cycles normalized to NOED at the same issue width (paper Figs. 6-7)."""
    noed = ev.perf(workload, Scheme.NOED, issue_width, delay)
    this = ev.perf(workload, scheme, issue_width, delay)
    return this.cycles / noed.cycles


def ilp_scaling(
    ev: Evaluator, workload: str, scheme: Scheme, delay: int = 1
) -> list[float]:
    """Speedup at each issue width relative to issue width 1 (paper Fig. 8)."""
    base = ev.perf(workload, scheme, 1, delay).cycles
    return [base / ev.perf(workload, scheme, iw, delay).cycles for iw in ISSUE_WIDTHS]


@dataclass(frozen=True)
class SchemeSummary:
    """Slowdown statistics of one scheme over a whole sweep."""

    scheme: Scheme
    stats: Summary

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.scheme.name}: {self.stats}"


def summarize_scheme_slowdowns(
    ev: Evaluator,
    workloads: list[str],
    scheme: Scheme,
    issue_widths=ISSUE_WIDTHS,
    delays=DELAYS,
) -> SchemeSummary:
    values = [
        slowdown(ev, w, scheme, iw, d)
        for w in workloads
        for iw in issue_widths
        for d in delays
    ]
    return SchemeSummary(scheme=scheme, stats=summarize(values))


def casted_vs_best_fixed(
    ev: Evaluator,
    workloads: list[str],
    issue_widths=ISSUE_WIDTHS,
    delays=DELAYS,
) -> dict:
    """Where CASTED beats/matches/loses against min(SCED, DCED) (§IV-B6)."""
    beats: list[tuple[str, int, int, float]] = []
    losses: list[tuple[str, int, int, float]] = []
    matches = 0
    for w in workloads:
        for iw in issue_widths:
            for d in delays:
                best = min(
                    ev.perf(w, Scheme.SCED, iw, d).cycles,
                    ev.perf(w, Scheme.DCED, iw, d).cycles,
                )
                casted = ev.perf(w, Scheme.CASTED, iw, d).cycles
                gain = (best - casted) / best
                if casted < best:
                    beats.append((w, iw, d, gain))
                elif casted > best:
                    losses.append((w, iw, d, gain))
                else:
                    matches += 1
    beats.sort(key=lambda t: -t[3])
    losses.sort(key=lambda t: t[3])
    return {
        "beats": beats,
        "matches": matches,
        "losses": losses,
        "max_gain": beats[0][3] if beats else 0.0,
        "points": len(workloads) * len(issue_widths) * len(delays),
    }


def overall_reduction_vs(
    ev: Evaluator,
    workloads: list[str],
    baseline: Scheme,
    issue_widths=ISSUE_WIDTHS,
    delays=DELAYS,
) -> float:
    """Average cycle reduction of CASTED vs a baseline (paper §VI: 7.5% vs
    SCED, 24.7% vs DCED)."""
    ratios = [
        1.0
        - ev.perf(w, Scheme.CASTED, iw, d).cycles
        / ev.perf(w, baseline, iw, d).cycles
        for w in workloads
        for iw in issue_widths
        for d in delays
    ]
    return sum(ratios) / len(ratios)
