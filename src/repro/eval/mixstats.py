"""Dynamic instruction-mix profiling.

Characterizes a program by what it *executes* (not what it contains): the
operation-category frequencies the paper's workload discussion builds on —
memory density, branch density, multiply share — plus the role split of
protected binaries (how much of the dynamic stream is replica/check code).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimError
from repro.ir.interp import ExitKind, Interpreter
from repro.ir.program import Program
from repro.isa.opcodes import LatencyClass, Opcode
from repro.utils.tables import format_table

#: Category of each opcode for mix reporting.
_CATEGORY: dict[Opcode, str] = {}
for _op in Opcode:
    from repro.isa.opcodes import OP_INFO

    _info = OP_INFO[_op]
    if _info.is_load:
        _CATEGORY[_op] = "load"
    elif _info.is_store:
        _CATEGORY[_op] = "store"
    elif _info.is_out:
        _CATEGORY[_op] = "out"
    elif _op is Opcode.CHKBR:
        _CATEGORY[_op] = "check-branch"
    elif _info.is_branch or _info.is_terminator:
        _CATEGORY[_op] = "control"
    elif _info.latency is LatencyClass.MUL:
        _CATEGORY[_op] = "mul"
    elif _info.latency is LatencyClass.DIV:
        _CATEGORY[_op] = "div"
    else:
        _CATEGORY[_op] = "alu"


@dataclass(frozen=True)
class MixProfile:
    """Dynamic mix of one run."""

    name: str
    total: int
    by_category: dict = field(default_factory=dict)
    by_role: dict = field(default_factory=dict)

    def fraction(self, category: str) -> float:
        return self.by_category.get(category, 0) / self.total if self.total else 0.0

    def role_fraction(self, role: str) -> float:
        return self.by_role.get(role, 0) / self.total if self.total else 0.0

    @property
    def memory_density(self) -> float:
        return self.fraction("load") + self.fraction("store")

    @property
    def branch_density(self) -> float:
        return self.fraction("control") + self.fraction("check-branch")


def dynamic_mix(
    program: Program,
    name: str = "program",
    mem_words: int | None = None,
    frame_words: int = 0,
    max_steps: int = 50_000_000,
) -> MixProfile:
    """Run once and histogram the executed instructions."""
    interp = Interpreter(
        program, mem_words=mem_words, frame_words=frame_words, max_steps=max_steps
    )
    result = interp.run(record_trace=True)
    if result.kind not in (ExitKind.OK, ExitKind.DETECTED):
        raise SimError(f"profiling run ended with {result.kind}")

    # Per-block static histograms, weighted by visit counts.
    by_category: dict[str, int] = {}
    by_role: dict[str, int] = {}
    block_cat: dict[str, dict[str, int]] = {}
    block_role: dict[str, dict[str, int]] = {}
    for block in program.main.blocks():
        cats: dict[str, int] = {}
        roles: dict[str, int] = {}
        for insn in block.instructions:
            c = _CATEGORY[insn.opcode]
            cats[c] = cats.get(c, 0) + 1
            roles[insn.role.value] = roles.get(insn.role.value, 0) + 1
        block_cat[block.label] = cats
        block_role[block.label] = roles

    total = 0
    from collections import Counter

    visits = Counter(result.block_trace)
    for label, n in visits.items():
        for c, k in block_cat[label].items():
            by_category[c] = by_category.get(c, 0) + n * k
            total += n * k
        for r, k in block_role[label].items():
            by_role[r] = by_role.get(r, 0) + n * k

    return MixProfile(name=name, total=total, by_category=by_category, by_role=by_role)


_MIX_COLUMNS = ("alu", "mul", "div", "load", "store", "control", "check-branch", "out")


def render_mix_table(profiles: list[MixProfile], title: str = "Dynamic instruction mix") -> str:
    rows = []
    for p in profiles:
        rows.append(
            [p.name, p.total]
            + [f"{p.fraction(c) * 100:.1f}%" for c in _MIX_COLUMNS]
        )
    return format_table(["program", "dyn"] + list(_MIX_COLUMNS), rows, title=title)


def render_role_table(profiles: list[MixProfile], title: str = "Dynamic role split") -> str:
    roles = ("orig", "dup", "copy", "check", "spill")
    rows = [
        [p.name] + [f"{p.role_fraction(r) * 100:.1f}%" for r in roles]
        for p in profiles
    ]
    return format_table(["program"] + list(roles), rows, title=title)
