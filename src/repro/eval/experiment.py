"""Sweep driver with result caching.

``Evaluator`` is the single entry point the figure producers and benchmark
harnesses use.  Every (workload, scheme, issue-width, delay) point is

* compiled through the full pipeline,
* run once on the cycle-level executor for timing, and
* optionally subjected to a fault-injection campaign;

results are memoized in memory and, unless disabled, persisted as JSON under
``.repro_cache/`` so re-running a different benchmark that shares points is
cheap.  Everything is deterministic given the seed.

Grids of points can be evaluated concurrently with :meth:`Evaluator.sweep`:
workers compute records in their own processes (memoizing in memory only)
and ship them back to the parent, which is the **only** writer of the disk
cache — every file lands via an atomic temp-file + ``os.replace`` so
concurrent sweeps and interrupted runs can never leave a truncated entry.
Sweep results (and the cache files they produce) are identical to a serial
run: per-point campaign seeds derive from the point's coordinates, never
from execution order.  See ``docs/performance.md``.

Set ``REPRO_CACHE=0`` to disable the disk cache, ``REPRO_CACHE_DIR`` to move
it.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.faults.classify import Outcome
from repro.ir.interp import ExitKind
from repro.faults.injector import CampaignResult, FaultInjector
from repro.ir.printer import canonical_program_text
from repro.machine.config import MachineConfig
from repro.obs import get_telemetry
from repro.obs.progress import ProgressCallback, ProgressTracker
from repro.parallel import parallel_map, resolve_jobs
from repro.pipeline import CompiledProgram, Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.utils.rng import derive_seed
from repro.workloads import get_workload

#: Bump when a change invalidates previously cached results.  v6: campaigns
#: draw from per-shard RNG streams (repro.parallel.SHARD_TRIALS), which
#: changes coverage numbers relative to the old single-stream campaigns.
CACHE_VERSION = 6

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PerfRecord:
    """Timing + static stats of one compiled run."""

    workload: str
    scheme: str
    issue_width: int
    delay: int
    cycles: int
    stall_cycles: int
    dyn_instructions: int
    static_cycles: int
    code_growth: float
    n_spilled: int
    frame_words: int
    exit_code: int

    @property
    def compute_cycles(self) -> int:
        return self.cycles - self.stall_cycles


@dataclass(frozen=True)
class CoverageRecord:
    """Fault-campaign outcome fractions of one configuration."""

    workload: str
    scheme: str
    issue_width: int
    delay: int
    trials: int
    fractions: dict[str, float]  # outcome value -> fraction
    total_faults: int
    # Defaults keep records loadable from cache entries written before the
    # fault-model / detection-latency fields existed.
    fault_model: str = "reg-bit"
    mean_detection_latency: float = 0.0

    def fraction(self, outcome: Outcome) -> float:
        return self.fractions.get(outcome.value, 0.0)

    @property
    def coverage(self) -> float:
        return 1.0 - self.fraction(Outcome.SDC) - self.fraction(Outcome.TIMEOUT)


def _scheme_delay(scheme: Scheme, delay: int) -> int:
    """Single-cluster schemes never pay the inter-cluster delay.

    Normalising the delay axis to 0 for them collapses equivalent cache
    keys; the fact itself (``uses_delay``) comes from the scheme registry.
    """
    return delay if scheme.info.uses_delay else 0


#: Process-wide golden-run dedupe for fault campaigns (LRU, content-keyed).
#:
#: A :class:`FaultInjector` profiles its golden run (trace + snapshots) in
#: ``__init__``, which is pure fixed overhead a sweep re-pays for every grid
#: point that compiles to the same program — e.g. delay-only variations of a
#: (workload, scheme) pair.  Keying by a hash of the *printed post-regalloc
#: program* (plus the memory/frame geometry and fault model) makes the reuse
#: exact-by-construction: identical key means identical golden execution, so
#: a cached injector's campaigns are bit-identical to a fresh one's.  The
#: cache is module-level so sweep pool workers, which persist across tasks,
#: amortize goldens across the points they are handed.
_INJECTOR_CACHE: OrderedDict[tuple, FaultInjector] = OrderedDict()
_INJECTOR_CACHE_MAX = 8

#: Content-exact program identity (``!of<uid>`` tags renumbered); lives in
#: :mod:`repro.ir.printer` now that the worker pool's content-addressed
#: cache shares it.  Kept under the old private name for callers/tests.
_canonical_program_text = canonical_program_text


def _cached_injector(cp: CompiledProgram, fault_model: str) -> FaultInjector:
    tel = get_telemetry()
    key = (
        hashlib.sha256(_canonical_program_text(cp.program).encode()).hexdigest(),
        cp.mem_words,
        cp.frame_words,
        fault_model,
    )
    injector = _INJECTOR_CACHE.get(key)
    if injector is not None:
        _INJECTOR_CACHE.move_to_end(key)
        tel.count("eval.golden_cache.hits")
        return injector
    tel.count("eval.golden_cache.misses")
    injector = FaultInjector(
        cp.program, mem_words=cp.mem_words, frame_words=cp.frame_words,
        fault_model=fault_model,
    )
    _INJECTOR_CACHE[key] = injector
    while len(_INJECTOR_CACHE) > _INJECTOR_CACHE_MAX:
        _INJECTOR_CACHE.popitem(last=False)
    return injector


class Evaluator:
    def __init__(self, seed: int = 2013, cache: bool | None = None) -> None:
        self.seed = seed
        if cache is None:
            cache = os.environ.get("REPRO_CACHE", "1") != "0"
        self._disk = cache
        self._cache_dir = Path(
            os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
        )
        self._mem: dict[str, dict] = {}
        self._compiled: dict[tuple, CompiledProgram] = {}

    # -- caching ---------------------------------------------------------------
    def _load(self, key: str) -> dict | None:
        tel = get_telemetry()
        if key in self._mem:
            tel.count("eval.cache.mem_hits")
            return self._mem[key]
        if self._disk:
            path = self._cache_dir / f"{key}.json"
            if path.exists():
                # A corrupt or unreadable cache entry is never fatal: warn
                # once, count it, quarantine the file (renamed `.bad` so the
                # evidence survives but later runs don't re-parse and
                # re-warn), and fall through to recompute — the caller will
                # publish a fresh entry via _store.
                try:
                    data = json.loads(path.read_text())
                except (OSError, ValueError) as exc:
                    logger.warning(
                        "corrupt result cache %s: %s — quarantining and "
                        "recomputing", path, exc,
                    )
                    tel.count("eval.cache.corrupt")
                    tel.instant(
                        "cache-corrupt", cat="eval", key=key, error=str(exc)
                    )
                    self._quarantine(path)
                    return None
                if not isinstance(data, dict):
                    logger.warning(
                        "corrupt result cache %s: expected object, got %s — "
                        "quarantining and recomputing",
                        path, type(data).__name__,
                    )
                    tel.count("eval.cache.corrupt")
                    tel.instant(
                        "cache-corrupt", cat="eval", key=key,
                        error=f"expected object, got {type(data).__name__}",
                    )
                    self._quarantine(path)
                    return None
                self._mem[key] = data
                tel.count("eval.cache.disk_hits")
                return data
        tel.count("eval.cache.misses")
        return None

    @staticmethod
    def _quarantine(path: Path) -> None:
        """Move a corrupt cache entry aside as ``<name>.bad`` (best-effort).

        ``os.replace`` keeps this atomic and idempotent — a second corrupt
        copy of the same key overwrites the first quarantined one.  Failure
        to rename (e.g. a read-only cache dir) is non-fatal: the entry is
        simply recomputed again next run, which is the old behaviour.
        """
        try:
            os.replace(path, path.with_name(f"{path.name}.bad"))
        except OSError as exc:  # pragma: no cover - depends on fs perms
            logger.warning("could not quarantine %s: %s", path, exc)

    def _store(self, key: str, data: dict) -> None:
        self._mem[key] = data
        if self._disk:
            self._cache_dir.mkdir(parents=True, exist_ok=True)
            path = self._cache_dir / f"{key}.json"
            # Atomic publish: write the whole entry to a per-process temp
            # file, then os.replace it into place.  An interrupted writer
            # leaves at worst a stale .tmp (never a truncated .json), and
            # concurrent writers of the same deterministic key are benign —
            # last replace wins with identical content.
            tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
            try:
                tmp.write_text(json.dumps(data))
                os.replace(tmp, path)
            finally:
                tmp.unlink(missing_ok=True)

    # -- compilation --------------------------------------------------------------
    def compiled(
        self, workload: str, scheme: Scheme, issue_width: int, delay: int
    ) -> CompiledProgram:
        delay = _scheme_delay(scheme, delay)
        key = (workload, scheme, issue_width, delay)
        if key not in self._compiled:
            machine = MachineConfig(issue_width=issue_width, inter_cluster_delay=delay)
            self._compiled[key] = compile_program(
                get_workload(workload).program, scheme, machine
            )
        return self._compiled[key]

    # -- cache keys ---------------------------------------------------------------
    def _perf_key(
        self, workload: str, scheme: Scheme, issue_width: int, delay: int
    ) -> str:
        return f"v{CACHE_VERSION}_perf_{workload}_{scheme.value}_iw{issue_width}_d{delay}"

    def _cov_key(
        self,
        workload: str,
        scheme: Scheme,
        issue_width: int,
        delay: int,
        trials: int,
        fault_model: str = "reg-bit",
    ) -> str:
        # The default model keeps the historical key shape so existing cache
        # entries (and their recorded figures) stay valid.
        suffix = "" if fault_model == "reg-bit" else f"_fm-{fault_model}"
        return (
            f"v{CACHE_VERSION}_cov_{workload}_{scheme.value}_iw{issue_width}_d{delay}"
            f"_t{trials}_s{self.seed}{suffix}"
        )

    # -- performance ---------------------------------------------------------------
    def perf(
        self, workload: str, scheme: Scheme, issue_width: int, delay: int
    ) -> PerfRecord:
        delay = _scheme_delay(scheme, delay)
        key = self._perf_key(workload, scheme, issue_width, delay)
        data = self._load(key)
        if data is None:
            cp = self.compiled(workload, scheme, issue_width, delay)
            result = VLIWExecutor(cp).run()
            if result.kind is not ExitKind.OK:
                raise RuntimeError(
                    f"{workload}/{scheme.value} failed: {result.kind} {result}"
                )
            data = asdict(
                PerfRecord(
                    workload=workload,
                    scheme=scheme.value,
                    issue_width=issue_width,
                    delay=delay,
                    cycles=result.cycles,
                    stall_cycles=result.stall_cycles,
                    dyn_instructions=result.dyn_instructions,
                    static_cycles=cp.stats.static_cycles,
                    code_growth=cp.stats.code_growth,
                    n_spilled=cp.stats.n_spilled,
                    frame_words=cp.frame_words,
                    exit_code=result.exit_code,
                )
            )
            self._store(key, data)
        return PerfRecord(**data)

    # -- fault coverage ---------------------------------------------------------------
    def coverage(
        self,
        workload: str,
        scheme: Scheme,
        issue_width: int,
        delay: int,
        trials: int,
        fault_model: str = "reg-bit",
    ) -> CoverageRecord:
        delay = _scheme_delay(scheme, delay)
        key = self._cov_key(workload, scheme, issue_width, delay, trials, fault_model)
        data = self._load(key)
        if data is None:
            reference_dyn = None
            if scheme is not Scheme.NOED:
                noed = self.perf(workload, Scheme.NOED, issue_width, delay)
                reference_dyn = noed.dyn_instructions
            cp = self.compiled(workload, scheme, issue_width, delay)
            injector = _cached_injector(cp, fault_model)
            campaign: CampaignResult = injector.run_campaign(
                trials=trials,
                seed=derive_seed(self.seed, workload, scheme.value, issue_width, delay),
                reference_dyn=reference_dyn,
            )
            data = {
                "workload": workload,
                "scheme": scheme.value,
                "issue_width": issue_width,
                "delay": delay,
                "trials": trials,
                "fractions": {o.value: f for o, f in (
                    (o, campaign.fraction(o)) for o in Outcome
                )},
                "total_faults": campaign.total_faults_injected,
                "fault_model": fault_model,
                "mean_detection_latency": campaign.mean_detection_latency,
            }
            self._store(key, data)
        return CoverageRecord(**data)

    # -- parallel grids ---------------------------------------------------------------
    def sweep(
        self,
        points: list[tuple],
        trials: int | None = None,
        jobs: int | None = 1,
        progress: ProgressCallback | None = None,
    ) -> list[dict]:
        """Evaluate ``(workload, scheme, issue_width, delay)`` grid points.

        Returns one ``{"perf": PerfRecord, "coverage": CoverageRecord |
        None}`` dict per point, in point order; ``coverage`` is computed
        only when ``trials`` is given.  ``scheme`` may be a
        :class:`~repro.pipeline.Scheme` or its string value.

        With ``jobs > 1`` the points missing from the cache are computed in
        worker processes (each worker memoizes in memory only) and every
        record a worker produced — including the NOED reference points
        coverage needs for rate matching — is merged back here, the sole
        cache writer.  Point seeds derive from the point's coordinates, so
        records and cache files are identical to a serial run.

        ``progress`` receives one heartbeat per computed point.
        """
        norm: list[tuple[str, Scheme, int, int]] = []
        for workload, scheme, issue_width, delay in points:
            scheme = Scheme(scheme)
            norm.append(
                (workload, scheme, issue_width, _scheme_delay(scheme, delay))
            )

        def is_cached(point: tuple[str, Scheme, int, int]) -> bool:
            workload, scheme, issue_width, delay = point
            if self._load(self._perf_key(workload, scheme, issue_width, delay)) is None:
                return False
            if trials is None:
                return True
            return (
                self._load(
                    self._cov_key(workload, scheme, issue_width, delay, trials)
                )
                is not None
            )

        missing = [p for p in dict.fromkeys(norm) if not is_cached(p)]
        tracker = ProgressTracker(len(missing), progress, every=1)
        jobs = resolve_jobs(jobs)
        tel = get_telemetry()
        tel.event(
            "sweep-start", points=len(norm), missing=len(missing), jobs=jobs,
            trials=trials,
        )
        if missing and (jobs <= 1 or len(missing) <= 1):
            for workload, scheme, issue_width, delay in missing:
                self.perf(workload, scheme, issue_width, delay)
                if trials is not None:
                    self.coverage(workload, scheme, issue_width, delay, trials)
                tracker.advance(1, {})
        elif missing:
            if trials is not None:
                # Rate-matched campaigns need the NOED reference perf of
                # every protected point.  Compute those here (cheap: one
                # compile + timed run, no campaign) so workers don't each
                # redo them, then ship all known perf records along.
                for workload, scheme, issue_width, delay in missing:
                    if scheme is not Scheme.NOED:
                        self.perf(workload, Scheme.NOED, issue_width, delay)
            known = {
                key: data
                for key, data in self._mem.items()
                if key.startswith(f"v{CACHE_VERSION}_perf_")
            }
            tasks = [
                (self.seed, workload, scheme.value, issue_width, delay, trials, known)
                for workload, scheme, issue_width, delay in missing
            ]

            def on_result(index: int, records: dict[str, dict]) -> None:
                for key, data in records.items():
                    self._store(key, data)
                tracker.advance(1, {})

            parallel_map(
                _sweep_point_worker, tasks, jobs=jobs, on_result=on_result
            )
        tel.event("sweep-end", points=len(norm), computed=len(missing))
        return [
            {
                "perf": self.perf(workload, scheme, issue_width, delay),
                "coverage": (
                    self.coverage(workload, scheme, issue_width, delay, trials)
                    if trials is not None
                    else None
                ),
            }
            for workload, scheme, issue_width, delay in norm
        ]


def _sweep_point_worker(task) -> dict[str, dict]:
    """Compute one grid point in a worker process.

    The worker evaluator never touches the disk cache — it preloads the
    records the parent already has (``known``) and returns only the *new*
    in-memory records (cache key -> JSON-ready dict) for the parent to
    persist, which keeps a single writer per cache directory.
    """
    seed, workload, scheme_value, issue_width, delay, trials, known = task
    with get_telemetry().span(
        "sweep:point", cat="eval", workload=workload, scheme=scheme_value,
        issue_width=issue_width, delay=delay,
    ):
        ev = Evaluator(seed=seed, cache=False)
        ev._mem.update(known)
        scheme = Scheme(scheme_value)
        ev.perf(workload, scheme, issue_width, delay)
        if trials is not None:
            ev.coverage(workload, scheme, issue_width, delay, trials)
        return {key: data for key, data in ev._mem.items() if key not in known}
