"""Data producers + text renderers for every figure in the paper.

Each ``figN_data`` function computes the exact series the corresponding
paper figure plots; each ``render_figN`` turns it into an aligned text table
(the benchmark harness prints these and EXPERIMENTS.md records them).
"""

from __future__ import annotations

from repro.eval.experiment import Evaluator
from repro.eval.metrics import DELAYS, ISSUE_WIDTHS, ilp_scaling, slowdown
from repro.faults.classify import OUTCOME_ORDER
from repro.pipeline import Scheme
from repro.utils.tables import format_table

ED_SCHEMES = (Scheme.SCED, Scheme.DCED, Scheme.CASTED)
ALL_SCHEMES = (Scheme.NOED, Scheme.SCED, Scheme.DCED, Scheme.CASTED)


# -- Figures 6 + 7: slowdown vs NOED over the (issue, delay) grid ---------------


def fig6_7_data(
    ev: Evaluator,
    workloads: list[str],
    issue_widths=ISSUE_WIDTHS,
    delays=DELAYS,
) -> dict:
    """{workload: {delay: {scheme: [slowdown at each issue width]}}}"""
    data: dict = {}
    for w in workloads:
        data[w] = {}
        for d in delays:
            data[w][d] = {
                s.value: [slowdown(ev, w, s, iw, d) for iw in issue_widths]
                for s in ED_SCHEMES
            }
    return data


def render_fig6_7(data: dict, issue_widths=ISSUE_WIDTHS) -> str:
    parts = []
    for w, per_delay in data.items():
        rows = []
        for d, per_scheme in per_delay.items():
            for scheme, values in per_scheme.items():
                rows.append(
                    [f"d{d} {scheme}"] + [f"{v:.2f}" for v in values]
                )
        parts.append(
            format_table(
                ["config"] + [f"iw{iw}" for iw in issue_widths],
                rows,
                title=f"Fig 6/7 — {w}: slowdown vs NOED (per issue width)",
            )
        )
    return "\n\n".join(parts)


# -- Figure 8: ILP scaling ---------------------------------------------------


def fig8_data(ev: Evaluator, workloads: list[str], delay: int = 1) -> dict:
    """{workload: {scheme: [speedup vs issue-1 at each issue width]}}"""
    return {
        w: {s.value: ilp_scaling(ev, w, s, delay) for s in ALL_SCHEMES}
        for w in workloads
    }


def render_fig8(data: dict, issue_widths=ISSUE_WIDTHS) -> str:
    rows = []
    for w, per_scheme in data.items():
        for scheme, values in per_scheme.items():
            rows.append([f"{w} {scheme}"] + [f"{v:.2f}" for v in values])
    return format_table(
        ["benchmark"] + [f"iw{iw}" for iw in issue_widths],
        rows,
        title="Fig 8 — ILP scaling (speedup vs issue width 1, delay 1)",
    )


# -- Figure 9: fault coverage at issue 2 / delay 2 ------------------------------


def fig9_data(
    ev: Evaluator,
    workloads: list[str],
    trials: int,
    issue_width: int = 2,
    delay: int = 2,
) -> dict:
    """{workload: {scheme: {outcome: fraction}}}"""
    data: dict = {}
    for w in workloads:
        data[w] = {}
        for s in ALL_SCHEMES:
            rec = ev.coverage(w, s, issue_width, delay, trials)
            data[w][s.value] = dict(rec.fractions)
    return data


def render_fig9(data: dict) -> str:
    headers = ["benchmark/scheme"] + [o.value for o in OUTCOME_ORDER]
    rows = []
    for w, per_scheme in data.items():
        for scheme, fr in per_scheme.items():
            rows.append(
                [f"{w} {scheme}"]
                + [f"{fr.get(o.value, 0.0) * 100:.1f}%" for o in OUTCOME_ORDER]
            )
    return format_table(
        headers, rows, title="Fig 9 — fault coverage, issue 2 / delay 2"
    )


# -- Figure 10: h263dec coverage stability across configurations ----------------


def fig10_data(
    ev: Evaluator,
    trials: int,
    workload: str = "h263dec",
    issue_widths=ISSUE_WIDTHS,
    delays=DELAYS,
) -> dict:
    """{scheme: {(iw, d): {outcome: fraction}}}"""
    data: dict = {}
    for s in ALL_SCHEMES:
        data[s.value] = {}
        for iw in issue_widths:
            for d in delays:
                rec = ev.coverage(workload, s, iw, d, trials)
                data[s.value][(iw, d)] = dict(rec.fractions)
    return data


def render_fig10(data: dict) -> str:
    headers = ["scheme iw/d"] + [o.value for o in OUTCOME_ORDER]
    rows = []
    for scheme, per_cfg in data.items():
        for (iw, d), fr in per_cfg.items():
            rows.append(
                [f"{scheme} iw{iw} d{d}"]
                + [f"{fr.get(o.value, 0.0) * 100:.1f}%" for o in OUTCOME_ORDER]
            )
    return format_table(
        headers, rows, title="Fig 10 — h263dec coverage across configurations"
    )
