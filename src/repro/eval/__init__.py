"""Evaluation harness: sweeps, metrics and paper figure/table reproduction."""

from repro.eval.experiment import Evaluator, PerfRecord
from repro.eval.metrics import (
    ilp_scaling,
    slowdown,
    summarize_scheme_slowdowns,
)

__all__ = [
    "Evaluator",
    "PerfRecord",
    "slowdown",
    "ilp_scaling",
    "summarize_scheme_slowdowns",
]
