"""Renderers for the paper's tables."""

from __future__ import annotations

from repro.machine.config import MachineConfig, paper_machine
from repro.utils.tables import format_table
from repro.workloads import all_workloads


def render_table1(machine: MachineConfig | None = None) -> str:
    """Table I: processor configuration."""
    machine = machine or paper_machine()
    lines = ["Table I — processor configuration", "=" * 40]
    lines.append(machine.describe())
    return "\n".join(lines)


def render_table2() -> str:
    """Table II: benchmark programs (with our stand-in descriptions)."""
    rows = [
        [w.name, w.paper_benchmark, w.suite, w.description]
        for w in all_workloads()
    ]
    return format_table(
        ["workload", "paper benchmark", "suite", "character"],
        rows,
        title="Table II — benchmark programs",
        align_right=False,
    )


#: Table III is qualitative in the paper; reproduced verbatim.
_TABLE3_ROWS = [
    ["EDDI", "-", "wide single-core", "fixed"],
    ["SWIFT", "reduction of checking points", "wide single-core", "fixed"],
    ["SHOESTRING", "partial redundancy", "single-core", "fixed"],
    ["Compiler-assisted ED", "partial redundancy", "single-core", "fixed"],
    ["SRMT", "partially synchronized threads", "dual-core", "fixed"],
    ["DAFT", "decoupled threads", "dual-core", "fixed"],
    ["CASTED", "adaptivity", "tightly-coupled cores", "adaptive"],
]


def render_table3() -> str:
    """Table III: compiler-based error-detection schemes."""
    return format_table(
        ["scheme", "speed-up factors", "target architecture", "code placement"],
        _TABLE3_ROWS,
        title="Table III — compiler-based error detection schemes",
        align_right=False,
    )
