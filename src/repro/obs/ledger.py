"""Content-addressed run ledger: every campaign a durable, queryable artifact.

A *run* is one recorded unit of work — a fault-injection campaign, a bench
measurement — stored as a directory under ``results/runs/`` (override with
``REPRO_RUNS_DIR``)::

    results/runs/<run_id>/
        manifest.json       # identity + configuration + timings + counters
        metrics.json        # full telemetry registry snapshot (optional)
        events.jsonl        # structured event log (optional)
        trace.chrome.json   # Chrome trace-event export (optional)

``run_id`` is the first 12 hex digits of the SHA-256 of the canonical
manifest JSON, so a run's identity *is* its content: re-recording an
identical manifest lands on the same id (idempotent), any difference —
seed, scheme, timing, counter — yields a new entry.  The manifest carries
everything needed to compare two runs: seed, scheme, fault model, backend,
jobs, effective cores, git revision, wall-clock timings, and the campaign
counters.

Corrupt manifests are never fatal: :meth:`RunLedger.list_runs` warns once,
renames the bad file ``manifest.json.bad`` (quarantine — the evidence
survives, later scans stay silent), and skips the entry, mirroring the
eval-cache quarantine behaviour.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import shutil
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.utils.tables import format_table

logger = logging.getLogger(__name__)

#: Default ledger location, relative to the working directory.
DEFAULT_RUNS_DIR = Path("results") / "runs"

MANIFEST_NAME = "manifest.json"
METRICS_NAME = "metrics.json"
EVENTS_NAME = "events.jsonl"
TRACE_NAME = "trace.chrome.json"

#: Manifest keys treated as configuration (shown first by ``diff``).
CONFIG_KEYS = (
    "kind", "workload", "scheme", "fault_model", "backend", "trials",
    "seed", "jobs", "effective_cores", "git_rev", "python",
)


class LedgerError(ReproError):
    """Run-ledger lookup or record failure."""


def git_revision(cwd: str | Path | None = None) -> str | None:
    """Best-effort short git revision of the working tree (or ``None``)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


def run_id_for(manifest: dict) -> str:
    """Content address: 12 hex digits of SHA-256 over canonical JSON."""
    canon = json.dumps(manifest, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()[:12]


@dataclass
class RunRecord:
    """One loaded ledger entry."""

    run_id: str
    path: Path
    manifest: dict
    metrics: dict | None = field(default=None)

    @property
    def events_path(self) -> Path | None:
        p = self.path / EVENTS_NAME
        return p if p.exists() else None

    @property
    def trace_path(self) -> Path | None:
        p = self.path / TRACE_NAME
        return p if p.exists() else None


#: Staging directories older than this are presumed orphaned by a crashed
#: publish and swept on the next ledger use; generous enough that no live
#: ``record()`` (staging is a few file copies) can be caught by it.
STAGE_TTL_S = 3600.0


class RunLedger:
    """Reader/writer for the content-addressed run directory."""

    def __init__(
        self, root: str | Path | None = None, stage_ttl_s: float = STAGE_TTL_S
    ) -> None:
        if root is None:
            root = os.environ.get("REPRO_RUNS_DIR") or DEFAULT_RUNS_DIR
        self.root = Path(root)
        self.stage_ttl_s = stage_ttl_s
        self._swept = False

    def _sweep_stale_stages(self) -> int:
        """Remove ``.stage-*`` directories a crashed publish left behind.

        A ``record()`` interrupted between staging and the atomic rename
        leaks its temp directory; a crash-looping recorder leaks one per
        attempt.  Swept once per ledger instance (the first read or write),
        age-gated by ``stage_ttl_s`` so a concurrent publisher's live stage
        is never touched.  Returns the number of directories removed.
        """
        if self._swept or not self.root.is_dir():
            self._swept = True
            return 0
        self._swept = True
        removed = 0
        cutoff = time.time() - self.stage_ttl_s
        for stage in self.root.glob(".stage-*"):
            try:
                if not stage.is_dir() or stage.stat().st_mtime > cutoff:
                    continue
            except OSError:  # pragma: no cover - raced with another sweep
                continue
            shutil.rmtree(stage, ignore_errors=True)
            removed += 1
        if removed:
            logger.warning(
                "swept %d orphaned staging director%s from %s "
                "(left by a crashed publish)",
                removed, "y" if removed == 1 else "ies", self.root,
            )
        return removed

    # -- recording -------------------------------------------------------------
    def record(
        self,
        manifest: dict,
        metrics: dict | None = None,
        events_src: str | Path | None = None,
        trace_events: list[dict] | None = None,
    ) -> str:
        """Persist one run; returns its content-addressed ``run_id``.

        The manifest is stored as given plus a ``run_id`` field (excluded
        from the hash).  ``metrics`` is a registry snapshot dict;
        ``events_src`` an existing event-log file to copy in;
        ``trace_events`` repro-schema trace events to export as a Chrome
        trace.  Publication is atomic: everything is staged in a temp
        directory and renamed into place, so a crash can never leave a
        half-written entry.
        """
        run_id = run_id_for(manifest)
        final = self.root / run_id
        stage = self.root / f".stage-{os.getpid()}-{run_id}"
        self.root.mkdir(parents=True, exist_ok=True)
        self._sweep_stale_stages()
        shutil.rmtree(stage, ignore_errors=True)
        stage.mkdir()
        try:
            (stage / MANIFEST_NAME).write_text(
                json.dumps({**manifest, "run_id": run_id}, indent=2, sort_keys=True)
                + "\n"
            )
            if metrics is not None:
                from repro.obs.export import to_json

                (stage / METRICS_NAME).write_text(to_json(metrics))
            if events_src is not None and Path(events_src).exists():
                shutil.copyfile(events_src, stage / EVENTS_NAME)
            if trace_events is not None:
                from repro.obs.chrome import export_chrome_trace

                export_chrome_trace(trace_events, stage / TRACE_NAME)
            # Idempotent republish: an identical manifest hashes to the
            # same id; replace the old entry wholesale.
            shutil.rmtree(final, ignore_errors=True)
            os.replace(stage, final)
        finally:
            shutil.rmtree(stage, ignore_errors=True)
        return run_id

    # -- reading ---------------------------------------------------------------
    def _read_manifest(self, run_dir: Path) -> dict | None:
        """Load one manifest, quarantining corruption (warn once, ``.bad``)."""
        path = run_dir / MANIFEST_NAME
        try:
            data = json.loads(path.read_text())
            if not isinstance(data, dict):
                raise ValueError(f"expected object, got {type(data).__name__}")
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as exc:
            logger.warning(
                "corrupt run manifest %s: %s — quarantining as %s.bad and "
                "skipping", path, exc, MANIFEST_NAME,
            )
            try:
                os.replace(path, path.with_name(f"{MANIFEST_NAME}.bad"))
            except OSError as rexc:  # pragma: no cover - fs permissions
                logger.warning("could not quarantine %s: %s", path, rexc)
            return None
        return data

    def list_runs(self) -> list[RunRecord]:
        """Every readable run, newest first (by recorded ``created_at``)."""
        records: list[RunRecord] = []
        if not self.root.is_dir():
            return records
        self._sweep_stale_stages()
        for run_dir in sorted(self.root.iterdir()):
            if not run_dir.is_dir() or run_dir.name.startswith("."):
                continue
            manifest = self._read_manifest(run_dir)
            if manifest is None:
                continue
            records.append(
                RunRecord(
                    run_id=manifest.get("run_id", run_dir.name),
                    path=run_dir,
                    manifest=manifest,
                )
            )
        records.sort(
            key=lambda r: r.manifest.get("created_at", ""), reverse=True
        )
        return records

    def load(self, run_id: str) -> RunRecord:
        """Load one run by id (unambiguous prefixes accepted)."""
        if not self.root.is_dir():
            raise LedgerError(f"no run ledger at {self.root}")
        matches = [
            d for d in self.root.iterdir()
            if d.is_dir() and d.name.startswith(run_id)
        ]
        if not matches:
            raise LedgerError(f"no run {run_id!r} in {self.root}")
        if len(matches) > 1:
            names = ", ".join(sorted(d.name for d in matches))
            raise LedgerError(f"run id {run_id!r} is ambiguous: {names}")
        run_dir = matches[0]
        manifest = self._read_manifest(run_dir)
        if manifest is None:
            raise LedgerError(f"run {run_dir.name} has no readable manifest")
        metrics = None
        metrics_path = run_dir / METRICS_NAME
        if metrics_path.exists():
            try:
                metrics = json.loads(metrics_path.read_text())
            except (OSError, ValueError) as exc:
                logger.warning("unreadable metrics for run %s: %s", run_dir.name, exc)
        return RunRecord(
            run_id=manifest.get("run_id", run_dir.name),
            path=run_dir,
            manifest=manifest,
            metrics=metrics,
        )


# -- rendering -----------------------------------------------------------------
def render_run_list(records: list[RunRecord]) -> str:
    if not records:
        return "run ledger: (no runs recorded)"
    rows = []
    for r in records:
        m = r.manifest
        timings = m.get("timings", {})
        rows.append(
            [
                r.run_id,
                m.get("created_at", ""),
                m.get("kind", "?"),
                m.get("workload", ""),
                m.get("scheme", ""),
                m.get("trials", ""),
                f"{m.get('jobs', '')}",
                _num(timings.get("wall_s")),
                _num(timings.get("trials_per_s")),
            ]
        )
    return format_table(
        ["run", "created", "kind", "workload", "scheme", "trials", "jobs",
         "wall s", "trials/s"],
        rows,
        title=f"run ledger ({len(records)} runs)",
    )


def render_run(record: RunRecord) -> str:
    m = record.manifest
    rows = [[k, _val(m[k])] for k in CONFIG_KEYS if k in m]
    rows += [["created_at", m.get("created_at", "")]]
    rows += [
        [f"timing: {k}", _num(v)] for k, v in sorted(m.get("timings", {}).items())
    ]
    rows += [
        [f"counter: {k}", _num(v)] for k, v in sorted(m.get("counters", {}).items())
    ]
    artifacts = [
        name for name in (METRICS_NAME, EVENTS_NAME, TRACE_NAME)
        if (record.path / name).exists()
    ]
    rows += [["artifacts", ", ".join(artifacts) if artifacts else "(none)"]]
    return format_table(
        ["field", "value"], rows, title=f"run {record.run_id}"
    )


def diff_runs(a: RunRecord, b: RunRecord) -> str:
    """Configuration, timing, and counter deltas between two ledger runs."""
    ma, mb = a.manifest, b.manifest
    parts: list[str] = []

    config_rows = []
    for key in CONFIG_KEYS:
        va, vb = ma.get(key), mb.get(key)
        if va is None and vb is None:
            continue
        marker = "" if va == vb else "*"
        config_rows.append([key, _val(va), _val(vb), marker])
    parts.append(
        format_table(
            ["config", a.run_id, b.run_id, "differs"],
            config_rows,
            title=f"run diff: {a.run_id} vs {b.run_id}",
        )
    )

    ta, tb = ma.get("timings", {}), mb.get("timings", {})
    timing_rows = []
    for key in sorted(set(ta) | set(tb)):
        va, vb = ta.get(key), tb.get(key)
        timing_rows.append([key, _num(va), _num(vb), _delta(va, vb)])
    if timing_rows:
        parts.append(
            format_table(
                ["timing", a.run_id, b.run_id, "delta"], timing_rows
            )
        )

    ca, cb = ma.get("counters", {}), mb.get("counters", {})
    counter_rows = []
    for key in sorted(set(ca) | set(cb)):
        # A counter absent from one run is semantically zero there.
        va, vb = ca.get(key, 0), cb.get(key, 0)
        counter_rows.append([key, _num(va), _num(vb), _delta(va, vb)])
    if counter_rows:
        parts.append(
            format_table(
                ["counter", a.run_id, b.run_id, "delta"], counter_rows
            )
        )
    return "\n\n".join(parts)


def _val(v: object) -> str:
    return "" if v is None else str(v)


def _num(v: object) -> str:
    if v is None:
        return ""
    if isinstance(v, float):
        return f"{v:g}"
    return str(v)


def _delta(a: object, b: object) -> str:
    if not isinstance(a, (int, float)) or not isinstance(b, (int, float)):
        return ""
    d = b - a
    if a:
        return f"{d:+g} ({d / a * 100:+.1f}%)"
    return f"{d:+g}"


def utc_timestamp(clock: float | None = None) -> str:
    """ISO-8601 UTC second-resolution timestamp (ledger ``created_at``)."""
    return time.strftime(
        "%Y-%m-%dT%H:%M:%SZ", time.gmtime(time.time() if clock is None else clock)
    )
