"""Metric primitives: counters, gauges, histograms, timers.

A :class:`MetricsRegistry` is a flat namespace of metrics keyed by
dot-separated names (``sim.issue.c0.orig``, ``compile.pass.schedule.seconds``).
Conventions:

* **counters** — monotonically increasing integers/floats (events, cycles);
* **gauges** — last-write-wins values (pressure ratios, sizes);
* **histograms** — running ``count/sum/min/max`` summaries of observations
  (per-block schedule lengths, per-pass seconds).  Timers are histograms of
  seconds, fed by :meth:`MetricsRegistry.timer`.

Everything is in-process and synchronous; the registry is cheap enough to
update from compile-time code but is never touched from the simulator's
per-instruction inner loop (see ``docs/observability.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.utils.tables import format_table


@dataclass
class HistogramSummary:
    """Running summary of a stream of observations."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "HistogramSummary") -> None:
        """Fold another summary in (the cross-process aggregation path)."""
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramSummary":
        hist = cls(
            count=int(data.get("count", 0)), total=float(data.get("total", 0.0))
        )
        if hist.count:
            hist.min = float(data.get("min", hist.min))
            hist.max = float(data.get("max", hist.max))
        return hist

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
        }


class _Timer:
    """Context manager feeding one histogram with elapsed seconds.

    Also honours the span protocol (``set`` is accepted and ignored) so the
    telemetry facade can hand one out when metrics are on but tracing is off.
    """

    __slots__ = ("_registry", "_name", "_t0")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._registry.observe(self._name, time.perf_counter() - self._t0)

    def set(self, **args) -> "_Timer":
        return self


@dataclass
class MetricsRegistry:
    """Flat, process-local store of counters, gauges, and histograms."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)

    # -- updates ---------------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    def timer(self, name: str) -> _Timer:
        """Time a ``with`` block into the histogram ``name`` (seconds)."""
        return _Timer(self, name)

    # -- cross-process merging -------------------------------------------------
    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict (usually from a worker process) in.

        Counters and histogram summaries accumulate; gauges are
        last-write-wins, matching their single-process semantics.  This is
        the one merge point for worker-side telemetry: a worker batches all
        of a shard's metric updates locally and ships one snapshot back, so
        the merged registry is bit-identical to a serial run's for every
        deterministic metric (see ``docs/observability.md``).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            incoming = HistogramSummary.from_dict(data)
            if not incoming.count:
                continue
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = incoming
            else:
                hist.merge(incoming)

    # -- export ----------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable dump of every metric."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: h.as_dict() for k, h in self.histograms.items()},
        }

    def render(self, title: str = "telemetry metrics") -> str:
        """All metrics as aligned text tables (the eval-layer house style)."""
        parts = []
        if self.counters:
            rows = [[k, f"{v:g}"] for k, v in sorted(self.counters.items())]
            parts.append(format_table(["counter", "value"], rows, title=title))
        if self.gauges:
            rows = [[k, f"{v:g}"] for k, v in sorted(self.gauges.items())]
            parts.append(format_table(["gauge", "value"], rows))
        if self.histograms:
            rows = [
                [k, h.count, f"{h.mean:g}", f"{h.min:g}", f"{h.max:g}", f"{h.total:g}"]
                for k, h in sorted(self.histograms.items())
            ]
            parts.append(
                format_table(["histogram", "count", "mean", "min", "max", "total"], rows)
            )
        if not parts:
            return f"{title}: (no metrics recorded)"
        return "\n\n".join(parts)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
