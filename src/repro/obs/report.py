"""Summarize a captured trace into the repo's text-table house style.

``python -m repro report trace --file run.jsonl`` renders three views:

* **span summary** — every span name with count / total / mean / max
  duration, sorted by total time (the profile view);
* **pipeline passes** — the ``cat == "pass"`` spans in execution order with
  their instruction and block deltas (the compile-shape view);
* **campaigns** — per-campaign trial counts and outcome breakdowns built
  from the per-trial instant events.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.trace import read_trace
from repro.utils.tables import format_table


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1e3:.2f}ms"


def span_summary_table(events: list[dict]) -> str:
    spans = [e for e in events if e.get("ev") == "X"]
    agg: dict[str, list[float]] = {}
    for e in spans:
        agg.setdefault(e["name"], []).append(float(e.get("dur", 0.0)))
    rows = []
    for name, durs in sorted(agg.items(), key=lambda kv: -sum(kv[1])):
        rows.append(
            [name, len(durs), _fmt_s(sum(durs)), _fmt_s(sum(durs) / len(durs)),
             _fmt_s(max(durs))]
        )
    if not rows:
        return "span summary: (no spans in trace)"
    return format_table(
        ["span", "count", "total", "mean", "max"], rows, title="span summary"
    )


def pass_table(events: list[dict]) -> str:
    passes = [e for e in events if e.get("ev") == "X" and e.get("cat") == "pass"]
    passes.sort(key=lambda e: float(e.get("ts", 0.0)))
    rows = []
    for e in passes:
        args = e.get("args", {})
        before = args.get("instructions_before")
        after = args.get("instructions_after")
        delta = "" if before is None or after is None else f"{after - before:+d}"
        rows.append(
            [
                e["name"].removeprefix("pass:"),
                "" if before is None else before,
                "" if after is None else after,
                delta,
                args.get("blocks_after", ""),
                _fmt_s(float(e.get("dur", 0.0))),
                "yes" if args.get("changed") else "no",
            ]
        )
    if not rows:
        return "pipeline passes: (no pass spans in trace)"
    return format_table(
        ["pass", "insns before", "insns after", "delta", "blocks", "time", "changed"],
        rows,
        title="pipeline passes",
    )


def campaign_table(events: list[dict]) -> str:
    campaigns = [
        e for e in events if e.get("ev") == "X" and e.get("cat") == "campaign"
    ]
    trials = [
        e for e in events
        if e.get("ev") == "I" and e.get("cat") == "campaign"
        and e.get("name") == "trial"
    ]
    if not campaigns and not trials:
        return "campaigns: (no campaign events in trace)"
    rows = []
    for i, c in enumerate(campaigns):
        args = c.get("args", {})
        start = float(c.get("ts", 0.0))
        end = start + float(c.get("dur", 0.0))
        outcomes: dict[str, int] = {}
        for t in trials:
            if start <= float(t.get("ts", 0.0)) <= end:
                out = t.get("args", {}).get("outcome", "?")
                outcomes[out] = outcomes.get(out, 0) + 1
        breakdown = " ".join(f"{k}={v}" for k, v in sorted(outcomes.items()))
        rows.append(
            [
                i,
                args.get("trials", sum(outcomes.values())),
                args.get("faults", ""),
                _fmt_s(float(c.get("dur", 0.0))),
                breakdown,
            ]
        )
    return format_table(
        ["campaign", "trials", "faults", "time", "outcomes"],
        rows,
        title="fault campaigns",
    )


def summarize_trace(events: list[dict]) -> str:
    """The full three-table report for one trace."""
    return "\n\n".join(
        [span_summary_table(events), pass_table(events), campaign_table(events)]
    )


def summarize_trace_file(path: str | Path) -> str:
    return summarize_trace(read_trace(path))
