"""Export JSON-lines traces to the Chrome trace-event format.

The output loads directly in ``chrome://tracing`` or https://ui.perfetto.dev
and renders the compile pipeline, simulator runs, and fault campaigns as a
nested timeline.  We emit the JSON *object* flavour
(``{"traceEvents": [...]}``) with complete (``"ph": "X"``) events for spans
and instant (``"ph": "i"``) events, timestamps in microseconds as the format
requires.

Parent-process events land in one synthetic process whose threads are the
trace categories (``compile``, ``sim``, ``campaign`` — one swim lane each).
Events merged from pool workers carry a ``"pid"`` field (see
:meth:`repro.obs.trace.Tracer.absorb`) and get **one Chrome process lane per
worker pid**, so pool spin-up, per-worker re-decode, and shard phases are
directly visible next to the parent timeline.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.trace import read_trace

#: Synthetic pid for the parent timeline (worker events carry real pids).
_PID = 1

#: Stable lane order for known categories; unknown categories append after.
_LANE_ORDER = ("compile", "sim", "campaign", "eval", "worker")


def _lane_ids(events: Iterable[dict]) -> dict[str, int]:
    cats: list[str] = [c for c in _LANE_ORDER]
    for ev in events:
        cat = ev.get("cat") or "misc"
        if cat not in cats:
            cats.append(cat)
    return {cat: i + 1 for i, cat in enumerate(cats)}


def to_chrome_events(events: Iterable[dict]) -> list[dict]:
    """Convert repro trace events to a Chrome ``traceEvents`` list."""
    events = list(events)
    lanes = _lane_ids(events)
    out: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        },
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_sort_index",
            "args": {"sort_index": 0},
        },
    ]
    used: set[tuple[int, str]] = set()
    worker_pids: list[int] = []
    for ev in events:
        cat = ev.get("cat") or "misc"
        pid = int(ev.get("pid", _PID))
        if pid != _PID and pid not in worker_pids:
            worker_pids.append(pid)
        used.add((pid, cat))
        base = {
            "name": ev.get("name", "?"),
            "cat": cat,
            "pid": pid,
            "tid": lanes[cat],
            "ts": float(ev.get("ts", 0.0)) * 1e6,
            "args": ev.get("args", {}),
        }
        if ev.get("ev") == "X":
            base["ph"] = "X"
            base["dur"] = float(ev.get("dur", 0.0)) * 1e6
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        out.append(base)
    for i, pid in enumerate(worker_pids):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"worker {pid}"},
            }
        )
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_sort_index",
                "args": {"sort_index": i + 1},
            }
        )
    for pid, cat in sorted(used, key=lambda pc: (pc[0], lanes[pc[1]])):
        out.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": lanes[cat],
                "name": "thread_name",
                "args": {"name": cat},
            }
        )
    return out


def export_chrome_trace(
    events: Iterable[dict], out_path: str | Path
) -> Path:
    """Write ``events`` (repro schema) as a Chrome trace-event JSON file."""
    out_path = Path(out_path)
    payload = {
        "traceEvents": to_chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    out_path.write_text(json.dumps(payload))
    return out_path


def convert_trace_file(trace_path: str | Path, out_path: str | Path) -> Path:
    """Read a JSON-lines trace and write its Chrome trace-event twin."""
    return export_chrome_trace(read_trace(trace_path), out_path)
