"""Export JSON-lines traces to the Chrome trace-event format.

The output loads directly in ``chrome://tracing`` or https://ui.perfetto.dev
and renders the compile pipeline, simulator runs, and fault campaigns as a
nested timeline.  We emit the JSON *object* flavour
(``{"traceEvents": [...]}``) with complete (``"ph": "X"``) events for spans
and instant (``"ph": "i"``) events, timestamps in microseconds as the format
requires.

Events are grouped into one synthetic process; the trace category becomes
the thread so each subsystem (``compile``, ``sim``, ``campaign``) gets its
own swim lane.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.obs.trace import read_trace

_PID = 1

#: Stable lane order for known categories; unknown categories append after.
_LANE_ORDER = ("compile", "sim", "campaign", "eval")


def _lane_ids(events: Iterable[dict]) -> dict[str, int]:
    cats: list[str] = [c for c in _LANE_ORDER]
    for ev in events:
        cat = ev.get("cat") or "misc"
        if cat not in cats:
            cats.append(cat)
    return {cat: i + 1 for i, cat in enumerate(cats)}


def to_chrome_events(events: Iterable[dict]) -> list[dict]:
    """Convert repro trace events to a Chrome ``traceEvents`` list."""
    events = list(events)
    lanes = _lane_ids(events)
    out: list[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    used: set[str] = set()
    for ev in events:
        cat = ev.get("cat") or "misc"
        used.add(cat)
        tid = lanes[cat]
        base = {
            "name": ev.get("name", "?"),
            "cat": cat,
            "pid": _PID,
            "tid": tid,
            "ts": float(ev.get("ts", 0.0)) * 1e6,
            "args": ev.get("args", {}),
        }
        if ev.get("ev") == "X":
            base["ph"] = "X"
            base["dur"] = float(ev.get("dur", 0.0)) * 1e6
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        out.append(base)
    for cat in sorted(used, key=lambda c: lanes[c]):
        out.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": lanes[cat],
                "name": "thread_name",
                "args": {"name": cat},
            }
        )
    return out


def export_chrome_trace(
    events: Iterable[dict], out_path: str | Path
) -> Path:
    """Write ``events`` (repro schema) as a Chrome trace-event JSON file."""
    out_path = Path(out_path)
    payload = {
        "traceEvents": to_chrome_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }
    out_path.write_text(json.dumps(payload))
    return out_path


def convert_trace_file(trace_path: str | Path, out_path: str | Path) -> Path:
    """Read a JSON-lines trace and write its Chrome trace-event twin."""
    return export_chrome_trace(read_trace(trace_path), out_path)
