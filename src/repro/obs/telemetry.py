"""The process-global telemetry facade.

Every instrumented call site goes through a :class:`Telemetry` object —
usually the process-global default from :func:`get_telemetry`.  The default
is **disabled**: every method is a constant-time no-op returning shared
singletons, so instrumentation costs one attribute check when telemetry is
off (hot loops additionally hoist ``tel.enabled`` into a local before
iterating).  :func:`configure` swaps in a live instance with a metrics
registry and/or a tracer; :func:`reset` restores the no-op default.

Call sites never need ``None`` checks or ``try/except`` — a disabled
telemetry behaves exactly like an enabled one that records nothing.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any

from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **args: Any) -> "_NullSpan":
        return self


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()
_NULL_TIMER = _NullTimer()


class _TimedSpan:
    """A span that also feeds its duration into a metrics histogram."""

    __slots__ = ("_span", "_metrics", "_timer_name", "_t0")

    def __init__(self, span: Span, metrics: MetricsRegistry, timer_name: str) -> None:
        self._span = span
        self._metrics = metrics
        self._timer_name = timer_name

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        return self._span.__enter__()

    def __exit__(self, *exc) -> None:
        self._span.__exit__(*exc)
        self._metrics.observe(self._timer_name, time.perf_counter() - self._t0)


class Telemetry:
    """Bundle of an optional metrics registry, tracer, and event log."""

    __slots__ = ("enabled", "metrics", "tracer", "events")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        events: EventLog | None = None,
        enabled: bool = True,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.events = events
        self.enabled = enabled and (
            metrics is not None or tracer is not None or events is not None
        )

    # -- spans -----------------------------------------------------------------
    def span(self, name: str, cat: str = "", timer: str | None = None, **args: Any):
        """Open a trace span; ``timer`` also records its duration as a metric."""
        if not self.enabled:
            return NULL_SPAN
        if self.tracer is not None:
            sp = self.tracer.span(name, cat, **args)
            if timer is not None and self.metrics is not None:
                return _TimedSpan(sp, self.metrics, timer)
            return sp
        if timer is not None and self.metrics is not None:
            return self.metrics.timer(timer)
        return NULL_SPAN

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        if self.enabled and self.tracer is not None:
            self.tracer.instant(name, cat, **args)

    # -- structured events -----------------------------------------------------
    def event(self, kind: str, **fields: Any) -> None:
        """Append one structured event to the run event log (if configured)."""
        if self.enabled and self.events is not None:
            self.events.emit(kind, **fields)

    # -- metrics ---------------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.observe(name, value)

    def timer(self, name: str):
        if self.enabled and self.metrics is not None:
            return self.metrics.timer(name)
        return _NULL_TIMER

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()
        if self.events is not None:
            self.events.close()


#: The disabled default every call site sees until ``configure`` runs.
NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-global telemetry (the no-op default unless configured)."""
    return _current


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` globally; returns the previous one (for restore)."""
    global _current
    previous = _current
    _current = telemetry
    return previous


def configure(
    trace_path: str | Path | None = None,
    metrics: bool = True,
    keep_events: bool | None = None,
    events_path: str | Path | None = None,
) -> Telemetry:
    """Build and install a live telemetry.

    ``trace_path`` opens a JSON-lines tracer sink; ``metrics`` attaches a
    registry (on by default — metrics are cheap); ``events_path`` attaches
    a structured :class:`~repro.obs.events.EventLog`.  Returns the
    installed instance so callers can render/flush it at shutdown.
    """
    registry = MetricsRegistry() if metrics else None
    tracer = (
        Tracer(path=trace_path, keep_events=keep_events)
        if trace_path is not None or keep_events
        else None
    )
    event_log = EventLog(path=events_path) if events_path is not None else None
    telemetry = Telemetry(metrics=registry, tracer=tracer, events=event_log)
    set_telemetry(telemetry)
    return telemetry


def reset() -> None:
    """Close any active tracer/event log and restore the disabled default."""
    global _current, _capture_active
    _current.close()
    _current = NULL_TELEMETRY
    _capture_active = False


# -- worker-side capture -------------------------------------------------------
#
# A pool worker cannot share the parent's sinks (a forked trace-file handle
# would interleave JSON lines from every process), so instead it records
# everything *in memory* and ships one snapshot per task back with the task's
# result.  The parent rebases the spans onto its own timeline (tagged with
# the worker's pid — Chrome export turns that into per-worker lanes) and
# folds the metrics into its registry.  One payload per shard, not one
# update per trial: the batching contract that keeps worker telemetry off
# the trial hot path.


#: Whether this process currently runs a capture telemetry installed by
#: :func:`configure_worker_capture` (as opposed to any other live telemetry).
_capture_active = False


def configure_worker_capture() -> Telemetry:
    """Install an in-memory capture telemetry in a pool worker."""
    global _capture_active
    telemetry = Telemetry(
        metrics=MetricsRegistry(), tracer=Tracer(keep_events=True)
    )
    set_telemetry(telemetry)
    _capture_active = True
    return telemetry


def ensure_worker_capture(on: bool) -> None:
    """Align this worker's capture state with the parent's map-time decision.

    Workers in a *persistent* pool outlive the telemetry configuration they
    were spawned under: the parent may run one map with telemetry live and
    the next without (or vice versa — a serve daemon swaps per-job
    telemetries in and out).  Called at the top of every pooled task, this
    turns capture on or off to match, and is a no-op when already aligned —
    in particular it never clears an active capture's pending buffers.
    """
    if on and not _capture_active:
        configure_worker_capture()
    elif not on and _capture_active:
        reset()


def drain_worker_snapshot() -> dict | None:
    """Capture-and-clear this worker's telemetry as one picklable payload.

    Returns ``None`` when no capture telemetry is installed (workers of a
    telemetry-less parent).  Draining clears the worker's buffers so each
    task's payload contains exactly the events and metric deltas produced
    since the previous drain — merging payloads therefore never double
    counts, and worker-merged counters stay bit-identical to a serial run.
    """
    tel = _current
    if not tel.enabled or tel.tracer is None or tel.metrics is None:
        return None
    snapshot = {
        "pid": os.getpid(),
        "epoch": tel.tracer.epoch,
        "events": list(tel.tracer.events),
        "metrics": tel.metrics.snapshot(),
    }
    tel.tracer.events.clear()
    tel.metrics.clear()
    return snapshot


def absorb_worker_snapshot(
    snapshot: dict | None, telemetry: Telemetry | None = None
) -> None:
    """Merge one worker snapshot into the (parent) telemetry."""
    if snapshot is None:
        return
    tel = telemetry if telemetry is not None else _current
    if not tel.enabled:
        return
    if tel.tracer is not None and snapshot.get("events"):
        tel.tracer.absorb(
            snapshot["events"],
            pid=int(snapshot.get("pid", 0)),
            epoch=float(snapshot.get("epoch", tel.tracer.epoch)),
        )
    if tel.metrics is not None and snapshot.get("metrics"):
        tel.metrics.merge_snapshot(snapshot["metrics"])
