"""The process-global telemetry facade.

Every instrumented call site goes through a :class:`Telemetry` object —
usually the process-global default from :func:`get_telemetry`.  The default
is **disabled**: every method is a constant-time no-op returning shared
singletons, so instrumentation costs one attribute check when telemetry is
off (hot loops additionally hoist ``tel.enabled`` into a local before
iterating).  :func:`configure` swaps in a live instance with a metrics
registry and/or a tracer; :func:`reset` restores the no-op default.

Call sites never need ``None`` checks or ``try/except`` — a disabled
telemetry behaves exactly like an enabled one that records nothing.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **args: Any) -> "_NullSpan":
        return self


class _NullTimer:
    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> None:
        return None


NULL_SPAN = _NullSpan()
_NULL_TIMER = _NullTimer()


class _TimedSpan:
    """A span that also feeds its duration into a metrics histogram."""

    __slots__ = ("_span", "_metrics", "_timer_name", "_t0")

    def __init__(self, span: Span, metrics: MetricsRegistry, timer_name: str) -> None:
        self._span = span
        self._metrics = metrics
        self._timer_name = timer_name

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        return self._span.__enter__()

    def __exit__(self, *exc) -> None:
        self._span.__exit__(*exc)
        self._metrics.observe(self._timer_name, time.perf_counter() - self._t0)


class Telemetry:
    """Bundle of an optional metrics registry and an optional tracer."""

    __slots__ = ("enabled", "metrics", "tracer")

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
        enabled: bool = True,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.enabled = enabled and (metrics is not None or tracer is not None)

    # -- spans -----------------------------------------------------------------
    def span(self, name: str, cat: str = "", timer: str | None = None, **args: Any):
        """Open a trace span; ``timer`` also records its duration as a metric."""
        if not self.enabled:
            return NULL_SPAN
        if self.tracer is not None:
            sp = self.tracer.span(name, cat, **args)
            if timer is not None and self.metrics is not None:
                return _TimedSpan(sp, self.metrics, timer)
            return sp
        if timer is not None and self.metrics is not None:
            return self.metrics.timer(timer)
        return NULL_SPAN

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        if self.enabled and self.tracer is not None:
            self.tracer.instant(name, cat, **args)

    # -- metrics ---------------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.count(name, n)

    def gauge(self, name: str, value: float) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        if self.enabled and self.metrics is not None:
            self.metrics.observe(name, value)

    def timer(self, name: str):
        if self.enabled and self.metrics is not None:
            return self.metrics.timer(name)
        return _NULL_TIMER

    # -- lifecycle -------------------------------------------------------------
    def close(self) -> None:
        if self.tracer is not None:
            self.tracer.close()


#: The disabled default every call site sees until ``configure`` runs.
NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """The process-global telemetry (the no-op default unless configured)."""
    return _current


def set_telemetry(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` globally; returns the previous one (for restore)."""
    global _current
    previous = _current
    _current = telemetry
    return previous


def configure(
    trace_path: str | Path | None = None,
    metrics: bool = True,
    keep_events: bool | None = None,
) -> Telemetry:
    """Build and install a live telemetry.

    ``trace_path`` opens a JSON-lines tracer sink; ``metrics`` attaches a
    registry (on by default — metrics are cheap).  Returns the installed
    instance so callers can render/flush it at shutdown.
    """
    registry = MetricsRegistry() if metrics else None
    tracer = (
        Tracer(path=trace_path, keep_events=keep_events)
        if trace_path is not None or keep_events
        else None
    )
    telemetry = Telemetry(metrics=registry, tracer=tracer)
    set_telemetry(telemetry)
    return telemetry


def reset() -> None:
    """Close any active tracer and restore the disabled default."""
    global _current
    _current.close()
    _current = NULL_TELEMETRY
