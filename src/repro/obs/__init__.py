"""Unified telemetry: metrics, traces, events, progress, and the run ledger.

The package has these moving parts:

* :mod:`repro.obs.metrics` — counters / gauges / histograms / timers in a
  :class:`~repro.obs.metrics.MetricsRegistry`, mergeable across processes;
* :mod:`repro.obs.trace` — a span :class:`~repro.obs.trace.Tracer` writing
  JSON lines, convertible to Chrome trace-event files
  (:mod:`repro.obs.chrome`, with one lane per worker pid) and summarizable
  back into text tables (:mod:`repro.obs.report`);
* :mod:`repro.obs.events` — a structured, append-only JSONL event log of
  run lifecycle milestones;
* :mod:`repro.obs.ledger` — the content-addressed run ledger under
  ``results/runs/`` (manifest + metrics + events + trace per run);
* :mod:`repro.obs.export` — registry snapshots as Prometheus text or JSON;
* :mod:`repro.obs.telemetry` — the process-global
  :class:`~repro.obs.telemetry.Telemetry` facade every instrumented call
  site uses, plus the worker-side capture/merge hooks the process pool
  rides on.  Disabled by default: instrumentation is a no-op until
  :func:`~repro.obs.telemetry.configure` runs (the CLI's ``--trace`` /
  ``--metrics`` flags do exactly that).

See ``docs/observability.md`` for usage, the metric naming scheme, and the
zero-overhead ground rules.
"""

from repro.obs.chrome import convert_trace_file, export_chrome_trace
from repro.obs.events import EventLog, read_events
from repro.obs.export import to_json, to_prometheus, write_metrics
from repro.obs.ledger import (
    RunLedger,
    RunRecord,
    diff_runs,
    git_revision,
    render_run,
    render_run_list,
)
from repro.obs.metrics import HistogramSummary, MetricsRegistry
from repro.obs.progress import (
    ProgressCallback,
    ProgressEvent,
    ProgressTracker,
    print_progress,
)
from repro.obs.report import summarize_trace, summarize_trace_file
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    absorb_worker_snapshot,
    configure,
    configure_worker_capture,
    drain_worker_snapshot,
    ensure_worker_capture,
    get_telemetry,
    reset,
    set_telemetry,
)
from repro.obs.trace import Span, Tracer, read_trace

__all__ = [
    "EventLog",
    "HistogramSummary",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "ProgressCallback",
    "ProgressEvent",
    "ProgressTracker",
    "RunLedger",
    "RunRecord",
    "Span",
    "Telemetry",
    "Tracer",
    "absorb_worker_snapshot",
    "configure",
    "configure_worker_capture",
    "convert_trace_file",
    "diff_runs",
    "drain_worker_snapshot",
    "ensure_worker_capture",
    "export_chrome_trace",
    "get_telemetry",
    "git_revision",
    "print_progress",
    "read_events",
    "read_trace",
    "render_run",
    "render_run_list",
    "reset",
    "set_telemetry",
    "summarize_trace",
    "summarize_trace_file",
    "to_json",
    "to_prometheus",
    "write_metrics",
]
