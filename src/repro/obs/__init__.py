"""Unified telemetry: metrics, execution traces, and campaign progress.

The package has three moving parts:

* :mod:`repro.obs.metrics` — counters / gauges / histograms / timers in a
  :class:`~repro.obs.metrics.MetricsRegistry`;
* :mod:`repro.obs.trace` — a span :class:`~repro.obs.trace.Tracer` writing
  JSON lines, convertible to Chrome trace-event files
  (:mod:`repro.obs.chrome`) and summarizable back into text tables
  (:mod:`repro.obs.report`);
* :mod:`repro.obs.telemetry` — the process-global
  :class:`~repro.obs.telemetry.Telemetry` facade every instrumented call
  site uses.  Disabled by default: instrumentation is a no-op until
  :func:`~repro.obs.telemetry.configure` runs (the CLI's ``--trace`` /
  ``--metrics`` flags do exactly that).

See ``docs/observability.md`` for usage, the metric naming scheme, and the
zero-overhead ground rules.
"""

from repro.obs.chrome import convert_trace_file, export_chrome_trace
from repro.obs.metrics import HistogramSummary, MetricsRegistry
from repro.obs.progress import (
    ProgressCallback,
    ProgressEvent,
    ProgressTracker,
    print_progress,
)
from repro.obs.report import summarize_trace, summarize_trace_file
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    configure,
    get_telemetry,
    reset,
    set_telemetry,
)
from repro.obs.trace import Span, Tracer, read_trace

__all__ = [
    "HistogramSummary",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "ProgressCallback",
    "ProgressEvent",
    "ProgressTracker",
    "Span",
    "Telemetry",
    "Tracer",
    "configure",
    "convert_trace_file",
    "export_chrome_trace",
    "get_telemetry",
    "print_progress",
    "read_trace",
    "reset",
    "set_telemetry",
    "summarize_trace",
    "summarize_trace_file",
]
