"""Span-based execution tracer with a JSON-lines on-disk format.

One :class:`Tracer` serializes a single logical timeline: spans open with
:meth:`Tracer.span` (a context manager), may nest arbitrarily, and are
emitted as one *complete* event per span when they close.  Instant events
mark points in time (per-trial campaign outcomes, cache-corruption
warnings).  Timestamps are seconds relative to the tracer's epoch, so traces
are diffable across runs.

Event schema (one JSON object per line):

``{"ev": "X", "name": ..., "cat": ..., "ts": ..., "dur": ..., "depth": ...,
"args": {...}}`` for spans, and ``{"ev": "I", ...}`` (no ``dur``) for
instants.  ``depth`` is the span-nesting depth at open time (0 = top level).
Events merged from a worker process additionally carry ``"pid"`` (see
:meth:`Tracer.absorb`); events without it belong to the parent timeline.
The format converts 1:1 to the Chrome trace-event format — see
:mod:`repro.obs.chrome`.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable, IO


class Span:
    """An open span; emitted to the tracer's sink when the ``with`` exits.

    Arguments passed at open time can be extended or overwritten through
    :meth:`set` while the span is live — the common pattern for recording
    results (instruction deltas, outcome counts) discovered inside the span.
    """

    __slots__ = ("_tracer", "name", "cat", "args", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.depth = 0
        self._start = 0.0

    def set(self, **args: Any) -> "Span":
        """Attach or overwrite argument fields before the span closes."""
        self.args.update(args)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.depth = len(tracer._stack)
        tracer._stack.append(self)
        self._start = tracer._now()
        return self

    def __exit__(self, *exc) -> None:
        tracer = self._tracer
        end = tracer._now()
        tracer._stack.pop()
        tracer._emit(
            {
                "ev": "X",
                "name": self.name,
                "cat": self.cat,
                "ts": self._start - tracer._epoch,
                "dur": end - self._start,
                "depth": self.depth,
                "args": self.args,
            }
        )


class Tracer:
    """Collects events in memory and/or streams them as JSON lines.

    ``path`` opens a file sink (one JSON object per line, flushed on
    :meth:`close`); without it events accumulate in :attr:`events` — handy
    for tests and in-process summaries.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        clock: Callable[[], float] = time.perf_counter,
        keep_events: bool | None = None,
    ) -> None:
        self._now = clock
        self._epoch = clock()
        self._stack: list[Span] = []
        self._sink: IO[str] | None = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self._sink = self.path.open("w", encoding="utf-8")
        # Default: keep events in memory only when there is no file sink.
        self.keep_events = (self._sink is None) if keep_events is None else keep_events
        self.events: list[dict] = []

    # -- emission --------------------------------------------------------------
    def span(self, name: str, cat: str = "", **args: Any) -> Span:
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        self._emit(
            {
                "ev": "I",
                "name": name,
                "cat": cat,
                "ts": self._now() - self._epoch,
                "depth": len(self._stack),
                "args": args,
            }
        )

    def _emit(self, event: dict) -> None:
        if self.keep_events:
            self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event) + "\n")

    # -- cross-process merging -------------------------------------------------
    @property
    def epoch(self) -> float:
        """The tracer's absolute epoch on its clock (for cross-process rebasing)."""
        return self._epoch

    def absorb(self, events: list[dict], pid: int, epoch: float) -> None:
        """Merge events captured by a worker tracer into this timeline.

        ``events`` carry timestamps relative to the worker tracer's
        ``epoch`` (an absolute reading of the same monotonic clock —
        ``time.perf_counter`` is system-wide on Linux), so rebasing is a
        constant offset.  Each merged event is tagged with the worker's
        ``pid``, which the Chrome exporter turns into a per-worker lane.
        """
        offset = epoch - self._epoch
        for ev in events:
            merged = dict(ev)
            merged["ts"] = float(ev.get("ts", 0.0)) + offset
            merged["pid"] = pid
            self._emit(merged)

    # -- lifecycle -------------------------------------------------------------
    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


def read_trace(path: str | Path) -> list[dict]:
    """Load a JSON-lines trace file back into event dicts.

    Blank lines are skipped; a malformed line raises ``ValueError`` naming
    its line number, so truncated traces fail loudly rather than silently
    dropping the tail.
    """
    events = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: malformed trace line: {exc}") from exc
    return events
