"""Campaign progress reporting: heartbeats with throughput and ETA.

Monte-Carlo fault campaigns are the longest-running operation in the repo
(minutes at paper-sized trial counts over every configuration), and until
now they were completely silent.  :class:`ProgressTracker` turns a trial
stream into periodic :class:`ProgressEvent` heartbeats: the campaign driver
calls :meth:`ProgressTracker.step` once per trial and the user callback
fires every ``every`` trials plus once at the end.

When a structured event log is configured (see :mod:`repro.obs.events`),
every heartbeat is additionally appended to it as a ``heartbeat`` event —
so a run's ledger entry records its live throughput curve, not just the
final totals.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class ProgressEvent:
    """One heartbeat of a long-running campaign."""

    done: int  #: trials completed so far
    total: int  #: trials requested
    elapsed_s: float
    rate: float  #: trials per second (0.0 until the first trial lands)
    eta_s: float  #: estimated seconds remaining (0.0 when rate unknown)
    counts: dict  #: outcome-name -> count snapshot

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    def render(self) -> str:
        pct = self.fraction * 100.0
        return (
            f"{self.done}/{self.total} trials ({pct:.0f}%) "
            f"{self.rate:.1f}/s eta {self.eta_s:.1f}s"
        )


ProgressCallback = Callable[[ProgressEvent], None]


class ProgressTracker:
    """Drives a :class:`ProgressCallback` from a stream of completed trials."""

    def __init__(
        self,
        total: int,
        callback: ProgressCallback | None,
        every: int = 25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if every < 1:
            raise ValueError(f"heartbeat interval must be >= 1, got {every}")
        self.total = total
        self.callback = callback
        self.every = every
        self._clock = clock
        self._t0 = clock()
        self.done = 0
        self.n_events = 0

    def _event(self, counts: dict) -> ProgressEvent:
        elapsed = self._clock() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self.done)
        eta = remaining / rate if rate > 0 else 0.0
        return ProgressEvent(
            done=self.done,
            total=self.total,
            elapsed_s=elapsed,
            rate=rate,
            eta_s=eta,
            counts=dict(counts),
        )

    def step(self, counts: dict) -> None:
        """Record one finished trial; fire the callback on heartbeat trials."""
        self.advance(1, counts)

    def advance(self, n: int, counts: dict) -> None:
        """Record ``n`` finished trials at once.

        This is the cross-worker aggregation path: when a campaign or sweep
        fans out over a process pool, the parent advances one shared
        tracker by a whole shard (or grid point) as each worker result
        lands.  The callback fires whenever the batch crosses a heartbeat
        boundary, and once at the end.
        """
        if n < 0:
            raise ValueError(f"cannot advance by {n}")
        before = self.done
        self.done += n
        if self.callback is None or n == 0:
            return
        if self.done // self.every > before // self.every or self.done >= self.total:
            self.n_events += 1
            event = self._event(counts)
            from repro.obs.telemetry import get_telemetry

            get_telemetry().event(
                "heartbeat",
                done=event.done,
                total=event.total,
                rate=round(event.rate, 2),
                eta_s=round(event.eta_s, 2),
            )
            self.callback(event)


def print_progress(event: ProgressEvent) -> None:
    """A ready-made callback: one status line per heartbeat on stderr."""
    print(f"  [campaign] {event.render()}", file=sys.stderr)
