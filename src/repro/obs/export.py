"""Metrics snapshot export: Prometheus text format and JSON.

The telemetry :class:`~repro.obs.metrics.MetricsRegistry` is in-process and
flat; this module turns one registry snapshot into the two interchange
formats the rest of the tooling consumes:

* **Prometheus text exposition format** (version 0.0.4) — the format a
  future ``repro serve`` daemon will answer ``GET /metrics`` with, and the
  one scrapeable by any Prometheus/OpenMetrics collector today via the
  node-exporter textfile collector;
* **JSON** — the ``metrics.json`` artifact stored per run in the run
  ledger (:mod:`repro.obs.ledger`).

Metric names are sanitized to Prometheus conventions (``[a-zA-Z0-9_:]``,
dots become underscores) and prefixed with ``repro_``.  Counters export
with a ``_total`` suffix; histograms export their running summary as
``_count`` / ``_sum`` plus ``_min`` / ``_max`` gauges (the registry keeps
summaries, not buckets).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.metrics import MetricsRegistry

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Every exported metric family is namespaced under this prefix.
PREFIX = "repro"


def prometheus_name(name: str) -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    sane = _NAME_RE.sub("_", name.replace(".", "_"))
    if sane and sane[0].isdigit():
        sane = f"_{sane}"
    return f"{PREFIX}_{sane}"


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(snapshot: MetricsRegistry | dict) -> str:
    """Render a registry (or its :meth:`snapshot` dict) as Prometheus text."""
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    lines: list[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"{prometheus_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name, hist in sorted(snapshot.get("histograms", {}).items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_fmt(hist.get('count', 0))}")
        lines.append(f"{metric}_sum {_fmt(hist.get('total', 0.0))}")
        lines.append(f"{metric}_min {_fmt(hist.get('min', 0.0))}")
        lines.append(f"{metric}_max {_fmt(hist.get('max', 0.0))}")
    return "\n".join(lines) + "\n" if lines else ""


def to_json(snapshot: MetricsRegistry | dict, indent: int | None = 2) -> str:
    """Render a registry (or its :meth:`snapshot` dict) as a JSON document."""
    if isinstance(snapshot, MetricsRegistry):
        snapshot = snapshot.snapshot()
    return json.dumps(snapshot, indent=indent, sort_keys=True) + "\n"


def write_metrics(
    snapshot: MetricsRegistry | dict, out_path: str | Path
) -> Path:
    """Write a metrics snapshot to ``out_path``, format chosen by suffix.

    ``.prom`` / ``.txt`` → Prometheus text format; anything else → JSON.
    """
    out_path = Path(out_path)
    if out_path.suffix in (".prom", ".txt"):
        out_path.write_text(to_prometheus(snapshot))
    else:
        out_path.write_text(to_json(snapshot))
    return out_path
