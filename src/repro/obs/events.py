"""Structured run-event log (JSON lines, append-only).

Where the span tracer (:mod:`repro.obs.trace`) answers "where did the time
go?", the event log answers "what happened?": a durable, machine-readable
record of run lifecycle milestones — campaign start/end, shard completions,
heartbeats, worker losses, cache corruption — that survives the process and
lands in the run ledger (:mod:`repro.obs.ledger`) next to the manifest.

One JSON object per line::

    {"ts": 1754650000.123, "elapsed_s": 0.41, "kind": "shard-done",
     "shard": 3, "trials": 25, "pid": 41712}

``ts`` is absolute wall-clock seconds (``time.time``) so events from
different runs and machines are orderable; ``elapsed_s`` is seconds since
the log was opened, which makes single-run timings diffable across runs.
Every other field is caller-defined.  Emission goes through the telemetry
facade (``tel.event(kind, **fields)``) so instrumented code needs no
``None`` checks when no log is configured.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import IO, Any, Callable


class EventLog:
    """Appends structured events to a JSONL file (or memory, for tests)."""

    def __init__(
        self,
        path: str | Path | None = None,
        clock: Callable[[], float] = time.time,
        keep_events: bool | None = None,
    ) -> None:
        self._clock = clock
        self._t0 = clock()
        self._sink: IO[str] | None = None
        self.path = Path(path) if path is not None else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._sink = self.path.open("a", encoding="utf-8")
        self.keep_events = (self._sink is None) if keep_events is None else keep_events
        self.events: list[dict] = []

    def emit(self, kind: str, **fields: Any) -> None:
        now = self._clock()
        event = {
            "ts": now,
            "elapsed_s": round(now - self._t0, 6),
            "kind": kind,
            **fields,
        }
        if self.keep_events:
            self.events.append(event)
        if self._sink is not None:
            self._sink.write(json.dumps(event) + "\n")
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()
            self._sink = None


def read_events(path: str | Path) -> list[dict]:
    """Load an event log back into dicts.

    Blank lines are skipped.  A malformed *trailing* line (a crash
    mid-append) is dropped silently — the append-only format can tear at
    most its last line; a malformed line anywhere else raises
    ``ValueError`` naming the line, because that means the file is not an
    event log at all.
    """
    events: list[dict] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                break  # torn tail from a crash mid-append
            raise ValueError(f"{path}:{lineno}: malformed event line: {exc}") from exc
        if not isinstance(event, dict):
            raise ValueError(f"{path}:{lineno}: event is not an object")
        events.append(event)
    return events
