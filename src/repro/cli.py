"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``workloads``
    List the built-in benchmark programs.
``compile FILE|workload:NAME``
    Run the full pipeline and print statistics (optionally the final IR).
``lint FILE|workload:NAME``
    Static protection audit: sphere-of-replication invariants, check
    coverage, cluster placement, vulnerability windows
    (``--format text|json|sarif``, severity-gated exit code).
``prove FILE|workload:NAME``
    Static fault-coverage prover: per-site detectability verdicts
    (detected / masked / sdc-possible) for every registered fault model,
    with optional ``--validate N`` attributed trials checking each
    measured outcome against its site's verdict
    (``--format text|json|sarif``, severity-gated exit code).
``run FILE|workload:NAME``
    Compile and execute on the cycle-level simulator.
``inject FILE|workload:NAME``
    Monte-Carlo fault-injection campaign with outcome breakdown.
``sweep workload:NAME``
    Slowdown table over the (issue width x delay) grid, all schemes.
``report {table1,table2,table3,fig6,fig8,fig9,fig10}``
    Regenerate a paper table/figure (uses the result cache).
``report trace --file FILE``
    Summarize a captured telemetry trace (``--chrome OUT.json`` exports it
    for chrome://tracing / Perfetto).
``serve``
    Fault-tolerant campaign service: JSON HTTP API, durable job queue,
    retries with backoff, resume-on-restart (see ``docs/serve.md``).

Every command accepts ``--scheme/--issue/--delay`` where meaningful, plus
the telemetry flags ``--trace FILE`` (JSON-lines span trace) and
``--metrics`` (print a metrics summary on exit); see
``python -m repro <command> --help`` and ``docs/observability.md``.

``compile``, ``run``, ``inject`` and ``sweep`` additionally take ``--jobs
N`` (0 = all cores, default from ``REPRO_JOBS``): ``inject`` shards its
campaign over a process pool, ``sweep`` evaluates grid points
concurrently, and ``compile``/``run`` accept several programs and process
them in parallel.  Campaign results are bit-identical for a given seed
regardless of ``--jobs`` — see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.frontend import compile_source
from repro.ir.printer import print_program
from repro.ir.program import Program
from repro.machine.config import MachineConfig
from repro.pipeline import Scheme, compile_program
from repro.sim.executor import VLIWExecutor
from repro.utils.tables import format_table


def _load_program(spec: str) -> Program:
    if spec.startswith("workload:"):
        from repro.workloads import get_workload

        return get_workload(spec.split(":", 1)[1]).program
    path = Path(spec)
    if not path.exists():
        raise ReproError(f"no such file: {spec}")
    return compile_source(path.read_text(), name=path.stem)


def _machine(args) -> MachineConfig:
    return MachineConfig(
        issue_width=args.issue, inter_cluster_delay=args.delay
    )


def _add_common(
    p: argparse.ArgumentParser, scheme: bool = True, multi: bool = False
) -> None:
    if multi:
        p.add_argument(
            "program",
            nargs="+",
            help="minic source file(s) or workload:NAME(s); several run in parallel with --jobs",
        )
    else:
        p.add_argument("program", help="minic source file or workload:NAME")
    if scheme:
        from repro.schemes import scheme_names

        p.add_argument(
            "--scheme",
            choices=scheme_names(),
            default="casted",
            help="protection scheme (default: casted)",
        )
    p.add_argument("--issue", type=int, default=2, help="issue width per cluster")
    p.add_argument("--delay", type=int, default=1, help="inter-cluster delay")


def _add_jobs(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: $REPRO_JOBS or 1; 0 = all cores)",
    )


def _jobs(args) -> int:
    from repro.parallel import resolve_jobs

    try:
        return resolve_jobs(args.jobs)
    except ValueError as exc:
        raise ReproError(str(exc)) from exc


def _add_backend(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        choices=["compiled", "interp"],
        default=None,
        help="execution backend (default: $REPRO_SIM_BACKEND or compiled; "
        "interp is the differential-equivalence reference)",
    )


def _add_obs(p: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by every pipeline-running subcommand."""
    p.add_argument(
        "--trace",
        metavar="FILE",
        dest="trace_out",
        help="write a JSON-lines span trace (convert with: report trace --chrome)",
    )
    p.add_argument(
        "--metrics",
        action="store_true",
        help="collect telemetry metrics and print a summary on exit",
    )
    p.add_argument(
        "--metrics-out",
        metavar="FILE",
        dest="metrics_out",
        help="write the final metrics snapshot to FILE "
        "(.prom/.txt = Prometheus text format, anything else = JSON)",
    )
    p.add_argument(
        "--events",
        metavar="FILE",
        dest="events_out",
        help="append a structured JSONL event log (run lifecycle milestones)",
    )


def cmd_workloads(_args) -> int:
    from repro.workloads import all_workloads

    rows = [[w.name, w.paper_benchmark, w.suite, w.description] for w in all_workloads()]
    print(format_table(["name", "paper benchmark", "suite", "description"], rows,
                       align_right=False))
    return 0


def _compile_worker(task: dict) -> str:
    """Compile one program spec and render its statistics (picklable)."""
    spec = task["spec"]
    program = _load_program(spec)
    machine = MachineConfig(
        issue_width=task["issue"], inter_cluster_delay=task["delay"]
    )
    compiled = compile_program(program, Scheme(task["scheme"]), machine)
    stats = compiled.stats
    rows = [["instructions", stats.n_instructions]]
    rows += [[f"role: {k}", v] for k, v in sorted(stats.n_by_role.items())]
    rows += [
        ["code growth", f"{stats.code_growth:.2f}x"],
        ["spilled registers", stats.n_spilled],
        ["static schedule cycles", stats.static_cycles],
    ]
    rows += [
        [f"cluster {c} instructions", n]
        for c, n in sorted(stats.per_cluster_instructions.items())
    ]
    parts = [format_table(["metric", "value"], rows,
                          title=f"{spec} under {task['scheme']}")]
    if task["print_ir"]:
        parts += ["", print_program(compiled.program)]
    if task["show_schedule"]:
        from repro.viz import render_block_schedule, render_occupancy

        parts.append("")
        if task["show_schedule"] == "all":
            for block in compiled.program.main.blocks():
                parts.append(render_block_schedule(
                    block, compiled.schedules.blocks[block.label], compiled.machine
                ))
                parts.append("")
        else:
            block = compiled.program.main.block(task["show_schedule"])
            parts.append(render_block_schedule(
                block, compiled.schedules.blocks[block.label], compiled.machine
            ))
        parts.append(render_occupancy(compiled))
    return "\n".join(parts)


def cmd_compile(args) -> int:
    from repro.parallel import parallel_map

    tasks = [
        {
            "spec": spec,
            "scheme": args.scheme,
            "issue": args.issue,
            "delay": args.delay,
            "print_ir": args.print_ir,
            "show_schedule": args.show_schedule,
        }
        for spec in args.program
    ]
    for i, text in enumerate(parallel_map(_compile_worker, tasks, jobs=_jobs(args))):
        if i:
            print()
        print(text)
    return 0


def _run_worker(task: dict) -> tuple[str, int]:
    """Compile + simulate one program spec; returns (report, exit status)."""
    program = _load_program(task["spec"])
    machine = MachineConfig(
        issue_width=task["issue"], inter_cluster_delay=task["delay"]
    )
    compiled = compile_program(program, Scheme(task["scheme"]), machine)
    result = VLIWExecutor(compiled, backend=task.get("backend")).run()
    lines = [
        f"exit: {result.kind.value} (code {result.exit_code})",
        f"cycles: {result.cycles} ({result.stall_cycles} memory stalls)",
        f"dynamic instructions: {result.dyn_instructions}",
    ]
    ipc = result.dyn_instructions / result.cycles if result.cycles else 0.0
    lines.append(f"IPC: {ipc:.2f}")
    if task["show_output"]:
        lines.append(f"output ({len(result.output)} values): {list(result.output)}")
    l1 = result.cache.hit_rate("L1")
    lines.append(
        f"L1 hit rate: {l1 * 100:.1f}% over {result.cache.accesses} accesses"
    )
    from repro.ir.interp import ExitKind

    return "\n".join(lines), 0 if result.kind is ExitKind.OK else 1


def cmd_run(args) -> int:
    from repro.parallel import parallel_map

    tasks = [
        {
            "spec": spec,
            "scheme": args.scheme,
            "issue": args.issue,
            "delay": args.delay,
            "show_output": args.show_output,
            "backend": args.backend,
        }
        for spec in args.program
    ]
    results = parallel_map(_run_worker, tasks, jobs=_jobs(args))
    status = 0
    for i, (text, rc) in enumerate(results):
        if i:
            print()
        if len(args.program) > 1:
            print(f"== {args.program[i]} ==")
        print(text)
        status = status or rc
    return status


def cmd_lint(args) -> int:
    from repro.analysis.formats import FORMATTERS
    from repro.analysis.lint import lint_program
    from repro.analysis.protection import Severity

    program = _load_program(args.program)
    machine = _machine(args)
    block_profile = None
    if args.profile:
        from repro.pipeline import collect_block_profile

        block_profile = collect_block_profile(program)
    report = lint_program(
        program, Scheme(args.scheme), machine, block_profile=block_profile
    )
    rendered = FORMATTERS[args.format](report)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    return report.exit_code(fail_on=Severity(args.fail_on))


def cmd_prove(args) -> int:
    from repro.analysis.coverage import cross_validate, prove_compiled
    from repro.analysis.formats import PROVE_FORMATTERS
    from repro.analysis.protection import Severity

    program = _load_program(args.program)
    machine = _machine(args)
    compiled = compile_program(program, Scheme(args.scheme), machine)
    injector = None
    weights = None
    if args.profile or args.validate:
        from repro.faults.injector import FaultInjector

        injector = FaultInjector(
            compiled.program,
            compiled.mem_words,
            compiled.frame_words,
            fault_model=args.fault_model,
        )
        weights = injector.visit_counts()
    report = prove_compiled(
        compiled, fault_models=args.models or None, weights=weights
    )
    rendered = PROVE_FORMATTERS[args.format](report)
    if args.output:
        Path(args.output).write_text(rendered + "\n")
        print(f"wrote {args.output}")
    else:
        print(rendered)
    status = report.exit_code(fail_on=Severity(args.fail_on))
    if args.validate:
        proof = report.proofs.get(args.fault_model)
        if proof is None:
            raise ReproError(
                f"--validate uses --fault-model {args.fault_model!r}, "
                "which is not among the proved models"
            )
        val = cross_validate(
            injector, proof, n_trials=args.validate, seed=args.seed
        )
        print()
        print(
            f"cross-validation [{val.model}]: {val.n_trials} trial(s), "
            f"{len(val.violations)} violation(s), measured coverage "
            f"{val.measured_coverage * 100:.1f}% vs static "
            f"{proof.static_coverage * 100:.1f}%"
        )
        for v in val.violations[:20]:
            print(f"  VIOLATION: {v}")
        if not val.sound:
            status = max(status, 2)
    return status


def _record_campaign_run(args, res, wall_s: float, jobs: int, batch: bool) -> None:
    """Persist one ``inject`` campaign as a run-ledger entry."""
    import os

    from repro.obs import get_telemetry
    from repro.obs.ledger import RunLedger, git_revision, utc_timestamp
    from repro.parallel import effective_cores

    tel = get_telemetry()
    metrics_snap = tel.metrics.snapshot() if tel.metrics is not None else None
    counters = {}
    if metrics_snap is not None:
        counters = {
            k: v for k, v in metrics_snap["counters"].items()
            if k.startswith("campaign.")
        }
    manifest = {
        "kind": "inject",
        "created_at": utc_timestamp(),
        "workload": args.program,
        "scheme": args.scheme,
        "fault_model": args.fault_model,
        "backend": args.backend or os.environ.get("REPRO_SIM_BACKEND", "compiled"),
        "snapshots": not args.no_snapshots,
        "batch": batch,
        "trials": res.trials,
        "requested_trials": args.trials,
        "seed": args.seed,
        "jobs": jobs,
        "effective_cores": effective_cores(),
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "partial": res.partial,
        "coverage": round(res.coverage, 6),
        "timings": {
            "wall_s": round(wall_s, 3),
            "trials_per_s": round(res.trials / wall_s, 1) if wall_s > 0 else 0.0,
        },
        "counters": counters,
    }
    ledger = RunLedger(args.runs_dir)
    run_id = ledger.record(
        manifest,
        metrics=metrics_snap,
        events_src=tel.events.path if tel.events is not None else None,
        trace_events=(
            tel.tracer.events
            if tel.tracer is not None and tel.tracer.keep_events
            else None
        ),
    )
    print(f"[ledger] recorded run {run_id} in {ledger.root}", file=sys.stderr)


def cmd_inject(args) -> int:
    import time

    from repro.faults.classify import OUTCOME_ORDER
    from repro.faults.injector import FaultInjector

    if args.resume and not args.checkpoint:
        raise ReproError("--resume requires --checkpoint FILE")
    program = _load_program(args.program)
    machine = _machine(args)
    scheme = Scheme(args.scheme)
    compiled = compile_program(program, scheme, machine)
    reference = None
    if scheme is not Scheme.NOED:
        noed = compile_program(program, Scheme.NOED, machine)
        reference = VLIWExecutor(noed).run().dyn_instructions
    injector = FaultInjector(
        compiled.program,
        mem_words=compiled.mem_words,
        frame_words=compiled.frame_words,
        fault_model=args.fault_model,
        backend=args.backend,
        snapshots=not args.no_snapshots,
    )
    progress = None
    if args.progress:
        if args.heartbeat < 1:
            raise ReproError(f"--heartbeat must be >= 1, got {args.heartbeat}")
        from repro.obs.progress import print_progress

        progress = print_progress
    jobs = _jobs(args)
    t0 = time.perf_counter()
    # The CLI owns the pool scope: everything this command fans out —
    # calibration wave, adaptive wave, retry rounds — shares one spawn.
    from repro.parallel import ensure_pool

    with ensure_pool(jobs):
        res = injector.run_campaign(
            args.trials, args.seed, reference_dyn=reference,
            progress=progress, heartbeat=args.heartbeat, jobs=jobs,
            checkpoint=args.checkpoint, resume=args.resume,
            batch=args.batch,
        )
    wall_s = time.perf_counter() - t0
    if args.ledger:
        _record_campaign_run(
            args, res, wall_s, jobs, injector.resolve_batch(args.batch)
        )
    rows = [
        [o.value, res.counts.get(o, 0), f"{res.fraction(o) * 100:.1f}%"]
        for o in OUTCOME_ORDER
    ]
    print(
        format_table(
            ["outcome", "trials", "fraction"],
            rows,
            title=f"{args.program} / {args.scheme}: {res.trials} trials, "
            f"{res.total_faults_injected} faults ({args.fault_model})",
        )
    )
    print(f"coverage (1 - SDC - timeout): {res.coverage * 100:.1f}%")
    if res.detections_timed:
        print(
            "mean detection latency: "
            f"{res.mean_detection_latency:.0f} dyn instructions "
            f"({res.detections_timed} timed detections)"
        )
    if res.partial:
        print(
            f"WARNING: partial result — {res.lost_trials} trial(s) lost to "
            "unrecoverable worker crashes",
            file=sys.stderr,
        )
    return 0


def _sweep_cell_worker(task) -> dict[str, int]:
    """Cycles of every scheme at one (issue width, delay) grid point."""
    spec, iw, d, backend = task
    program = _load_program(spec)
    machine = MachineConfig(issue_width=iw, inter_cluster_delay=d)
    cycles = {}
    for scheme in Scheme:
        compiled = compile_program(program, scheme, machine)
        cycles[scheme.value] = VLIWExecutor(compiled, backend=backend).run().cycles
    return cycles


def cmd_sweep(args) -> int:
    from repro.obs.telemetry import get_telemetry
    from repro.parallel import ensure_pool, parallel_map

    tasks = [
        (args.program, iw, d, args.backend)
        for iw in args.issues
        for d in args.delays
    ]
    tel = get_telemetry()
    jobs = _jobs(args)
    tel.event(
        "sweep-start", program=args.program, points=len(tasks), jobs=jobs
    )
    with ensure_pool(jobs):
        cells = parallel_map(_sweep_cell_worker, tasks, jobs=jobs)
    tel.event("sweep-end", program=args.program, points=len(tasks))
    rows = []
    for (_, iw, d, _backend), cycles in zip(tasks, cells):
        noed = cycles[Scheme.NOED.value]
        rows.append(
            [f"iw{iw} d{d}", noed]
            + [
                f"{cycles[s.value] / noed:.2f}"
                for s in (Scheme.SCED, Scheme.DCED, Scheme.CASTED)
            ]
        )
    print(
        format_table(
            ["config", "NOED cycles", "SCED", "DCED", "CASTED"],
            rows,
            title=f"{args.program}: slowdown vs NOED",
        )
    )
    return 0


def cmd_trace(args) -> int:
    from repro.sim.tracing import render_issue_trace

    program = _load_program(args.program)
    compiled = compile_program(program, Scheme(args.scheme), _machine(args))
    print(render_issue_trace(compiled, max_records=args.limit))
    return 0


def cmd_mix(args) -> int:
    from repro.eval.mixstats import dynamic_mix, render_mix_table, render_role_table

    program = _load_program(args.program)
    profiles = []
    for scheme_name in args.schemes:
        scheme = Scheme(scheme_name)
        compiled = compile_program(program, scheme, _machine(args))
        profiles.append(
            dynamic_mix(
                compiled.program,
                scheme.name,
                mem_words=compiled.mem_words,
                frame_words=compiled.frame_words,
            )
        )
    print(render_mix_table(profiles, title=f"{args.program}: dynamic instruction mix"))
    print()
    print(render_role_table(profiles, title=f"{args.program}: dynamic role split"))
    return 0


def cmd_recover(args) -> int:
    from repro.recovery import run_recovery_campaign

    program = _load_program(args.program)
    machine = _machine(args)
    scheme = Scheme(args.scheme)
    compiled = compile_program(program, scheme, machine)
    reference = None
    if scheme is not Scheme.NOED:
        noed = compile_program(program, Scheme.NOED, machine)
        reference = VLIWExecutor(noed).run().dyn_instructions
    progress = None
    if args.progress:
        if args.heartbeat < 1:
            raise ReproError(f"--heartbeat must be >= 1, got {args.heartbeat}")
        from repro.obs.progress import print_progress

        progress = print_progress
    res = run_recovery_campaign(
        compiled.program,
        trials=args.trials,
        seed=args.seed,
        mem_words=compiled.mem_words,
        frame_words=compiled.frame_words,
        reference_dyn=reference,
        fault_model=args.fault_model,
        progress=progress,
        heartbeat=args.heartbeat,
    )
    from repro.faults.classify import Outcome

    rows = [
        [key, res.counts.get(key, 0), f"{res.fraction(key) * 100:.1f}%"]
        for key in (
            # Recovery adds two outcomes of its own on top of the shared
            # campaign taxonomy: "recovered" and "unrecovered".
            Outcome.BENIGN.value, "recovered", Outcome.EXCEPTION.value,
            Outcome.SDC.value, Outcome.TIMEOUT.value, "unrecovered",
        )
    ]
    print(
        format_table(
            ["outcome", "trials", "fraction"],
            rows,
            title=f"{args.program} / {args.scheme} with restart-on-detection",
        )
    )
    print(
        f"correct completion: {res.correct_completion_rate * 100:.1f}%   "
        f"re-execution overhead: {res.recovery_overhead * 100:.1f}% of a run/trial"
    )
    return 0


def cmd_runs(args) -> int:
    """Query the content-addressed run ledger (list / show / diff)."""
    from repro.obs.ledger import (
        RunLedger, diff_runs, render_run, render_run_list,
    )

    ledger = RunLedger(args.runs_dir)
    if args.action == "list":
        print(render_run_list(ledger.list_runs()))
        return 0
    if args.action == "show":
        if len(args.ids) != 1:
            raise ReproError("runs show needs exactly one run id")
        print(render_run(ledger.load(args.ids[0])))
        return 0
    if len(args.ids) != 2:
        raise ReproError("runs diff needs exactly two run ids")
    a, b = (ledger.load(run_id) for run_id in args.ids)
    print(diff_runs(a, b))
    return 0


def cmd_serve(args) -> int:
    """Run the fault-tolerant campaign service daemon (``docs/serve.md``)."""
    import signal

    from repro.serve.daemon import make_server

    server = make_server(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        jobs=_jobs(args),
        queue_limit=args.queue_limit,
        max_per_client=args.max_per_client,
        shard_timeout=args.shard_timeout,
        job_timeout=args.job_timeout,
    )
    host, port = server.server_address[:2]
    # The exact line the smoke/chaos harnesses wait for; keep it stable.
    print(f"[serve] listening on http://{host}:{port}", flush=True)
    print(f"[serve] state dir: {server.app.store.root}", flush=True)

    def _term(_signum, _frame):  # pragma: no cover - signal path
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _term)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        print("[serve] shutting down (requeueing current job)", flush=True)
    finally:
        server.app.shutdown(requeue=True)
        server.server_close()
    return 0


def cmd_report(args) -> int:
    from repro.eval.experiment import Evaluator
    from repro.eval import figures, tables
    from repro.workloads import workload_names

    ev = Evaluator(seed=2013)
    names = workload_names()
    kind = args.what
    if kind == "all":
        return _collate_report()
    if kind == "trace":
        return _trace_report(args)
    if kind == "table1":
        print(tables.render_table1())
    elif kind == "table2":
        print(tables.render_table2())
    elif kind == "table3":
        print(tables.render_table3())
    elif kind == "fig6":
        print(figures.render_fig6_7(figures.fig6_7_data(ev, names)))
    elif kind == "fig8":
        print(figures.render_fig8(figures.fig8_data(ev, names)))
    elif kind == "fig9":
        print(figures.render_fig9(figures.fig9_data(ev, names, trials=args.trials)))
    elif kind == "fig10":
        print(figures.render_fig10(figures.fig10_data(ev, trials=args.trials)))
    else:  # pragma: no cover - argparse restricts choices
        raise ReproError(f"unknown report {kind}")
    return 0


def _trace_report(args) -> int:
    """Summarize (and optionally chrome-export) a captured trace file."""
    from repro.obs import convert_trace_file, summarize_trace_file

    if not args.file:
        print("error: report trace needs --file TRACE.jsonl", file=sys.stderr)
        return 2
    if not Path(args.file).exists():
        raise ReproError(f"no such trace file: {args.file}")
    try:
        print(summarize_trace_file(args.file))
    except ValueError as exc:
        raise ReproError(str(exc)) from exc
    if args.chrome:
        out = convert_trace_file(args.file, args.chrome)
        print(f"\nwrote Chrome trace-event file: {out} "
              "(open in chrome://tracing or ui.perfetto.dev)")
    return 0


#: Section order for the collated report.
_REPORT_ORDER = [
    "table1_machine", "table2_workloads", "table2_profile", "table2_mix",
    "fig6_7_performance", "fig6_7_crossover", "fig6_7_summary",
    "fig8_ilp_scaling", "fig9_fault_coverage", "fig10_coverage_configs",
    "table3_schemes", "table3_placement",
    "ablation_post_ed_cse", "ablation_casted_portfolio",
    "ablation_register_reuse", "ablation_mlp", "ablation_if_conversion",
    "extension_cluster_scaling", "extension_profile_guided",
    "extension_partial_redundancy", "extension_memory_latency",
    "extension_recovery", "fault_model_coverage",
]


def _collate_report() -> int:
    """Stitch every saved results/*.txt into results/REPORT.md."""
    results = Path("results")
    if not results.is_dir():
        print(
            "error: no results/ directory — run "
            "`pytest benchmarks/ --benchmark-only` first",
            file=sys.stderr,
        )
        return 2
    available = {p.stem: p for p in results.glob("*.txt")}
    parts = ["# CASTED reproduction — collected results\n"]
    ordered = [n for n in _REPORT_ORDER if n in available]
    ordered += sorted(set(available) - set(_REPORT_ORDER))
    for name in ordered:
        parts.append(f"## {name}\n\n```\n{available[name].read_text().rstrip()}\n```\n")
    out = results / "REPORT.md"
    out.write_text("\n".join(parts))
    print(f"wrote {out} ({len(ordered)} sections)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CASTED reproduction: compile, simulate, inject, report.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list built-in benchmarks").set_defaults(
        fn=cmd_workloads
    )

    p = sub.add_parser("compile", help="compile and show statistics")
    _add_common(p, multi=True)
    _add_obs(p)
    _add_jobs(p)
    p.add_argument("--print-ir", action="store_true", help="dump the final IR")
    p.add_argument(
        "--show-schedule",
        metavar="BLOCK",
        help="render the VLIW schedule of BLOCK (or 'all') as a cycle grid",
    )
    p.set_defaults(fn=cmd_compile)

    p = sub.add_parser("run", help="compile and execute on the simulator")
    _add_common(p, multi=True)
    _add_obs(p)
    _add_jobs(p)
    _add_backend(p)
    p.add_argument("--show-output", action="store_true")
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser(
        "lint",
        help="static protection audit (sphere of replication, checks, placement)",
    )
    _add_common(p)
    _add_obs(p)
    p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that makes the exit status non-zero (default: error)",
    )
    p.add_argument(
        "--output", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="weight vulnerability windows by measured block execution counts",
    )
    p.set_defaults(fn=cmd_lint)

    from repro.faults.models import DEFAULT_FAULT_MODEL, fault_model_names

    p = sub.add_parser(
        "prove",
        help="static fault-coverage prover (per-site detectability verdicts)",
    )
    _add_common(p)
    _add_obs(p)
    p.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="report format (default: text)",
    )
    p.add_argument(
        "--fail-on",
        choices=["error", "warning", "info"],
        default="error",
        help="lowest severity that makes the exit status non-zero (default: error)",
    )
    p.add_argument(
        "--output", metavar="FILE", help="write the report to FILE instead of stdout"
    )
    p.add_argument(
        "--models", nargs="+", choices=fault_model_names(), default=None,
        help="fault models to prove sites for (default: all registered)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="weight sites by golden-run block visit counts (runs the program "
        "once) so static coverage is campaign-comparable",
    )
    p.add_argument(
        "--validate", type=int, default=0, metavar="N",
        help="run N attributed single-fault trials and check every measured "
        "outcome against its site's static verdict (exit 2 on violation)",
    )
    p.add_argument(
        "--fault-model", choices=fault_model_names(),
        default=DEFAULT_FAULT_MODEL,
        help=f"model used by --validate (default: {DEFAULT_FAULT_MODEL})",
    )
    p.add_argument("--seed", type=int, default=2013)
    p.set_defaults(fn=cmd_prove)

    p = sub.add_parser("inject", help="fault-injection campaign")
    _add_common(p)
    _add_obs(p)
    _add_jobs(p)
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument(
        "--progress", action="store_true",
        help="print heartbeat lines with throughput and ETA during the campaign",
    )
    p.add_argument(
        "--heartbeat", type=int, default=25,
        help="trials between progress heartbeats (default: 25)",
    )
    from repro.faults.models import DEFAULT_FAULT_MODEL, fault_model_names

    p.add_argument(
        "--fault-model", choices=fault_model_names(),
        default=DEFAULT_FAULT_MODEL,
        help=f"fault model to sample from (default: {DEFAULT_FAULT_MODEL})",
    )
    p.add_argument(
        "--checkpoint", metavar="FILE",
        help="JSONL file recording completed shards as the campaign runs",
    )
    p.add_argument(
        "--resume", action="store_true",
        help="skip shards already recorded in --checkpoint FILE",
    )
    _add_backend(p)
    p.add_argument(
        "--no-snapshots", action="store_true",
        help="replay every trial from cycle 0 instead of resuming from the "
        "nearest golden-run snapshot (results are bit-identical either way)",
    )
    p.add_argument(
        "--batch", dest="batch", action="store_true", default=None,
        help="batched trial engine: group trials by golden snapshot, advance "
        "shared prefixes once, peel divergent trials to the scalar path "
        "(default on the compiled backend; results are bit-identical)",
    )
    p.add_argument(
        "--no-batch", dest="batch", action="store_false",
        help="force the one-trial-at-a-time scalar campaign loop",
    )
    p.add_argument(
        "--ledger", action="store_true",
        help="record this campaign in the content-addressed run ledger "
        "(manifest + metrics + event log + Chrome trace; query with "
        "'repro runs')",
    )
    p.add_argument(
        "--runs-dir", metavar="DIR", default=None,
        help="run-ledger directory (default: $REPRO_RUNS_DIR or results/runs)",
    )
    p.set_defaults(fn=cmd_inject)

    p = sub.add_parser("sweep", help="slowdown grid over issue widths and delays")
    p.add_argument("program", help="minic source file or workload:NAME")
    p.add_argument("--issues", type=int, nargs="+", default=[1, 2, 4])
    p.add_argument("--delays", type=int, nargs="+", default=[1, 2, 4])
    _add_obs(p)
    _add_jobs(p)
    _add_backend(p)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("trace", help="issue trace of the first N instructions")
    _add_common(p)
    p.add_argument("--limit", type=int, default=48, help="records to show")
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("mix", help="dynamic instruction-mix profile")
    p.add_argument("program", help="minic source file or workload:NAME")
    from repro.schemes import scheme_names

    p.add_argument(
        "--schemes", nargs="+", default=["noed", "casted"],
        choices=scheme_names(),
    )
    p.add_argument("--issue", type=int, default=2)
    p.add_argument("--delay", type=int, default=1)
    p.set_defaults(fn=cmd_mix)

    p = sub.add_parser("recover", help="fault campaign with restart-on-detection")
    _add_common(p)
    _add_obs(p)
    p.add_argument("--trials", type=int, default=200)
    p.add_argument("--seed", type=int, default=2013)
    p.add_argument(
        "--progress", action="store_true",
        help="print heartbeat lines with throughput and ETA during the campaign",
    )
    p.add_argument(
        "--heartbeat", type=int, default=25,
        help="trials between progress heartbeats (default: 25)",
    )
    p.add_argument(
        "--fault-model", choices=fault_model_names(),
        default=DEFAULT_FAULT_MODEL,
        help=f"fault model to sample from (default: {DEFAULT_FAULT_MODEL})",
    )
    p.set_defaults(fn=cmd_recover)

    p = sub.add_parser(
        "runs", help="query the run ledger (list, show, diff)"
    )
    p.add_argument("action", choices=["list", "show", "diff"])
    p.add_argument(
        "ids", nargs="*",
        help="run id(s): one for 'show', two for 'diff' (prefixes accepted)",
    )
    p.add_argument(
        "--runs-dir", metavar="DIR", default=None,
        help="run-ledger directory (default: $REPRO_RUNS_DIR or results/runs)",
    )
    p.set_defaults(fn=cmd_runs)

    p = sub.add_parser(
        "serve",
        help="fault-tolerant campaign service (job queue, retries, resume)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8321,
        help="listen port (0 = pick an ephemeral port; default: 8321)",
    )
    p.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="durable job-store directory "
        "(default: $REPRO_SERVE_DIR or results/serve)",
    )
    _add_jobs(p)
    p.add_argument(
        "--queue-limit", type=int, default=16,
        help="max queued jobs before submissions get 429 (default: 16)",
    )
    p.add_argument(
        "--max-per-client", type=int, default=0,
        help="per-client queued-job cap (0 = unlimited, default)",
    )
    p.add_argument(
        "--shard-timeout", type=float, default=None, metavar="S",
        help="per-shard hung-worker deadline in seconds (default: off)",
    )
    p.add_argument(
        "--job-timeout", type=float, default=None, metavar="S",
        help="default per-job deadline in seconds; an over-deadline job "
        "degrades to a partial result marked incomplete (default: off)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "report", help="regenerate a paper table/figure, or summarize a trace"
    )
    p.add_argument(
        "what",
        choices=[
            "table1", "table2", "table3", "fig6", "fig8", "fig9", "fig10",
            "all", "trace",
        ],
    )
    p.add_argument("--trials", type=int, default=120)
    p.add_argument("--file", help="trace file to summarize (report trace)")
    p.add_argument(
        "--chrome", metavar="OUT",
        help="also export the trace as a Chrome trace-event JSON file",
    )
    p.set_defaults(fn=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    want_metrics = getattr(args, "metrics", False)
    metrics_out = getattr(args, "metrics_out", None)
    events_out = getattr(args, "events_out", None)
    want_ledger = getattr(args, "ledger", False)
    telemetry = None
    events_tmp = None
    if trace_out or want_metrics or metrics_out or events_out or want_ledger:
        import tempfile

        from repro import obs

        events_path = events_out
        if want_ledger and events_path is None:
            # The ledger stores the event log per run; without an explicit
            # --events file, stage it in a temp file the record() call
            # copies into the run directory.
            fd, events_tmp = tempfile.mkstemp(suffix=".events.jsonl")
            import os as _os

            _os.close(fd)
            Path(events_tmp).unlink()  # EventLog appends; start clean
            events_path = events_tmp
        try:
            # --ledger keeps span events in memory (even alongside a file
            # sink) so the run's Chrome trace can land in the ledger too.
            telemetry = obs.configure(
                trace_path=trace_out,
                keep_events=True if want_ledger else None,
                events_path=events_path,
            )
        except OSError as exc:
            print(
                f"error: cannot open telemetry sink: {exc}", file=sys.stderr
            )
            return 2
    try:
        return args.fn(args)
    except (ReproError, KeyError) as exc:
        message = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    finally:
        if telemetry is not None:
            from repro import obs

            if want_metrics and telemetry.metrics is not None:
                print()
                print(telemetry.metrics.render())
            if metrics_out and telemetry.metrics is not None:
                out = obs.write_metrics(telemetry.metrics, metrics_out)
                print(f"[telemetry] wrote metrics to {out}", file=sys.stderr)
            obs.reset()
            if trace_out:
                print(f"[telemetry] wrote trace to {trace_out}", file=sys.stderr)
            if events_out:
                print(f"[telemetry] wrote events to {events_out}", file=sys.stderr)
            if events_tmp is not None:
                Path(events_tmp).unlink(missing_ok=True)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
