"""Sequential pass pipeline with optional inter-pass verification."""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.program import Program
from repro.ir.verifier import verify_program
from repro.passes.base import FunctionPass, PassContext


class PassManager:
    """Runs passes in order; verifies the IR after each one when asked.

    Verification after every pass is cheap at our program sizes and catches
    pass bugs at their source, so it defaults to on.
    """

    def __init__(self, passes: list[FunctionPass], verify: bool = True) -> None:
        self.passes = list(passes)
        self.verify = verify

    def run(self, program: Program, ctx: PassContext | None = None) -> PassContext:
        ctx = ctx or PassContext()
        if self.verify:
            verify_program(program)
        for p in self.passes:
            try:
                p.run(program, ctx)
            except Exception as exc:
                raise PassError(f"pass {p.name!r} failed: {exc}") from exc
            if self.verify:
                try:
                    verify_program(program)
                except Exception as exc:
                    raise PassError(
                        f"pass {p.name!r} produced malformed IR: {exc}"
                    ) from exc
        return ctx
