"""Sequential pass pipeline with optional inter-pass verification."""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.program import Program
from repro.ir.verifier import verify_program
from repro.obs import get_telemetry
from repro.passes.base import FunctionPass, PassContext


class PassManager:
    """Runs passes in order; verifies the IR after each one when asked.

    Verification after every pass is cheap at our program sizes and catches
    pass bugs at their source, so it defaults to on.

    When telemetry is enabled (see :mod:`repro.obs`), every pass emits a
    ``pass:<name>`` span carrying its wall time, instruction/block deltas,
    and changed flag, and verification time is attributed separately under
    ``verify:<name>`` — the data the trace ``report`` renders as the
    pipeline table.
    """

    def __init__(self, passes: list[FunctionPass], verify: bool = True) -> None:
        self.passes = list(passes)
        self.verify = verify

    def run(self, program: Program, ctx: PassContext | None = None) -> PassContext:
        ctx = ctx or PassContext()
        tel = get_telemetry()
        with tel.span(
            "pipeline", cat="compile", timer="compile.pipeline.seconds",
            n_passes=len(self.passes), verify=self.verify,
        ):
            if self.verify:
                with tel.span("verify:initial", cat="compile",
                              timer="compile.verify.seconds"):
                    verify_program(program)
            for p in self.passes:
                track = tel.enabled
                if track:
                    n_before = program.main.instruction_count()
                    blocks_before = len(program.main.block_labels())
                with tel.span(
                    f"pass:{p.name}", cat="pass",
                    timer=f"compile.pass.{p.name}.seconds",
                ) as sp:
                    try:
                        changed = p.run(program, ctx)
                    except Exception as exc:
                        raise PassError(f"pass {p.name!r} failed: {exc}") from exc
                    if track:
                        n_after = program.main.instruction_count()
                        sp.set(
                            instructions_before=n_before,
                            instructions_after=n_after,
                            blocks_before=blocks_before,
                            blocks_after=len(program.main.block_labels()),
                            changed=bool(changed),
                        )
                        tel.count(f"compile.pass.{p.name}.runs")
                        tel.count(
                            f"compile.pass.{p.name}.instruction_delta",
                            n_after - n_before,
                        )
                if self.verify:
                    with tel.span(f"verify:{p.name}", cat="compile",
                                  timer="compile.verify.seconds"):
                        try:
                            verify_program(program)
                        except Exception as exc:
                            raise PassError(
                                f"pass {p.name!r} produced malformed IR: {exc}"
                            ) from exc
        return ctx
