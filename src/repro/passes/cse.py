"""Local common-subexpression elimination by value numbering.

Copy-aware (``MOV`` transfers the value number), so within a block it sees
through the shadow copies the error-detection pass inserts and — run post-ED
with ``touch_redundant=True`` — merges replica chains rooted in the same
block.  Being block-local it cannot prove the *cross-block* original/replica
equalities a global CSE would (loop-carried shadows get fresh value numbers
at block entry), which is why the coverage ablation pairs it with
:mod:`repro.passes.unsafe_opt`'s idealized global replica merge.  The
production pipeline runs this pass only before error detection, exactly as
the paper disables GCC's late CSE after its passes (§IV-A).
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg, RegClass
from repro.passes.base import FunctionPass, PassContext

_PURE_OPS = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHRL,
        Opcode.SHRA, Opcode.MIN, Opcode.MAX, Opcode.NEG, Opcode.ABS,
        Opcode.NOT, Opcode.SELECT, Opcode.MOVI,
        Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
        Opcode.CMPGT, Opcode.CMPGE, Opcode.PNE,
    }
)


class LocalCSEPass(FunctionPass):
    """Block-local value numbering.

    Parameters
    ----------
    touch_redundant:
        Also rewrite replicated (``DUP``) instructions.  Only the coverage
        ablation sets this; it mimics re-enabling GCC's late CSE after the
        CASTED passes.
    cse_loads:
        Value-number ``LOAD`` results too, invalidated at every store.
    """

    name = "local-cse"

    def __init__(self, touch_redundant: bool = False, cse_loads: bool = True) -> None:
        self.touch_redundant = touch_redundant
        self.cse_loads = cse_loads

    def run(self, program: Program, ctx: PassContext) -> bool:
        changed = False
        replaced = 0
        for block in program.main.blocks():
            n = self._run_block(block)
            replaced += n
            changed = changed or n > 0
        ctx.record(self.name, replaced=replaced)
        return changed

    def _may_rewrite(self, insn: Instruction) -> bool:
        if insn.from_library:
            return False
        if insn.role is Role.ORIG:
            return True
        return self.touch_redundant and insn.role is Role.DUP

    def _run_block(self, block) -> int:
        next_vn = 0
        vn: dict[Reg, int] = {}
        # key -> (representative reg, vn the rep had when recorded)
        table: dict[tuple, tuple[Reg, int]] = {}
        mem_epoch = 0
        replaced = 0

        def vn_of(r: Reg) -> int:
            nonlocal next_vn
            if r not in vn:
                vn[r] = next_vn
                next_vn += 1
            return vn[r]

        for idx, insn in enumerate(block.instructions):
            op = insn.opcode
            info = insn.info

            if op in (Opcode.MOV, Opcode.PMOV):
                src_vn = vn_of(insn.srcs[0])
                vn[insn.dest] = src_vn
                continue

            key = None
            if op in _PURE_OPS:
                in_vns = [vn_of(r) for r in insn.srcs]
                if info.commutative and insn.imm is None and len(in_vns) == 2:
                    in_vns.sort()
                key = (op, tuple(in_vns), insn.imm)
            elif op is Opcode.LOAD and self.cse_loads:
                key = (op, (vn_of(insn.srcs[0]),), insn.imm, mem_epoch)
            else:
                for r in insn.srcs:
                    vn_of(r)

            if key is not None and key in table and self._may_rewrite(insn):
                rep, rep_vn = table[key]
                if vn.get(rep) == rep_vn and rep != insn.dest:
                    mov_op = (
                        Opcode.MOV if insn.dest.rclass is RegClass.GP else Opcode.PMOV
                    )
                    block.instructions[idx] = Instruction(
                        mov_op,
                        dests=insn.dests,
                        srcs=(rep,),
                        role=insn.role,
                        dup_of=insn.dup_of,
                        from_library=insn.from_library,
                        cluster=insn.cluster,
                        comment="cse",
                    )
                    vn[insn.dest] = rep_vn
                    replaced += 1
                    continue

            # Opaque (or first-seen) definition: fresh value numbers.
            for d in insn.writes():
                vn[d] = next_vn
                next_vn += 1
            if key is not None and insn.dests:
                table[key] = (insn.dest, vn[insn.dest])
            if info.is_store:
                mem_epoch += 1
        return replaced
