"""CFG simplification: block merging and trivial-jump threading.

The front end emits many tiny blocks (joins, loop steps, short-circuit
glue).  Block boundaries are scheduling barriers on this target (see
``docs/simulator.md``), so merging straight-line chains directly enlarges
the scheduler's regions — more ILP for every scheme and a more realistic
``-O1`` baseline.

Two rewrites run to a fixed point:

* **merge**: ``A`` ends with ``JMP B`` and ``B``'s only predecessor is
  ``A`` — append ``B``'s instructions to ``A`` and delete ``B``;
* **thread**: ``B`` consists solely of ``JMP C`` — retarget every branch
  to ``B`` directly at ``C`` and delete ``B`` (loop headers with such
  shape keep natural-loop structure: the retargeted back edges simply
  point at ``C``).

The entry block is never deleted (threading out of an entry that is just a
jump would be fine, but keeping it stable keeps profiles and traces
comparable).
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.program import Program
from repro.isa.opcodes import Opcode
from repro.passes.base import FunctionPass, PassContext


class SimplifyCFGPass(FunctionPass):
    name = "simplify-cfg"

    def run(self, program: Program, ctx: PassContext) -> bool:
        function = program.main
        merged = threaded = 0
        changed = True
        while changed:
            changed = False
            cfg = CFG(function)

            # -- thread trivial jump blocks -------------------------------
            for block in list(function.blocks()):
                if block.label == cfg.entry_label:
                    continue
                insns = block.instructions
                if len(insns) != 1 or insns[0].opcode is not Opcode.JMP:
                    continue
                target = insns[0].targets[0]
                if target == block.label:
                    continue  # infinite self-loop; leave it alone
                for pred_label in cfg.preds[block.label]:
                    term = function.block(pred_label).terminator
                    term.targets = tuple(
                        target if t == block.label else t for t in term.targets
                    )
                del function._blocks[block.label]
                threaded += 1
                changed = True
                break
            if changed:
                continue

            # -- merge single-pred straight-line chains ---------------------
            for block in list(function.blocks()):
                term = block.instructions[-1] if block.instructions else None
                if term is None or term.opcode is not Opcode.JMP:
                    continue
                succ_label = term.targets[0]
                if succ_label == block.label:
                    continue
                if cfg.preds[succ_label] != [block.label]:
                    continue
                if succ_label == cfg.entry_label:
                    continue
                succ = function.block(succ_label)
                block.instructions.pop()  # drop the jmp
                block.instructions.extend(succ.instructions)
                del function._blocks[succ_label]
                merged += 1
                changed = True
                break

        ctx.record(self.name, merged=merged, threaded=threaded)
        return (merged + threaded) > 0
