"""Step (i) of the error-detection algorithm: instruction replication.

Paper Algorithm 1, ``replicate_insns``: every instruction that is not
control flow, not a store (nor any other operation leaving the sphere of
replication, i.e. ``OUT``), not compiler-generated and not binary-only
library code gets an exact duplicate emitted *just before* it.  Each
original/duplicate pair is recorded in the replicated-instructions table
(paper Fig. 4.a) for the renaming and checking steps.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role


@dataclass
class DuplicationTable:
    """The paper's Fig. 4.a: original instruction -> its replica."""

    dup_of_orig: dict[int, Instruction] = field(default_factory=dict)  # by uid
    orig_of_dup: dict[int, Instruction] = field(default_factory=dict)  # by uid

    def record(self, orig: Instruction, dup: Instruction) -> None:
        self.dup_of_orig[orig.uid] = dup
        self.orig_of_dup[dup.uid] = orig

    def duplicate_of(self, orig: Instruction) -> Instruction | None:
        return self.dup_of_orig.get(orig.uid)

    def has_duplicate(self, orig: Instruction) -> bool:
        return orig.uid in self.dup_of_orig

    def __len__(self) -> int:
        return len(self.dup_of_orig)


def replicate_instructions(
    program: Program, should_protect=None
) -> DuplicationTable:
    """Insert replicas in place; return the replicated-instructions table.

    ``should_protect(insn) -> bool`` optionally narrows replication to a
    subset of the protectable instructions (partial redundancy à la
    Shoestring / compiler-assisted ED from the paper's Table III); the
    default protects everything, as CASTED does.
    """
    table = DuplicationTable()
    for block in program.main.blocks():
        out: list[Instruction] = []
        for insn in block.instructions:
            if insn.protectable and (should_protect is None or should_protect(insn)):
                dup = insn.clone()
                dup.role = Role.DUP
                dup.dup_of = insn.uid
                out.append(dup)
                table.record(insn, dup)
            out.append(insn)
        block.instructions = out
    return table
