"""Step (ii) of the error-detection algorithm: replica isolation.

Paper Algorithm 1, ``register_rename``: the replicated stream must never
write the original stream's registers, so every register written by a
replica is renamed to a dedicated *shadow* register, and every use of a
renamed register inside the replicated stream follows the rename.  The
original-to-shadow mapping is the paper's Fig. 4.b table.

For a register consumed by replicas but produced by an instruction with no
replica (here: inlined binary-library code), the paper's ``COPY_INSN`` path
applies — an explicit shadow copy is emitted right after the producer so the
replicated stream has its own isolated copy of the value.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PassError
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg, RegClass
from repro.passes.duplication import DuplicationTable


@dataclass
class ShadowMap:
    """The paper's Fig. 4.b: original register -> shadow register."""

    shadow_of: dict[Reg, Reg] = field(default_factory=dict)

    def get(self, reg: Reg) -> Reg | None:
        return self.shadow_of.get(reg)

    def __contains__(self, reg: Reg) -> bool:
        return reg in self.shadow_of

    def __len__(self) -> int:
        return len(self.shadow_of)

    def ensure(self, reg: Reg, function: Function) -> Reg:
        shadow = self.shadow_of.get(reg)
        if shadow is None:
            shadow = function.new_reg_like(reg)
            self.shadow_of[reg] = shadow
        return shadow


def rename_replicas(program: Program, table: DuplicationTable) -> tuple[ShadowMap, int]:
    """Isolate the replicated stream; returns (shadow map, #shadow copies)."""
    function = program.main
    shadows = ShadowMap()

    # Registers the replicated stream touches: everything read or written by
    # an instruction that has a duplicate.
    for block in function.blocks():
        for insn in block:
            if table.has_duplicate(insn):
                for r in (*insn.writes(), *insn.reads()):
                    shadows.ensure(r, function)

    # COPY_INSN path: a shadowed register written by a producer with no
    # duplicate needs an explicit shadow copy after that producer, so the
    # shadow holds a value on every path the original does.
    n_copies = 0
    for block in function.blocks():
        out: list[Instruction] = []
        for insn in block.instructions:
            out.append(insn)
            if insn.role is not Role.ORIG or table.has_duplicate(insn):
                continue
            for dest in insn.writes():
                if dest in shadows:
                    shadow = shadows.get(dest)
                    op = Opcode.MOV if dest.rclass is RegClass.GP else Opcode.PMOV
                    out.append(
                        Instruction(
                            op,
                            dests=(shadow,),
                            srcs=(dest,),
                            role=Role.SHADOW_COPY,
                            comment=f"shadow of {dest}",
                        )
                    )
                    n_copies += 1
        block.instructions = out

    # Rewrite every replica onto shadow registers.
    for block in function.blocks():
        for insn in block:
            if insn.role is not Role.DUP:
                continue
            new_dests = []
            for d in insn.dests:
                s = shadows.get(d)
                if s is None:  # pragma: no cover - ensured above
                    raise PassError(f"replica dest {d} has no shadow")
                new_dests.append(s)
            new_srcs = []
            for r in insn.srcs:
                s = shadows.get(r)
                if s is None:  # pragma: no cover - ensured above
                    raise PassError(f"replica source {r} has no shadow")
                new_srcs.append(s)
            insn.dests = tuple(new_dests)
            insn.srcs = tuple(new_srcs)

    return shadows, n_copies
