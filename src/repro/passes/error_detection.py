"""The complete error-detection pass (paper Algorithm 1, ``relaxed_main``).

Orchestrates the three steps — replication, isolation-by-renaming, check
emission — and reports the static metrics the paper quotes (code growth of
2x+ before scheduling, §II-A; binary growth 2.4x, §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PassError
from repro.ir.program import Program
from repro.isa.instruction import Role
from repro.passes.base import FunctionPass, PassContext
from repro.passes.checks import FULL_POLICY, CheckPolicy, emit_checks
from repro.passes.duplication import DuplicationTable, replicate_instructions
from repro.passes.renaming import ShadowMap, rename_replicas


@dataclass
class ErrorDetectionInfo:
    """Artifacts and static statistics of one error-detection run."""

    table: DuplicationTable
    shadows: ShadowMap
    n_original: int
    n_duplicates: int
    n_shadow_copies: int
    n_checks: int  # compare+branch pairs

    @property
    def n_protected(self) -> int:
        return self.n_duplicates

    @property
    def code_growth(self) -> float:
        """Static instruction-count ratio versus the unprotected code."""
        after = (
            self.n_original
            + self.n_duplicates
            + self.n_shadow_copies
            + 2 * self.n_checks
        )
        return after / self.n_original if self.n_original else 1.0


class ErrorDetectionPass(FunctionPass):
    """SWIFT-style duplication + renaming + checking (Algorithm 1).

    Parameters
    ----------
    check_policy:
        Which non-replicated instruction classes get operand checks
        (default: stores, outputs and branches — the paper's policy).
    protect_slice_depth:
        ``None`` (default) replicates every protectable instruction, as
        CASTED does.  An integer ``k`` replicates only the backward
        dataflow slice of the checked operands up to depth ``k`` — the
        partial-redundancy idea of Shoestring / compiler-assisted ED
        (paper Table III), trading coverage for speed.
    """

    name = "error-detection"

    def __init__(
        self,
        check_policy: CheckPolicy = FULL_POLICY,
        protect_slice_depth: int | None = None,
    ) -> None:
        if protect_slice_depth is not None and protect_slice_depth < 0:
            raise PassError("protect_slice_depth must be >= 0")
        self.check_policy = check_policy
        self.protect_slice_depth = protect_slice_depth

    def _criticality_filter(self, program: Program):
        """uids of instructions within the backward slice of checked operands."""
        depth = self.protect_slice_depth
        if depth is None:
            return None
        checked_opcodes = self.check_policy.checked_opcodes()
        def_map: dict = {}
        for _, _, insn in program.main.all_instructions():
            for d in insn.writes():
                def_map.setdefault(d, []).append(insn)

        marked: set[int] = set()
        frontier = set()
        for _, _, insn in program.main.all_instructions():
            if (
                insn.role is Role.ORIG
                and not insn.from_library
                and insn.opcode in checked_opcodes
            ):
                frontier.update(insn.reads())
        for _ in range(depth):
            next_frontier = set()
            for reg in frontier:
                for writer in def_map.get(reg, ()):
                    if writer.uid not in marked:
                        marked.add(writer.uid)
                        next_frontier.update(writer.reads())
            frontier = next_frontier
        return lambda insn: insn.uid in marked

    def run(self, program: Program, ctx: PassContext) -> bool:
        for _, _, insn in program.main.all_instructions():
            if insn.role is not Role.ORIG:
                raise PassError(
                    "error detection already applied (found "
                    f"{insn.role.value} code); the pass is not re-entrant"
                )
        n_original = program.main.instruction_count()
        should_protect = self._criticality_filter(program)
        table = replicate_instructions(program, should_protect=should_protect)
        shadows, n_copies = rename_replicas(program, table)
        n_checks = emit_checks(program, shadows, policy=self.check_policy)
        info = ErrorDetectionInfo(
            table=table,
            shadows=shadows,
            n_original=n_original,
            n_duplicates=len(table),
            n_shadow_copies=n_copies,
            n_checks=n_checks,
        )
        ctx.artifacts["error_detection"] = info
        ctx.record(
            self.name,
            originals=info.n_original,
            duplicates=info.n_duplicates,
            shadow_copies=info.n_shadow_copies,
            checks=info.n_checks,
            code_growth=round(info.code_growth, 3),
        )
        return info.n_duplicates > 0 or info.n_checks > 0


def redundant_fraction(program: Program) -> float:
    """Fraction of static instructions belonging to the redundant stream."""
    total = 0
    redundant = 0
    for _, _, insn in program.main.all_instructions():
        total += 1
        if insn.role in (Role.DUP, Role.SHADOW_COPY, Role.CHECK):
            redundant += 1
    return redundant / total if total else 0.0
