"""Local copy propagation.

Replaces uses of a copied register with its source while both still hold the
same value.  Block-local and deliberately conservative: it never rewrites
non-original (replicated/check/spill) instructions, so it is safe at any
pipeline position, though it is only scheduled before error detection.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.isa.instruction import Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.passes.base import FunctionPass, PassContext


class CopyPropPass(FunctionPass):
    """``touch_all=True`` also rewrites replicated and *checking* code —
    that is what GCC's late CSE/copy-propagation would do after the CASTED
    passes, turning every check into a compare of a register with itself.
    Only the coverage ablation uses it; the production pipeline keeps the
    default, which never touches non-original code."""

    name = "copyprop"

    def __init__(self, touch_all: bool = False) -> None:
        self.touch_all = touch_all

    def run(self, program: Program, ctx: PassContext) -> bool:
        changed = False
        for block in program.main.blocks():
            # copy_of[d] = s means "d currently equals s".
            copy_of: dict[Reg, Reg] = {}
            for insn in block.instructions:
                if (self.touch_all or insn.role is Role.ORIG) and insn.srcs:
                    resolved = tuple(copy_of.get(r, r) for r in insn.srcs)
                    if resolved != insn.srcs:
                        insn.srcs = resolved
                        changed = True
                for d in insn.writes():
                    # d changes: forget copies into d and copies out of d.
                    copy_of.pop(d, None)
                    for key in [k for k, v in copy_of.items() if v == d]:
                        del copy_of[key]
                if (
                    insn.opcode in (Opcode.MOV, Opcode.PMOV)
                    and (self.touch_all or insn.role is Role.ORIG)
                    and insn.dest != insn.srcs[0]
                ):
                    copy_of[insn.dest] = insn.srcs[0]
        ctx.record(self.name, changed=changed)
        return changed
