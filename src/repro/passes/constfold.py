"""Local constant folding and algebraic identity simplification.

Runs before error detection (the paper compiles at ``-O1``).  Works block-
locally: registers holding known constants are tracked from block entry, and
pure ALU/compare instructions whose operands are all known fold into ``MOVI``
(or into a ``MOV`` for identities like ``x + 0``).

Instructions that can trap (``DIV``/``REM`` by a possibly-zero divisor) are
only folded when the divisor is a known non-zero constant, so folding never
changes observable behaviour.
"""

from __future__ import annotations

from repro.errors import ArithmeticTrap
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import OP_INFO, Opcode
from repro.isa.registers import Reg, RegClass
from repro.isa.semantics import eval_alu, to_signed, wrap64
from repro.passes.base import FunctionPass, PassContext

_FOLDABLE_GP = frozenset(
    {
        Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV, Opcode.REM,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHRL,
        Opcode.SHRA, Opcode.MIN, Opcode.MAX, Opcode.NEG, Opcode.ABS,
        Opcode.NOT, Opcode.MOV, Opcode.SELECT,
    }
)
_FOLDABLE_PR = frozenset(
    {
        Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
        Opcode.CMPGT, Opcode.CMPGE, Opcode.PNE, Opcode.PMOV,
    }
)


class ConstFoldPass(FunctionPass):
    name = "constfold"

    def run(self, program: Program, ctx: PassContext) -> bool:
        changed_any = False
        for block in program.main.blocks():
            if self._fold_block(block):
                changed_any = True
        ctx.record(self.name, changed=changed_any)
        return changed_any

    def _fold_block(self, block) -> bool:
        consts: dict[Reg, int] = {}
        changed = False
        for idx, insn in enumerate(block.instructions):
            new = self._try_fold(insn, consts)
            if new is not None:
                block.instructions[idx] = new
                insn = new
                changed = True
            # Update constant tracking.
            if insn.opcode is Opcode.MOVI:
                consts[insn.dest] = wrap64(insn.imm)
            else:
                for d in insn.writes():
                    consts.pop(d, None)
                if (
                    insn.opcode in (Opcode.MOV, Opcode.PMOV)
                    and insn.srcs[0] in consts
                ):
                    consts[insn.dest] = consts[insn.srcs[0]]
        return changed

    def _try_fold(self, insn: Instruction, consts: dict[Reg, int]) -> Instruction | None:
        """Return a replacement instruction, or None to keep ``insn``."""
        if insn.role is not Role.ORIG:
            return None  # never touch replicated/check/spill code
        op = insn.opcode
        if op not in _FOLDABLE_GP and op not in _FOLDABLE_PR:
            return None

        operands: list[int] = []
        for r in insn.srcs:
            if r not in consts:
                return self._try_identity(insn, consts)
            operands.append(consts[r])
        if insn.imm is not None:
            operands.append(wrap64(insn.imm))

        if op in _FOLDABLE_PR:
            # There is no "predicate immediate" instruction to fold into;
            # constant predicates are rare enough that we leave them be.
            return None
        try:
            value = eval_alu(op, tuple(operands))
        except ArithmeticTrap:
            return None  # preserve the trap
        except ValueError:
            return None
        return Instruction(
            Opcode.MOVI,
            dests=insn.dests,
            imm=to_signed(value),
            role=insn.role,
            from_library=insn.from_library,
            comment="constfold",
        )

    def _try_identity(self, insn: Instruction, consts: dict[Reg, int]) -> Instruction | None:
        """Algebraic identities with one constant operand."""
        op = insn.opcode
        if insn.imm is None and (len(insn.srcs) != 2 or insn.srcs[1] not in consts):
            return None
        if OP_INFO[op].out_class is not RegClass.GP:
            return None
        if len(insn.srcs) == 0:
            return None
        a = insn.srcs[0]
        k = wrap64(insn.imm) if insn.imm is not None else consts.get(insn.srcs[-1])
        if k is None or a in consts:
            return None

        def mov_from(src: Reg) -> Instruction:
            return Instruction(
                Opcode.MOV, dests=insn.dests, srcs=(src,),
                role=insn.role, from_library=insn.from_library,
                comment="identity",
            )

        def movi(value: int) -> Instruction:
            return Instruction(
                Opcode.MOVI, dests=insn.dests, imm=value,
                role=insn.role, from_library=insn.from_library,
                comment="identity",
            )

        if op is Opcode.ADD and k == 0:
            return mov_from(a)
        if op is Opcode.SUB and k == 0:
            return mov_from(a)
        if op is Opcode.MUL and k == 1:
            return mov_from(a)
        if op is Opcode.MUL and k == 0:
            return movi(0)
        if op in (Opcode.SHL, Opcode.SHRL, Opcode.SHRA) and k == 0:
            return mov_from(a)
        if op is Opcode.AND and k == 0:
            return movi(0)
        if op is Opcode.OR and k == 0:
            return mov_from(a)
        if op is Opcode.XOR and k == 0:
            return mov_from(a)
        return None
