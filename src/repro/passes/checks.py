"""Step (iii) of the error-detection algorithm: check emission.

Paper Algorithm 1, ``emit_check_insns``: before every non-replicated
instruction (stores, observable output, conditional branches), each register
it reads is compared against its shadow; on a mismatch a branch diverts to
the fault handler.  A check is a real compare + jump *pair* (paper §IV-B),
so it costs two issue slots and serializes through the predicate — that is
the source of the h263enc scaling anomaly the paper discusses.

Registers with no shadow (values produced entirely by unprotected library
code) are not checked; faults in them are the residual silent-data-
corruption channel the paper attributes to system libraries.
"""

from __future__ import annotations

from repro.ir.basic_block import DETECT_LABEL
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegClass
from repro.passes.renaming import ShadowMap

from dataclasses import dataclass


@dataclass(frozen=True)
class CheckPolicy:
    """Which non-replicated instruction classes get operand checks.

    The paper (and SWIFT) checks stores and control flow; disabling a class
    trades coverage for speed — the partial-redundancy knob of the schemes
    in Table III (Shoestring, compiler-assisted ED).
    """

    stores: bool = True
    branches: bool = True
    outs: bool = True

    def checked_opcodes(self) -> frozenset[Opcode]:
        ops: set[Opcode] = set()
        if self.stores:
            ops.add(Opcode.STORE)
        if self.outs:
            ops.add(Opcode.OUT)
        if self.branches:
            ops.update((Opcode.BRT, Opcode.BRF))
        return frozenset(ops)


#: The paper's policy: everything leaving the sphere of replication.
FULL_POLICY = CheckPolicy()


def emit_checks(
    program: Program, shadows: ShadowMap, policy: CheckPolicy = FULL_POLICY
) -> int:
    """Insert compare+branch pairs; returns the number of checks (pairs)."""
    checked_opcodes = policy.checked_opcodes()
    function = program.main
    n_checks = 0
    for block in function.blocks():
        out: list[Instruction] = []
        for insn in block.instructions:
            if (
                insn.role is Role.ORIG
                and not insn.from_library
                and insn.opcode in checked_opcodes
            ):
                # Dedupe the read set (order-preserving): an instruction that
                # reads the same register twice (e.g. ``STORE r1, r1``) needs
                # one check for that register, not two identical pairs.
                for reg in dict.fromkeys(insn.reads()):
                    shadow = shadows.get(reg)
                    if shadow is None:
                        continue
                    if reg.rclass is RegClass.GP:
                        pred = function.new_pr()
                        cmp_insn = Instruction(
                            Opcode.CMPNE,
                            dests=(pred,),
                            srcs=(reg, shadow),
                            role=Role.CHECK,
                            comment=f"check {reg}",
                        )
                    else:
                        pred = function.new_pr()
                        cmp_insn = Instruction(
                            Opcode.PNE,
                            dests=(pred,),
                            srcs=(reg, shadow),
                            role=Role.CHECK,
                            comment=f"check {reg}",
                        )
                    br_insn = Instruction(
                        Opcode.CHKBR,
                        srcs=(pred,),
                        targets=(DETECT_LABEL,),
                        role=Role.CHECK,
                    )
                    out.append(cmp_insn)
                    out.append(br_insn)
                    n_checks += 1
            out.append(insn)
        block.instructions = out
    return n_checks
