"""The optimization the paper explicitly guards against (§IV-A).

A sufficiently global redundancy-elimination pass can prove — by the very
construction of the error-detection transform — that every replica computes
exactly the value of its original, and "optimize" each replica into a copy.
Copy propagation then folds the shadow registers back into the originals,
at which point every check compares a register against itself and can never
fire; dead-code elimination sweeps the rest.  The net effect: the redundant
code the checks rely on is gone, and with it the fault coverage.

This module implements that idealized late-CSE effect directly (our local
value-numbering CSE cannot prove cross-block equalities, so it alone only
nibbles at the replicas).  It exists **only** for the coverage-collapse
ablation; the production pipeline never runs it — exactly as the paper
disables GCC's late CSE/DCE after the CASTED passes.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import RegClass
from repro.passes.base import FunctionPass, PassContext


class GlobalReplicaMergePass(FunctionPass):
    """Replace every replica with a copy of its original's result."""

    name = "unsafe-replica-merge"

    def run(self, program: Program, ctx: PassContext) -> bool:
        # uid -> original instruction, for replicas carrying a dup link.
        originals: dict[int, Instruction] = {}
        for _, _, insn in program.main.all_instructions():
            originals[insn.uid] = insn

        merged = 0
        for block in program.main.blocks():
            out: list[Instruction] = []
            pending_moves: dict[int, Instruction] = {}  # orig uid -> move
            for insn in block.instructions:
                if insn.role is Role.DUP and insn.dup_of is not None and insn.dests:
                    orig = originals.get(insn.dup_of)
                    if orig is None or not orig.dests:
                        raise PassError(f"replica {insn} has no original")
                    mov_op = (
                        Opcode.MOV
                        if insn.dest.rclass is RegClass.GP
                        else Opcode.PMOV
                    )
                    pending_moves[orig.uid] = Instruction(
                        mov_op,
                        dests=insn.dests,
                        srcs=orig.dests,
                        role=Role.DUP,
                        dup_of=orig.uid,
                        comment="merged replica",
                    )
                    merged += 1
                    continue  # drop the replica itself
                out.append(insn)
                move = pending_moves.pop(insn.uid, None)
                if move is not None:
                    out.append(move)  # copy right after the original
            if pending_moves:  # pragma: no cover - replicas precede originals
                raise PassError("replica without a following original")
            block.instructions = out
        ctx.record(self.name, merged=merged)
        return merged > 0
