"""Loop-invariant code motion (part of the ``-O1`` pipeline).

Hoists pure, non-trapping, loop-invariant computations into the loop's
preheader.  Deliberately conservative on the non-SSA IR — an instruction is
hoisted only when

1. its opcode is pure and cannot trap (no loads: a zero-trip loop must not
   introduce a memory fault; no DIV/REM: ditto for arithmetic traps);
2. every source is invariant: defined only outside the loop, or by an
   already-hoisted instruction;
3. it is the *only* definition of its destination inside the loop;
4. every use of the destination is inside the loop (so executing the
   definition on a zero-trip path changes nothing observable);
5. the destination is not live into the loop header (no loop-carried use
   precedes the definition).

Hoisting iterates, so chains of invariant instructions move together.
Loops whose header has more than one out-of-loop predecessor (no unique
preheader) are skipped; the minic code generator always produces one.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.liveness import compute_liveness
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg
from repro.passes.base import FunctionPass, PassContext

_HOISTABLE = frozenset(
    {
        Opcode.MOVI, Opcode.MOV, Opcode.PMOV, Opcode.ADD, Opcode.SUB,
        Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL,
        Opcode.SHRL, Opcode.SHRA, Opcode.MIN, Opcode.MAX, Opcode.NEG,
        Opcode.ABS, Opcode.NOT, Opcode.SELECT,
        Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
        Opcode.CMPGT, Opcode.CMPGE, Opcode.PNE,
    }
)


class LoopInvariantCodeMotion(FunctionPass):
    name = "licm"

    def run(self, program: Program, ctx: PassContext) -> bool:
        function = program.main
        cfg = CFG(function)
        loops = cfg.natural_loops()
        if not loops:
            ctx.record(self.name, hoisted=0)
            return False

        live = compute_liveness(function, cfg)

        # Uses/defs of every register across the whole function, by block.
        defs_in_block: dict[str, dict[Reg, int]] = {}
        uses_in_block: dict[str, dict[Reg, int]] = {}
        for block in function.blocks():
            d: dict[Reg, int] = {}
            u: dict[Reg, int] = {}
            for insn in block.instructions:
                for r in insn.writes():
                    d[r] = d.get(r, 0) + 1
                for r in insn.reads():
                    u[r] = u.get(r, 0) + 1
            defs_in_block[block.label] = d
            uses_in_block[block.label] = u

        hoisted_total = 0
        # Inner loops first (smaller bodies), so invariants escape outward
        # across several LICM iterations of the surrounding pipeline.
        for header, body in sorted(loops, key=lambda hv: len(hv[1])):
            hoisted_total += self._process_loop(
                function, cfg, live, defs_in_block, uses_in_block, header, body
            )

        ctx.record(self.name, hoisted=hoisted_total)
        return hoisted_total > 0

    def _process_loop(
        self, function, cfg, live, defs_in_block, uses_in_block, header, body
    ) -> int:
        outside_preds = [p for p in cfg.preds[header] if p not in body]
        if len(outside_preds) != 1:
            return 0
        preheader = function.block(outside_preds[0])

        def defs_in_loop(reg: Reg) -> int:
            return sum(defs_in_block[lb].get(reg, 0) for lb in body)

        def uses_outside_loop(reg: Reg) -> int:
            return sum(
                uses_in_block[lb].get(reg, 0)
                for lb in uses_in_block
                if lb not in body
            )

        live_into_header = live.live_in[header]
        hoisted_regs: set[Reg] = set()
        hoisted = 0
        changed = True
        while changed:
            changed = False
            for label in body:
                block = function.block(label)
                keep: list[Instruction] = []
                for insn in block.instructions:
                    if self._can_hoist(
                        insn,
                        defs_in_loop,
                        uses_outside_loop,
                        hoisted_regs,
                        live_into_header,
                    ):
                        # insert before the preheader's terminator
                        preheader.instructions.insert(
                            len(preheader.instructions) - 1, insn
                        )
                        hoisted_regs.add(insn.dest)
                        # keep the global maps exact for enclosing loops
                        defs_in_block[label][insn.dest] -= 1
                        ph = defs_in_block[preheader.label]
                        ph[insn.dest] = ph.get(insn.dest, 0) + 1
                        phu = uses_in_block[preheader.label]
                        for r in insn.reads():
                            uses_in_block[label][r] -= 1
                            phu[r] = phu.get(r, 0) + 1
                        hoisted += 1
                        changed = True
                    else:
                        keep.append(insn)
                block.instructions = keep
        return hoisted

    def _can_hoist(
        self, insn, defs_in_loop, uses_outside_loop, hoisted_regs, live_into_header
    ) -> bool:
        if insn.role is not Role.ORIG or insn.opcode not in _HOISTABLE:
            return False
        if not insn.dests:
            return False
        dest = insn.dest
        if dest in live_into_header:
            return False  # loop-carried
        if defs_in_loop(dest) != 1:
            return False
        if uses_outside_loop(dest) != 0:
            return False
        for r in insn.reads():
            if r in hoisted_regs:
                continue
            if defs_in_loop(r) != 0:
                return False
        return True
