"""Linear-scan register allocation with iterative spilling.

Each virtual register is allocated from the register file of its *home*
cluster (the cluster all of its definitions were assigned to — the
single-home invariant from :mod:`repro.passes.assignment.base`), so the four
pools are (cluster, class) pairs of 64 GP / 32 PR registers (paper Table I).

Spills use the dedicated frame opcodes ``STOREFP``/``LOADFP`` (frame slots
are compiler-private memory right after the data segment), tagged
``Role.SPILL`` — the paper's "compiler-generated" category: never replicated,
never checked.  Spill traffic goes through the cache hierarchy, which is how
the register pressure added by duplication turns into the performance
variation the paper reports (§IV-B1).

Error detection doubles GP pressure, so spilling is exercised heavily; the
allocator spills the interval that ends furthest in the future (Poletto &
Sarkar) and retries until everything fits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import RegAllocError
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.liveness import compute_liveness
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg, RegClass
from repro.passes.assignment.base import collect_def_clusters
from repro.passes.base import FunctionPass, PassContext


@dataclass
class RegAllocResult:
    """Artifacts of one allocation (stored in ``ctx.artifacts['regalloc']``)."""

    frame_words: int
    n_spilled: int
    n_spill_instructions: int
    rounds: int
    max_pressure: dict[tuple[int, str], int] = field(default_factory=dict)


@dataclass
class _Interval:
    reg: Reg
    home: int
    start: int
    end: int
    phys: int = -1


class LinearScanAllocator(FunctionPass):
    name = "regalloc"

    def __init__(self, max_rounds: int = 25, reuse_policy: str = "fifo") -> None:
        if reuse_policy not in ("fifo", "lifo"):
            raise RegAllocError(f"unknown reuse policy {reuse_policy!r}")
        self.max_rounds = max_rounds
        #: "fifo" (round-robin, default) maximizes reuse distance and thereby
        #: minimizes false anti/output dependencies in the schedules;
        #: "lifo" (hot reuse) exists for the ablation benchmark.
        self.reuse_policy = reuse_policy

    # -- public ---------------------------------------------------------------
    def run(self, program: Program, ctx: PassContext) -> bool:
        if ctx.machine is None:
            raise RegAllocError("register allocation needs a machine config")
        machine = ctx.machine
        pool_size = {RegClass.GP: machine.gp_per_cluster, RegClass.PR: machine.pr_per_cluster}

        next_slot = 0
        n_spilled_total = 0
        n_spill_insns = 0
        result: RegAllocResult | None = None

        for round_no in range(1, self.max_rounds + 1):
            homes = collect_def_clusters(program)
            intervals = self._build_intervals(program.main, homes)
            ok, mapping, to_spill, pressure = self._scan(intervals, pool_size)
            if ok:
                self._apply(program.main, mapping)
                result = RegAllocResult(
                    frame_words=next_slot,
                    n_spilled=n_spilled_total,
                    n_spill_instructions=n_spill_insns,
                    rounds=round_no,
                    max_pressure=pressure,
                )
                break
            for reg in to_spill:
                if reg.rclass is RegClass.PR:
                    raise RegAllocError(
                        "predicate register pressure exceeds the file; PR "
                        "spilling is not supported (would need PR<->GP moves)"
                    )
                n_spill_insns += self._spill_everywhere(program.main, reg, next_slot)
                next_slot += 1
                n_spilled_total += 1
        else:
            raise RegAllocError(
                f"allocation did not converge in {self.max_rounds} rounds"
            )

        ctx.artifacts["regalloc"] = result
        ctx.record(
            self.name,
            frame_words=result.frame_words,
            spilled=result.n_spilled,
            spill_instructions=result.n_spill_instructions,
            rounds=result.rounds,
        )
        return True

    # -- intervals --------------------------------------------------------------
    def _build_intervals(
        self, function: Function, homes: dict[Reg, int]
    ) -> list[_Interval]:
        cfg = CFG(function)
        live = compute_liveness(function, cfg)

        pos = 0
        lo: dict[Reg, int] = {}
        hi: dict[Reg, int] = {}

        def touch(r: Reg, p: int) -> None:
            if r not in lo:
                lo[r] = hi[r] = p
            else:
                if p < lo[r]:
                    lo[r] = p
                if p > hi[r]:
                    hi[r] = p

        for block in function.blocks():
            bstart = pos
            bend = pos + len(block.instructions) - 1
            for r in live.live_in[block.label]:
                touch(r, bstart)
            for r in live.live_out[block.label]:
                touch(r, bend)
            for insn in block.instructions:
                for r in (*insn.reads(), *insn.writes()):
                    touch(r, pos)
                pos += 1

        intervals: list[_Interval] = []
        for r in lo:
            if not r.virtual:
                raise RegAllocError(f"register {r} is already physical")
            home = homes.get(r)
            if home is None:
                # Read but never written: the verifier rejects such programs,
                # so this only happens for dead registers — skip.
                continue
            intervals.append(_Interval(r, home, lo[r], hi[r]))
        intervals.sort(key=lambda iv: (iv.start, iv.end, str(iv.reg)))
        return intervals

    # -- the scan -----------------------------------------------------------------
    def _scan(
        self,
        intervals: list[_Interval],
        pool_size: dict[RegClass, int],
    ):
        # FIFO free pools: the least-recently-freed register is reused first
        # (round-robin).  This maximizes reuse distance, which minimizes the
        # false anti/output dependencies the post-allocation scheduler would
        # otherwise have to honour — LIFO reuse measurably serializes the
        # VLIW schedules.
        free: dict[tuple[int, RegClass], deque[int]] = {}
        active: dict[tuple[int, RegClass], list[_Interval]] = {}
        pressure: dict[tuple[int, str], int] = {}
        mapping: dict[Reg, Reg] = {}
        to_spill: list[Reg] = []

        def pool_of(iv: _Interval) -> tuple[int, RegClass]:
            return (iv.home, iv.reg.rclass)

        for iv in intervals:
            key = pool_of(iv)
            if key not in free:
                free[key] = deque(range(pool_size[iv.reg.rclass]))
                active[key] = []
            act = active[key]
            # Expire intervals that ended before this one starts.
            still = []
            for other in act:
                if other.end < iv.start:
                    free[key].append(other.phys)
                else:
                    still.append(other)
            act[:] = still

            if free[key]:
                iv.phys = (
                    free[key].popleft()
                    if self.reuse_policy == "fifo"
                    else free[key].pop()
                )
                act.append(iv)
                mapping[iv.reg] = Reg(
                    iv.reg.rclass, iv.phys, virtual=False, cluster=iv.home
                )
                pkey = (iv.home, iv.reg.rclass.name)
                pressure[pkey] = max(pressure.get(pkey, 0), len(act))
            else:
                # Spill the interval that ends furthest in the future.
                victim = max(act + [iv], key=lambda o: o.end)
                if victim is iv:
                    to_spill.append(iv.reg)
                else:
                    act.remove(victim)
                    mapping.pop(victim.reg, None)
                    to_spill.append(victim.reg)
                    iv.phys = victim.phys
                    act.append(iv)
                    mapping[iv.reg] = Reg(
                        iv.reg.rclass, iv.phys, virtual=False, cluster=iv.home
                    )

        return (not to_spill, mapping, to_spill, pressure)

    # -- spill code -----------------------------------------------------------------
    def _spill_everywhere(self, function: Function, reg: Reg, slot: int) -> int:
        """Replace every def/use of ``reg`` with frame traffic; returns #insns."""
        added = 0
        for block in function.blocks():
            out: list[Instruction] = []
            for insn in block.instructions:
                reads = reg in insn.srcs
                writes = reg in insn.dests
                if not reads and not writes:
                    out.append(insn)
                    continue
                if reads:
                    tmp = function.new_reg_like(reg)
                    out.append(
                        Instruction(
                            Opcode.LOADFP,
                            dests=(tmp,),
                            imm=slot,
                            role=Role.SPILL,
                            cluster=insn.cluster,
                            comment=f"reload {reg}",
                        )
                    )
                    insn.replace_srcs({reg: tmp})
                    added += 1
                out.append(insn)
                if writes:
                    tmp2 = function.new_reg_like(reg)
                    insn.replace_dests({reg: tmp2})
                    out.append(
                        Instruction(
                            Opcode.STOREFP,
                            srcs=(tmp2,),
                            imm=slot,
                            role=Role.SPILL,
                            cluster=insn.cluster,
                            comment=f"spill {reg}",
                        )
                    )
                    added += 1
            block.instructions = out
        return added

    # -- rewrite -----------------------------------------------------------------
    def _apply(self, function: Function, mapping: dict[Reg, Reg]) -> None:
        for _, _, insn in function.all_instructions():
            insn.replace_srcs(mapping)
            insn.replace_dests(mapping)
