"""The shared issue-to-issue latency model for dependence edges.

Both the BUG assignment heuristic (completion-cycle estimates) and the list
scheduler (hard constraints) must price edges identically, otherwise BUG's
greedy choices would be made against a different cost model than the one the
final schedule obeys.  This module is that single pricing function.

``dst.issue >= src.issue + edge_issue_latency(...)`` where:

* ``DATA``  — producer's latency, plus the inter-cluster delay when the
  consumer executes on a different cluster than the producer (the paper's
  remote-register-file access penalty);
* ``ANTI``  — 0 (read happens at issue, before the same-cycle write lands);
* ``OUTPUT``— producer's latency (second write must land strictly later);
* ``MEM``   — 1 after a store-like op (its memory effect lands at end of
  cycle), 0 after a load (a later store may share the cycle: reads are
  performed before writes within a cycle);
* ``CTRL``  — 1 after a check's branch (it must resolve before the guarded
  instruction executes); producer's full latency for the terminator
  barrier (the block's branch leaves only after everything completed).
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.ir.dfg import DepKind, Edge
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.machine.config import MachineConfig


def edge_issue_latency(
    edge: Edge,
    src: Instruction,
    machine: MachineConfig,
    src_cluster: int | None = None,
    dst_cluster: int | None = None,
) -> int:
    """Minimum issue-cycle distance implied by ``edge``.

    Cluster arguments default to the instructions' assigned clusters; pass
    them explicitly when evaluating hypothetical placements (BUG does).
    """
    kind = edge.kind
    if kind is DepKind.DATA:
        lat = machine.latency_of(src.opcode)
        if src_cluster is None:
            src_cluster = src.cluster
        if src_cluster is None or dst_cluster is None:
            raise ScheduleError("DATA edge pricing needs both clusters")
        if src_cluster != dst_cluster:
            lat += machine.inter_cluster_delay
        return lat
    if kind is DepKind.ANTI:
        return 0
    if kind is DepKind.OUTPUT:
        return machine.latency_of(src.opcode)
    if kind is DepKind.MEM:
        return 1 if (src.info.is_store or src.info.is_out) else 0
    if kind is DepKind.CTRL:
        if src.opcode is Opcode.CHKBR:
            return 1
        return machine.latency_of(src.opcode)
    raise ScheduleError(f"unknown dependence kind {kind}")  # pragma: no cover


def same_cluster_edge_latency(edge: Edge, src: Instruction, machine: MachineConfig) -> int:
    """Edge latency assuming no cluster crossing (used for priority heights)."""
    if edge.kind is DepKind.DATA:
        return machine.latency_of(src.opcode)
    return edge_issue_latency(edge, src, machine, src_cluster=0, dst_cluster=0)
