"""Independent schedule-legality validator.

Re-derives every constraint the list scheduler must honour and checks a
:class:`~repro.passes.scheduler.BlockSchedule` against it from scratch —
deliberately sharing no state with the scheduler, so a scheduler bug cannot
hide in shared code.  Used by the test suite on every compiled workload and
available for debugging via :func:`validate_compiled`.
"""

from __future__ import annotations

from repro.errors import ScheduleError
from repro.ir.dfg import DFG, DepKind
from repro.ir.program import Program
from repro.isa.registers import Reg
from repro.machine.config import MachineConfig
from repro.passes.latency import edge_issue_latency
from repro.passes.scheduler import BlockSchedule, ScheduleResult


def validate_block_schedule(
    block,
    schedule: BlockSchedule,
    machine: MachineConfig,
    homes: dict[Reg, int],
) -> None:
    """Raise :class:`ScheduleError` on the first violated constraint."""
    insns = block.instructions
    n = len(insns)
    if len(schedule.cycle_of) != n or len(schedule.slot_of) != n:
        raise ScheduleError(f"{block.label}: schedule arity mismatch")

    # Issue-width per (cycle, cluster).
    usage: dict[tuple[int, int], int] = {}
    for i, insn in enumerate(insns):
        cycle = schedule.cycle_of[i]
        if cycle < 0:
            raise ScheduleError(f"{block.label}[{i}] unscheduled")
        if insn.cluster is None or not 0 <= insn.cluster < machine.n_clusters:
            raise ScheduleError(f"{block.label}[{i}] bad cluster {insn.cluster}")
        key = (cycle, insn.cluster)
        usage[key] = usage.get(key, 0) + 1
        if usage[key] > machine.issue_width:
            raise ScheduleError(
                f"{block.label}: cycle {cycle} cluster {insn.cluster} "
                f"over-subscribed"
            )

    # Dependence edges.
    dfg = DFG(block)
    for e in dfg.edges:
        lat = edge_issue_latency(
            e,
            insns[e.src],
            machine,
            src_cluster=insns[e.src].cluster,
            dst_cluster=insns[e.dst].cluster,
        )
        if schedule.cycle_of[e.dst] < schedule.cycle_of[e.src] + lat:
            raise ScheduleError(
                f"{block.label}: edge {e.src}->{e.dst} ({e.kind.value}) "
                f"violated: {schedule.cycle_of[e.src]} + {lat} > "
                f"{schedule.cycle_of[e.dst]}"
            )

    # Cross-block remote-operand readiness.
    delay = machine.inter_cluster_delay
    defined: set[Reg] = set()
    for i, insn in enumerate(insns):
        in_block = {e.reg for e in dfg.preds[i] if e.kind is DepKind.DATA}
        for r in insn.reads():
            if r in in_block or r in defined:
                continue
            home = homes.get(r)
            if home is not None and home != insn.cluster:
                if schedule.cycle_of[i] < delay:
                    raise ScheduleError(
                        f"{block.label}[{i}] reads remote {r} before the "
                        f"inter-cluster delay elapsed"
                    )
        defined.update(insn.writes())

    # Terminator last; block length correct.
    if insns and insns[-1].info.is_terminator:
        t = n - 1
        if any(schedule.cycle_of[i] > schedule.cycle_of[t] for i in range(n)):
            raise ScheduleError(f"{block.label}: instruction after terminator")
    if schedule.length != max(schedule.cycle_of) + 1:
        raise ScheduleError(f"{block.label}: wrong length {schedule.length}")


def validate_compiled(
    program: Program, schedules: ScheduleResult, machine: MachineConfig
) -> None:
    """Validate every block of every function of a compiled program.

    Registers are function-local, so the single-home constraint is derived
    per function; a block without a schedule entry is itself a violation
    (historically only ``program.main`` was checked, which let multi-function
    programs bypass schedule legality entirely).
    """
    for function in program.functions():
        homes: dict[Reg, int] = {}
        for _, _, insn in function.all_instructions():
            for d in insn.writes():
                prev = homes.get(d)
                if prev is not None and prev != insn.cluster:
                    raise ScheduleError(
                        f"{function.name}: register {d} defined on two clusters"
                    )
                homes[d] = insn.cluster
        for block in function.blocks():
            if block.label not in schedules.blocks:
                raise ScheduleError(
                    f"{function.name}: block {block.label} has no schedule"
                )
            validate_block_schedule(
                block, schedules.blocks[block.label], machine, homes
            )
