"""Global dead-code elimination.

Iterates liveness + backward sweeps to a fixed point.  Pure instructions
whose results are dead are removed; anything with a side effect (memory,
output, control flow, checks) is kept.  Like GCC's late DCE, running this
*after* error detection would be sound here (replicas feed checks, so they
stay live) — but the paper still disables it post-ED and so does our
pipeline; this pass runs only before error detection.
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.liveness import compute_liveness
from repro.ir.program import Program
from repro.passes.base import FunctionPass, PassContext


class DeadCodeEliminationPass(FunctionPass):
    name = "dce"

    def __init__(self, max_iterations: int = 50) -> None:
        self.max_iterations = max_iterations

    def run(self, program: Program, ctx: PassContext) -> bool:
        removed_total = 0
        function = program.main
        for _ in range(self.max_iterations):
            cfg = CFG(function)
            live = compute_liveness(function, cfg)
            removed = 0
            for block in function.blocks():
                live_now = set(live.live_out[block.label])
                keep: list = []
                for insn in reversed(block.instructions):
                    has_effect = insn.info.has_side_effects or insn.info.is_mem
                    dead = (
                        not has_effect
                        and bool(insn.dests)
                        and all(d not in live_now for d in insn.dests)
                    )
                    # Dead *loads* are also removable: a fault-free load from
                    # a legal address has no observable effect.
                    if (
                        not dead
                        and insn.info.is_load
                        and bool(insn.dests)
                        and all(d not in live_now for d in insn.dests)
                    ):
                        dead = True
                    if dead:
                        removed += 1
                        continue
                    keep.append(insn)
                    for d in insn.writes():
                        live_now.discard(d)
                    for s in insn.reads():
                        live_now.add(s)
                keep.reverse()
                block.instructions = keep
            removed_total += removed
            if removed == 0:
                break
        ctx.record(self.name, removed=removed_total)
        return removed_total > 0
