"""If-conversion: predicate small branch diamonds into straight-line code.

Classic VLIW optimization (Itanium's bread and butter): a conditional
branch over two short, side-effect-free arms becomes a single block that
computes both arms into temporaries and ``SELECT``s the results.  On this
target it has a second effect the ablation benchmark measures: removing a
branch removes its error-detection *check pair* (a branch predicate is a
checked operand), trading checking cost for straight-line work — and larger
blocks give the per-block scheduler and BUG more ILP to play with.

Pattern converted (all conditions required):

* block ``B`` ends ``BRT/BRF p, T, F`` with ``T != F``;
* each arm is either the join itself, or a block with a single predecessor
  whose instructions are all pure (replicable, non-memory, non-check) and
  whose terminator jumps to the common join;
* arm bodies are within a size budget (default 6 instructions each).

The transform renames each arm's writes to fresh temporaries and merges
``SELECT`` instructions for every register either arm writes.  Loads are
excluded (speculating a load can introduce a fault the original program
did not have).
"""

from __future__ import annotations

from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.instruction import Instruction, Role
from repro.isa.opcodes import Opcode
from repro.isa.registers import Reg, RegClass
from repro.passes.base import FunctionPass, PassContext

#: Opcodes safe to execute speculatively on the not-taken path.
_SPECULATABLE = frozenset(
    {
        Opcode.MOVI, Opcode.MOV, Opcode.ADD, Opcode.SUB, Opcode.MUL,
        Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHRL,
        Opcode.SHRA, Opcode.MIN, Opcode.MAX, Opcode.NEG, Opcode.ABS,
        Opcode.NOT, Opcode.SELECT,
        Opcode.CMPEQ, Opcode.CMPNE, Opcode.CMPLT, Opcode.CMPLE,
        Opcode.CMPGT, Opcode.CMPGE, Opcode.PNE, Opcode.PMOV,
    }
)


class IfConversionPass(FunctionPass):
    name = "if-convert"

    def __init__(self, max_arm_size: int = 6) -> None:
        self.max_arm_size = max_arm_size

    def run(self, program: Program, ctx: PassContext) -> bool:
        converted = 0
        # Re-derive the CFG after each conversion; diamonds are rare enough
        # that the quadratic worst case never matters at our sizes.
        while True:
            if not self._convert_one(program.main):
                break
            converted += 1
        ctx.record(self.name, converted=converted)
        return converted > 0

    # -- analysis ---------------------------------------------------------------
    def _arm_ok(self, function: Function, cfg: CFG, label: str, join: str) -> bool:
        if label == join:
            return True
        if len(cfg.preds[label]) != 1:
            return False
        block = function.block(label)
        term = block.terminator
        if term.opcode is not Opcode.JMP or term.targets != (join,):
            return False
        body = block.body()
        if len(body) > self.max_arm_size:
            return False
        return all(
            insn.opcode in _SPECULATABLE
            and insn.role is Role.ORIG
            # PR-typed merges have no SELECT equivalent on this ISA
            and all(d.rclass is RegClass.GP for d in insn.dests)
            for insn in body
        )

    def _find_diamond(self, function: Function, cfg: CFG):
        for block in function.blocks():
            term = block.instructions[-1]
            if term.opcode not in (Opcode.BRT, Opcode.BRF):
                continue
            t_label, f_label = term.targets
            if t_label == f_label:
                continue
            # the join is whichever arm target both paths reach next
            for join_candidate in self._join_candidates(
                function, t_label, f_label
            ):
                if self._arm_ok(
                    function, cfg, t_label, join_candidate
                ) and self._arm_ok(function, cfg, f_label, join_candidate):
                    return block, t_label, f_label, join_candidate
        return None

    @staticmethod
    def _join_candidates(function: Function, t_label: str, f_label: str):
        def next_of(label: str) -> str | None:
            term = function.block(label).terminator
            if term.opcode is Opcode.JMP:
                return term.targets[0]
            return None

        # triangle: one arm IS the join of the other
        if next_of(t_label) == f_label:
            yield f_label
        if next_of(f_label) == t_label:
            yield t_label
        # full diamond: both arms jump to the same join
        nt, nf = next_of(t_label), next_of(f_label)
        if nt is not None and nt == nf:
            yield nt

    # -- transform ----------------------------------------------------------------
    def _inline_arm(
        self,
        function: Function,
        out: list[Instruction],
        label: str,
        join: str,
    ) -> dict[Reg, Reg]:
        """Append the arm's body with renamed writes; return final renames."""
        renames: dict[Reg, Reg] = {}
        if label == join:
            return renames
        for insn in function.block(label).body():
            clone = insn.clone()
            clone.srcs = tuple(renames.get(r, r) for r in clone.srcs)
            new_dests = []
            for d in clone.dests:
                fresh = function.new_reg_like(d)
                renames[d] = fresh
                new_dests.append(fresh)
            clone.dests = tuple(new_dests)
            out.append(clone)
        return renames

    def _convert_one(self, function: Function) -> bool:
        cfg = CFG(function)
        found = self._find_diamond(function, cfg)
        if found is None:
            return False
        block, t_label, f_label, join = found

        # Only registers live into the join need merging; arm-local
        # temporaries die inside the arm (their renamed writes become dead
        # code for DCE).
        from repro.ir.liveness import compute_liveness

        live_at_join = compute_liveness(function, cfg).live_in[join]

        term = block.instructions.pop()
        pred = term.srcs[0]
        if term.opcode is Opcode.BRF:
            t_label, f_label = f_label, t_label  # taken means predicate false

        body = block.instructions
        t_renames = self._inline_arm(function, body, t_label, join)
        f_renames = self._inline_arm(function, body, f_label, join)

        merge_regs = (set(t_renames) | set(f_renames)) & set(live_at_join)
        for reg in sorted(merge_regs, key=lambda r: (r.rclass.value, r.index)):
            t_val = t_renames.get(reg, reg)
            f_val = f_renames.get(reg, reg)
            if reg.rclass is RegClass.GP:
                body.append(
                    Instruction(
                        Opcode.SELECT,
                        dests=(reg,),
                        srcs=(pred, t_val, f_val),
                        comment="if-convert",
                    )
                )
            else:
                # predicate merge: (p & t) | (!p & f) via two selects is not
                # available for PR; synthesize with PNE/PMOV arithmetic:
                # r = select on GP is unavailable, so route through PMOVs is
                # incorrect — keep it simple and refuse PR-writing arms.
                raise AssertionError("PR-writing arms are filtered out")

        body.append(
            Instruction(Opcode.JMP, targets=(join,), comment="if-convert")
        )

        # Arms with our block as their single predecessor are now dead.
        for label in (t_label, f_label):
            if label != join and len(cfg.preds[label]) == 1:
                del function._blocks[label]
        return True
