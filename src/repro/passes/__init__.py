"""Compiler passes: classic optimizations, the CASTED error-detection pass,
cluster assignment (SCED / DCED / CASTED-BUG), register allocation, and the
VLIW list scheduler."""

from repro.passes.base import FunctionPass, PassContext
from repro.passes.pass_manager import PassManager
from repro.passes.constfold import ConstFoldPass
from repro.passes.copyprop import CopyPropPass
from repro.passes.cse import LocalCSEPass
from repro.passes.dce import DeadCodeEliminationPass
from repro.passes.error_detection import ErrorDetectionInfo, ErrorDetectionPass
from repro.passes.assignment import (
    AssignmentError,
    CastedAssignmentPass,
    DcedAssignmentPass,
    ScedAssignmentPass,
    validate_assignment,
)
from repro.passes.regalloc import LinearScanAllocator, RegAllocResult
from repro.passes.scheduler import BlockSchedule, ListScheduler, ScheduleResult

__all__ = [
    "FunctionPass",
    "PassContext",
    "PassManager",
    "ConstFoldPass",
    "CopyPropPass",
    "LocalCSEPass",
    "DeadCodeEliminationPass",
    "ErrorDetectionPass",
    "ErrorDetectionInfo",
    "ScedAssignmentPass",
    "DcedAssignmentPass",
    "CastedAssignmentPass",
    "AssignmentError",
    "validate_assignment",
    "LinearScanAllocator",
    "RegAllocResult",
    "ListScheduler",
    "BlockSchedule",
    "ScheduleResult",
]
