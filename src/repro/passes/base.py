"""Pass infrastructure."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any

from repro.ir.program import Program
from repro.machine.config import MachineConfig


@dataclass
class PassContext:
    """Shared state threaded through a pass pipeline.

    ``stats`` accumulates per-pass metrics (the evaluation harness reports
    several of them, e.g. code-growth ratio and spill counts); ``artifacts``
    carries structured pass outputs (duplication tables, schedules) forward.
    """

    machine: MachineConfig | None = None
    stats: dict[str, dict[str, Any]] = field(default_factory=dict)
    artifacts: dict[str, Any] = field(default_factory=dict)

    def record(self, pass_name: str, **metrics: Any) -> None:
        self.stats.setdefault(pass_name, {}).update(metrics)


class FunctionPass(abc.ABC):
    """A transformation over a whole program (single-function after linking)."""

    #: Stable identifier used in stats and logs.
    name: str = "pass"

    @abc.abstractmethod
    def run(self, program: Program, ctx: PassContext) -> bool:
        """Transform ``program`` in place; return True if anything changed."""
