"""Resource- and delay-aware VLIW list scheduler.

Schedules each basic block independently (block boundaries are barriers;
branch prediction is perfect, per Table I).  The cluster of every
instruction is fixed by the preceding assignment pass; the scheduler packs
instructions into per-cluster issue slots, honouring

* every DFG edge priced by :mod:`repro.passes.latency` (true deps pay the
  inter-cluster delay when they cross clusters),
* the remote-operand rule for cross-block operands: reading a register
  whose home file is the other cluster costs the delay from block entry,
* per-cluster issue width via a reservation table.

Priority is critical-path height, then program order — the same preference
order BUG uses, so the schedule realizes the assignment's intent.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.ir.dfg import DFG, DepKind
from repro.ir.program import Program
from repro.isa.registers import Reg
from repro.machine.config import MachineConfig
from repro.machine.reservation import ReservationTable
from repro.obs import get_telemetry
from repro.passes.assignment.base import (
    collect_function_def_clusters,
    validate_assignment,
)
from repro.passes.base import FunctionPass, PassContext
from repro.passes.latency import edge_issue_latency, same_cluster_edge_latency


@dataclass(frozen=True)
class BlockSchedule:
    """Static schedule of one block.

    ``cycle_of[i]`` / ``slot_of[i]`` give the issue cycle and the slot
    (within the instruction's cluster) of ``block.instructions[i]``.
    ``length`` is the block's cycle count absent dynamic stalls.
    """

    label: str
    cycle_of: tuple[int, ...]
    slot_of: tuple[int, ...]
    length: int


@dataclass
class ScheduleResult:
    """All block schedules plus whole-program static statistics."""

    blocks: dict[str, BlockSchedule] = field(default_factory=dict)

    def total_slots(self) -> int:
        return sum(len(b.cycle_of) for b in self.blocks.values())

    def total_cycles_static(self) -> int:
        return sum(b.length for b in self.blocks.values())


class ListScheduler(FunctionPass):
    name = "schedule"

    def run(self, program: Program, ctx: PassContext) -> bool:
        if ctx.machine is None:
            raise ScheduleError("scheduling needs a machine config")
        machine = ctx.machine
        validate_assignment(program, machine.n_clusters)
        result = ScheduleResult()
        tel = get_telemetry()
        track = tel.enabled
        # Every function is scheduled (registers are function-local, so each
        # function uses its own home map); the schedule validator rejects any
        # block left without a schedule.
        for function in program.functions():
            homes = collect_function_def_clusters(function)
            for block in function.blocks():
                sched = schedule_block(block, machine, homes)
                result.blocks[block.label] = sched
                if track:
                    # Slot-reservation pressure: fraction of the block's issue
                    # slots (length x width x clusters) actually reserved.
                    capacity = sched.length * machine.issue_width * machine.n_clusters
                    tel.observe("sched.block_length", sched.length)
                    if capacity:
                        tel.observe(
                            "sched.slot_pressure", len(sched.cycle_of) / capacity
                        )
        ctx.artifacts["schedule"] = result
        ctx.record(
            self.name,
            static_cycles=result.total_cycles_static(),
            instructions=result.total_slots(),
        )
        return True

def schedule_block(block, machine: MachineConfig, homes: dict[Reg, int]) -> BlockSchedule:
    """List-schedule one block given every instruction's cluster.

    ``homes`` maps registers to their home cluster for the cross-block
    remote-operand rule; registers absent from the map are assumed local
    (the CASTED assignment pass also calls this with a *partial* map to
    evaluate candidate placements).
    """
    dfg = DFG(block)
    insns = block.instructions
    n = dfg.n
    delay = machine.inter_cluster_delay

    heights = dfg.heights(
        lambda e: same_cluster_edge_latency(e, insns[e.src], machine)
    )

    # Earliest issue from cross-block remote operands.
    base_ready = [0] * n
    defined_in_block: set[Reg] = set()
    in_block_data_ops: list[set[Reg]] = []
    for i, insn in enumerate(insns):
        in_block_data_ops.append(
            {e.reg for e in dfg.preds[i] if e.kind is DepKind.DATA}
        )
        for r in insn.reads():
            if r in in_block_data_ops[i] or r in defined_in_block:
                continue
            home = homes.get(r)
            if home is not None and insn.cluster is not None and home != insn.cluster:
                base_ready[i] = max(base_ready[i], delay)
        for d in insn.writes():
            defined_in_block.add(d)

    table = ReservationTable(machine.n_clusters, machine.issue_width)
    cycle_of = [-1] * n
    slot_of = [-1] * n
    unscheduled_preds = [len(dfg.preds[i]) for i in range(n)]
    ready_at = [0] * n  # earliest legal issue cycle, updated as preds land

    ready: list[tuple[int, int]] = []  # (-height, index)
    for i in range(n):
        ready_at[i] = base_ready[i]
        if unscheduled_preds[i] == 0:
            heapq.heappush(ready, (-heights[i], i))

    n_done = 0
    cycle = 0
    pending: list[tuple[int, int]] = []  # deferred, re-queued next cycle
    guard = 0
    while n_done < n:
        guard += 1
        if guard > 1_000_000:  # pragma: no cover - safety net
            raise ScheduleError(f"scheduler live-locked in block {block.label}")
        deferred: list[tuple[int, int]] = []
        while ready:
            prio, i = heapq.heappop(ready)
            if ready_at[i] > cycle:
                deferred.append((prio, i))
                continue
            cluster = insns[i].cluster
            if not table.has_free_slot(cycle, cluster):
                deferred.append((prio, i))
                continue
            slot = table.reserve(cycle, cluster)
            cycle_of[i] = cycle
            slot_of[i] = slot
            n_done += 1
            for e in dfg.succs[i]:
                j = e.dst
                lat = edge_issue_latency(
                    e,
                    insns[i],
                    machine,
                    src_cluster=insns[i].cluster,
                    dst_cluster=insns[j].cluster,
                )
                if cycle + lat > ready_at[j]:
                    ready_at[j] = cycle + lat
                unscheduled_preds[j] -= 1
                if unscheduled_preds[j] == 0:
                    heapq.heappush(ready, (-heights[j], j))
        for item in deferred:
            heapq.heappush(ready, item)
        if n_done < n:
            cycle += 1

    length = (max(cycle_of) + 1) if n else 1
    return BlockSchedule(
        label=block.label,
        cycle_of=tuple(cycle_of),
        slot_of=tuple(slot_of),
        length=length,
    )
