"""Shared infrastructure for cluster assignment.

The central invariant (checked by :func:`validate_assignment`): **every
definition of a virtual register executes on one single cluster.**  A value
then has a well-defined home register file, remote readers pay the
inter-cluster delay, and the register allocator can place the value in its
home cluster's file.  All three assignment policies maintain the invariant
by construction; CASTED's BUG enforces it by pinning.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.program import Program
from repro.isa.registers import Reg


class AssignmentError(PassError):
    """Cluster assignment violated an invariant."""


def collect_def_clusters(program: Program) -> dict[Reg, int]:
    """Map every register to the cluster of its definitions.

    Raises :class:`AssignmentError` if any register is defined on more than
    one cluster or any instruction lacks an assignment.
    """
    homes: dict[Reg, int] = {}
    for block, idx, insn in program.main.all_instructions():
        if insn.cluster is None:
            raise AssignmentError(
                f"unassigned instruction in {block.label}[{idx}]: {insn}"
            )
        for d in insn.writes():
            prev = homes.get(d)
            if prev is None:
                homes[d] = insn.cluster
            elif prev != insn.cluster:
                raise AssignmentError(
                    f"register {d} defined on clusters {prev} and {insn.cluster}"
                )
    return homes


def validate_assignment(program: Program, n_clusters: int) -> dict[Reg, int]:
    """Check cluster ranges + the single-home invariant; return home map."""
    for block, idx, insn in program.main.all_instructions():
        if insn.cluster is None or not 0 <= insn.cluster < n_clusters:
            raise AssignmentError(
                f"instruction in {block.label}[{idx}] has invalid cluster "
                f"{insn.cluster}: {insn}"
            )
    return collect_def_clusters(program)
