"""Shared infrastructure for cluster assignment.

The central invariant (checked by :func:`validate_assignment`): **every
definition of a virtual register executes on one single cluster.**  A value
then has a well-defined home register file, remote readers pay the
inter-cluster delay, and the register allocator can place the value in its
home cluster's file.  All three assignment policies maintain the invariant
by construction; CASTED's BUG enforces it by pinning.

Registers are function-local, so homes are derived per function; the
program-level helpers validate every function and return the entry
function's map for the (single-function) register allocator.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.registers import Reg


class AssignmentError(PassError):
    """Cluster assignment violated an invariant."""


def collect_function_def_clusters(function: Function) -> dict[Reg, int]:
    """Map every register of one function to the cluster of its definitions.

    Raises :class:`AssignmentError` if any register is defined on more than
    one cluster or any instruction lacks an assignment.
    """
    homes: dict[Reg, int] = {}
    for block, idx, insn in function.all_instructions():
        if insn.cluster is None:
            raise AssignmentError(
                f"unassigned instruction in {block.label}[{idx}]: {insn}"
            )
        for d in insn.writes():
            prev = homes.get(d)
            if prev is None:
                homes[d] = insn.cluster
            elif prev != insn.cluster:
                raise AssignmentError(
                    f"register {d} defined on clusters {prev} and {insn.cluster}"
                )
    return homes


def collect_def_clusters(program: Program) -> dict[Reg, int]:
    """Entry-function home map (see :func:`collect_function_def_clusters`)."""
    return collect_function_def_clusters(program.main)


def validate_function_assignment(function: Function, n_clusters: int) -> dict[Reg, int]:
    """Check cluster ranges + the single-home invariant for one function."""
    for block, idx, insn in function.all_instructions():
        if insn.cluster is None or not 0 <= insn.cluster < n_clusters:
            raise AssignmentError(
                f"instruction in {block.label}[{idx}] has invalid cluster "
                f"{insn.cluster}: {insn}"
            )
    return collect_function_def_clusters(function)


def validate_assignment(program: Program, n_clusters: int) -> dict[Reg, int]:
    """Validate every function; return the entry function's home map."""
    homes = {
        fn.name: validate_function_assignment(fn, n_clusters)
        for fn in program.functions()
    }
    return homes[program.main.name]
