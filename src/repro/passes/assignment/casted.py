"""CASTED's adaptive placement (paper §III-D).

Per block — hottest (deepest-loop) blocks first, so placement is driven by
the code that dominates run time — CASTED evaluates candidate placements and
commits the one whose *list schedule* is shortest on the configured machine:

1. **Unified** (the SCED shape): everything on cluster 0, respecting pins.
2. **Role split** (the DCED shape): redundant stream on the checker cluster.
3. **BUG** (paper Algorithm 2): greedy completion-cycle placement.  This is
   the candidate that lets checks migrate and original code spread — the
   source of the "outperforms the best fixed scheme" cases.

A candidate must be *strictly* shorter to displace an earlier (simpler) one.
Because a block's estimate depends on register homes decided by blocks
processed later, the whole per-block pass runs **twice**: the second
iteration prices cross-block operands with the first iteration's homes.
Finally, the mixed assignment is scored (static length weighted by an
exponential loop-depth proxy for execution frequency) against the two pure
shapes, and the best of the three ships — so CASTED never regresses below
its own baselines' shapes by more than the weighting error.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.basic_block import BasicBlock
from repro.ir.cfg import CFG
from repro.ir.function import Function
from repro.ir.program import Program
from repro.isa.registers import Reg
from repro.machine.config import MachineConfig
from repro.passes.assignment.bug import bug_assign_block
from repro.passes.base import FunctionPass, PassContext
from repro.passes.scheduler import schedule_block

#: Assumed relative execution frequency per loop-nesting level.
_DEPTH_WEIGHT_BASE = 50
_MAX_DEPTH = 4


def _fixed_assign(block: BasicBlock, pinned: dict[Reg, int], cluster_of_insn) -> None:
    """Assign by policy function; pinned destinations override."""
    for insn in block.instructions:
        cluster = cluster_of_insn(insn)
        for d in insn.writes():
            home = pinned.get(d)
            if home is not None:
                cluster = home
                break
        insn.cluster = cluster
        for d in insn.writes():
            pinned.setdefault(d, cluster)


def _block_weight(depth: int) -> int:
    return _DEPTH_WEIGHT_BASE ** min(depth, _MAX_DEPTH)


#: Default per-block candidate portfolio.
ALL_CANDIDATES = ("unified", "split", "bug")


class CastedAssignmentPass(FunctionPass):
    name = "assign-casted"

    def __init__(
        self,
        clusters: tuple[int, ...] | None = None,
        candidates: tuple[str, ...] = ALL_CANDIDATES,
        safety_net: bool = True,
        block_profile: dict[str, int] | None = None,
    ) -> None:
        self.clusters = clusters
        bad = set(candidates) - set(ALL_CANDIDATES)
        if bad or not candidates:
            raise PassError(f"invalid candidate set {candidates}")
        self.candidates = tuple(candidates)
        self.safety_net = safety_net
        #: Measured block execution counts (profile-guided mode).  When
        #: given, they replace the exponential loop-depth proxy both for the
        #: block processing order and for the safety-net scoring.
        self.block_profile = block_profile

    # -- helpers ---------------------------------------------------------------
    def _assign_pure(
        self, function: Function, machine: MachineConfig, order, policy
    ) -> tuple[dict[str, list[int]], dict[Reg, int]]:
        pinned: dict[Reg, int] = {}
        clusters: dict[str, list[int]] = {}
        for label in order:
            block = function.block(label)
            _fixed_assign(block, pinned, policy)
            clusters[label] = [i.cluster for i in block.instructions]
        return clusters, pinned

    def _score(
        self,
        function: Function,
        machine: MachineConfig,
        clusters: dict[str, list[int]],
        homes: dict[Reg, int],
        weight_of: dict[str, int],
    ) -> int:
        total = 0
        for label, cl in clusters.items():
            block = function.block(label)
            for insn, c in zip(block.instructions, cl):
                insn.cluster = c
            length = schedule_block(block, machine, homes).length
            total += weight_of[label] * length
        return total

    def _mixed_assign(
        self,
        function: Function,
        machine: MachineConfig,
        order,
        checker: int,
        home_hints: dict[Reg, int],
    ) -> tuple[dict[str, list[int]], dict[Reg, int], dict[str, int]]:
        pinned: dict[Reg, int] = {}
        clusters: dict[str, list[int]] = {}
        chosen: dict[str, int] = {"unified": 0, "split": 0, "bug": 0}
        for label in order:
            block = function.block(label)
            best_name = None
            best_len = None
            best_clusters: list[int] = []
            best_pins: dict[Reg, int] = {}
            for name in self.candidates:
                pins = dict(pinned)
                if name == "bug":
                    bug_assign_block(
                        block,
                        machine,
                        pins,
                        candidate_clusters=self.clusters,
                        home_hints=home_hints,
                    )
                elif name == "split":
                    _fixed_assign(
                        block, pins, lambda i: checker if i.is_redundant else 0
                    )
                else:
                    _fixed_assign(block, pins, lambda i: 0)
                length = schedule_block(
                    block, machine, {**home_hints, **pins}
                ).length
                if best_len is None or length < best_len:
                    best_name, best_len = name, length
                    best_clusters = [i.cluster for i in block.instructions]
                    best_pins = pins
            for insn, c in zip(block.instructions, best_clusters):
                insn.cluster = c
            clusters[label] = best_clusters
            pinned = best_pins
            chosen[best_name] += 1
        return clusters, pinned, chosen

    # -- main -------------------------------------------------------------------
    def run(self, program: Program, ctx: PassContext) -> bool:
        if ctx.machine is None:
            raise PassError("CASTED assignment needs a machine configuration")
        machine = ctx.machine
        function = program.main

        cfg = CFG(function)
        depths = cfg.loop_depths()
        layout_pos = {label: i for i, label in enumerate(function.block_labels())}
        if self.block_profile is not None:
            profile = self.block_profile
            weight_of = {
                lb: max(1, profile.get(lb, 0)) for lb in function.block_labels()
            }
        else:
            weight_of = {
                lb: _block_weight(depths[lb]) for lb in function.block_labels()
            }
        order = sorted(
            function.block_labels(),
            key=lambda lb: (-weight_of[lb], layout_pos[lb]),
        )
        checker = 1 if machine.n_clusters > 1 else 0

        # Iteration 1 discovers homes; iteration 2 re-decides with them.
        _, homes1, _ = self._mixed_assign(function, machine, order, checker, {})
        mixed, homes2, chosen = self._mixed_assign(
            function, machine, order, checker, homes1
        )

        candidates = [
            ("mixed", mixed, homes2),
        ]
        if self.safety_net:
            uni_clusters, uni_homes = self._assign_pure(
                function, machine, order, lambda i: 0
            )
            candidates.append(("unified", uni_clusters, uni_homes))
            split_clusters, split_homes = self._assign_pure(
                function, machine, order, lambda i: checker if i.is_redundant else 0
            )
            candidates.append(("split", split_clusters, split_homes))

        best = None
        for name, clusters, homes in candidates:
            score = self._score(function, machine, clusters, homes, weight_of)
            if best is None or score < best[0]:
                best = (score, name, clusters)

        _, winner, clusters = best
        for label, cl in clusters.items():
            block = function.block(label)
            for insn, c in zip(block.instructions, cl):
                insn.cluster = c

        # Non-entry functions (hand-built/parsed programs only — compiled
        # workloads are fully inlined) get the fixed role split; the adaptive
        # search stays focused on the code that runs.
        for extra in program.functions():
            if extra is function:
                continue
            pinned: dict[Reg, int] = {}
            for label in extra.block_labels():
                _fixed_assign(
                    extra.block(label),
                    pinned,
                    lambda i: checker if i.is_redundant else 0,
                )

        ctx.record(
            self.name,
            winner=winner,
            weighted_static=best[0],
            **{f"blocks_{k}": v for k, v in chosen.items()},
        )
        from repro.obs import get_telemetry

        tel = get_telemetry()
        if tel.enabled:
            tel.count(f"assign.casted.winner.{winner}")
            for cand, n_blocks in chosen.items():
                tel.count(f"assign.casted.blocks.{cand}", n_blocks)
            tel.instant(
                "casted-decision", cat="pass", winner=winner,
                weighted_static=best[0], **{f"blocks_{k}": v for k, v in chosen.items()},
            )
        return True
