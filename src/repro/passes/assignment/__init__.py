"""Cluster-assignment passes: SCED, DCED and CASTED (BUG)."""

from repro.passes.assignment.base import (
    AssignmentError,
    collect_def_clusters,
    validate_assignment,
)
from repro.passes.assignment.sced import ScedAssignmentPass
from repro.passes.assignment.dced import DcedAssignmentPass
from repro.passes.assignment.casted import CastedAssignmentPass

__all__ = [
    "AssignmentError",
    "validate_assignment",
    "collect_def_clusters",
    "ScedAssignmentPass",
    "DcedAssignmentPass",
    "CastedAssignmentPass",
]
