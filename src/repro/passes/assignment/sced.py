"""Single-Core Error Detection placement (and NOED's trivial placement).

Everything — original, replicated and checking code — executes on one
cluster (paper §II-B, Fig. 2.d / 3.d).  Performance is then governed purely
by that cluster's issue width.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.passes.base import FunctionPass, PassContext


class ScedAssignmentPass(FunctionPass):
    """Assign every instruction to a single fixed cluster."""

    name = "assign-sced"

    def __init__(self, cluster: int = 0) -> None:
        self.cluster = cluster

    def run(self, program: Program, ctx: PassContext) -> bool:
        for function in program.functions():
            for _, _, insn in function.all_instructions():
                insn.cluster = self.cluster
        ctx.record(self.name, cluster=self.cluster)
        return True
