"""The Bottom-Up-Greedy (BUG) clustering algorithm — paper Algorithm 2.

Per basic block, instructions are visited in topological order with
preference to the critical path; for each instruction the *completion cycle*
on every candidate cluster is estimated — operand readiness (including the
inter-cluster delay for operands living on the other cluster, both in-block
and cross-block) plus issue-slot availability from a reservation table — and
the instruction is greedily assigned to the cluster where it completes
earliest.  The chosen (cycle, cluster) slot is then reserved.

The estimate uses the *same* edge pricing as the final list scheduler
(:mod:`repro.passes.latency`), so greedy decisions are made against the cost
model the schedule will actually obey.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.ir.basic_block import BasicBlock
from repro.ir.dfg import DFG, DepKind
from repro.isa.registers import Reg
from repro.machine.config import MachineConfig
from repro.machine.reservation import ReservationTable
from repro.obs import get_telemetry
from repro.passes.latency import edge_issue_latency, same_cluster_edge_latency


@dataclass
class BugBlockResult:
    """Estimated issue cycles (diagnostics; the list scheduler decides last)."""

    issue_estimate: list[int]
    estimated_length: int


def bug_assign_block(
    block: BasicBlock,
    machine: MachineConfig,
    pinned: dict[Reg, int],
    candidate_clusters: tuple[int, ...] | None = None,
    home_hints: dict[Reg, int] | None = None,
) -> BugBlockResult:
    """Assign ``insn.cluster`` for every instruction of ``block`` in place.

    ``pinned`` maps registers to their home cluster; definitions of a pinned
    register are forced onto its home (single-home invariant) and reads of
    cross-block operands are charged the inter-cluster delay against their
    pinned home.  The map is updated as new definitions are placed.

    ``home_hints`` supplies *predicted* homes (from a previous assignment
    iteration) for registers not pinned yet, so cross-block operand costs
    are priced even for blocks processed early.
    """
    hints = home_hints or {}
    dfg = DFG(block)
    insns = block.instructions
    if candidate_clusters is None:
        candidate_clusters = tuple(range(machine.n_clusters))
    delay = machine.inter_cluster_delay

    # Critical-path priority: height under same-cluster latencies.
    heights = dfg.heights(
        lambda e: same_cluster_edge_latency(e, insns[e.src], machine)
    )

    table = ReservationTable(machine.n_clusters, machine.issue_width)
    issue_of: list[int] = [-1] * dfg.n
    cluster_load = [0] * machine.n_clusters  # total slots reserved so far
    n_unassigned_preds = [len(dfg.preds[i]) for i in range(dfg.n)]

    # Ready queue ordered by (critical path first, then program order).
    ready: list[tuple[int, int]] = []
    for i in range(dfg.n):
        if n_unassigned_preds[i] == 0:
            heapq.heappush(ready, (-heights[i], i))

    # Registers defined earlier in this block: their cross-block home rule
    # must not apply (the in-block DATA edge covers them).
    defined_in_block: set[Reg] = set()
    n_done = 0

    while ready:
        _, i = heapq.heappop(ready)
        insn = insns[i]
        n_done += 1

        # Candidate clusters: a pinned destination forces its home cluster.
        cands = candidate_clusters
        for d in insn.writes():
            home = pinned.get(d)
            if home is not None:
                cands = (home,)
                break

        in_block_ops = {e.reg for e in dfg.preds[i] if e.kind is DepKind.DATA}
        # Choice key: earliest completion first (the Algorithm 2 heuristic),
        # then fewest cross-cluster operand reads, then the less loaded
        # cluster (ties mean the delay is irrelevant, so balance resources),
        # then the lower index for determinism.
        best: tuple[int, int, int, int] | None = None
        best_issue = 0
        for c in cands:
            ready_cycle = 0
            cross_reads = 0
            for e in dfg.preds[i]:
                src = insns[e.src]
                lat = edge_issue_latency(
                    e, src, machine, src_cluster=src.cluster, dst_cluster=c
                )
                ready_cycle = max(ready_cycle, issue_of[e.src] + lat)
                if e.kind is DepKind.DATA and src.cluster != c:
                    cross_reads += 1
            # Cross-block operands: reading a remote home costs the delay
            # from the top of the block.
            for r in insn.reads():
                if r in in_block_ops or r in defined_in_block:
                    continue
                home = pinned.get(r)
                if home is None:
                    home = hints.get(r)
                if home is not None and home != c:
                    ready_cycle = max(ready_cycle, delay)
                    cross_reads += 1
            issue = table.first_free_cycle(c, ready_cycle)
            completion = issue + machine.latency_of(insn.opcode)
            key = (completion, cross_reads, cluster_load[c], c)
            if best is None or key < best:
                best = key
                best_issue = issue

        assert best is not None
        cluster = best[3]
        insn.cluster = cluster
        issue_of[i] = best_issue
        table.reserve(best_issue, cluster)
        cluster_load[cluster] += 1
        for d in insn.writes():
            pinned.setdefault(d, cluster)
            defined_in_block.add(d)

        for e in dfg.succs[i]:
            n_unassigned_preds[e.dst] -= 1
            if n_unassigned_preds[e.dst] == 0:
                heapq.heappush(ready, (-heights[e.dst], e.dst))

    if n_done != dfg.n:  # pragma: no cover - DFG is a DAG by construction
        raise AssertionError("BUG failed to visit every node")

    length = max(issue_of) + 1 if issue_of else 0
    tel = get_telemetry()
    if tel.enabled:
        tel.count("assign.bug.blocks")
        tel.observe("assign.bug.estimated_length", length)
        if dfg.n:
            # Completion-cycle spread: how far greedy placement pushed the
            # last instruction past a perfectly packed lower bound.
            lower = -(-dfg.n // (machine.issue_width * machine.n_clusters))
            tel.observe("assign.bug.length_vs_packed", length / max(1, lower))
    return BugBlockResult(issue_estimate=issue_of, estimated_length=length)
