"""Dual-Core Error Detection placement.

The fixed dual-core split of prior multithreaded schemes (paper §II-B,
Fig. 2.e / 3.e): the original code — including all non-replicated
instructions, which are the only ones allowed to touch memory — runs on the
main cluster; the replicated stream, the shadow copies and all checking code
run on the second cluster.  Every check therefore reads one register across
the interconnect, which is exactly why DCED degrades as the inter-core delay
grows.
"""

from __future__ import annotations

from repro.errors import PassError
from repro.ir.program import Program
from repro.passes.base import FunctionPass, PassContext


class DcedAssignmentPass(FunctionPass):
    name = "assign-dced"

    def __init__(self, main_cluster: int = 0, checker_cluster: int = 1) -> None:
        if main_cluster == checker_cluster:
            raise PassError("DCED needs two distinct clusters")
        self.main_cluster = main_cluster
        self.checker_cluster = checker_cluster

    def run(self, program: Program, ctx: PassContext) -> bool:
        n_main = n_checker = 0
        for function in program.functions():
            for _, _, insn in function.all_instructions():
                if insn.is_redundant:
                    insn.cluster = self.checker_cluster
                    n_checker += 1
                else:
                    insn.cluster = self.main_cluster
                    n_main += 1
        ctx.record(self.name, main=n_main, checker=n_checker)
        return True
