"""Plain-text visualization helpers.

Everything the paper draws as a figure has a textual form here: VLIW
schedule grids like Fig. 2/3's cycle tables, per-block issue-slot occupancy,
and stacked coverage bars like Fig. 9/10.  Used by the examples, the CLI
(``compile --show-schedule``) and handy when debugging pass behaviour.
"""

from __future__ import annotations

from repro.faults.classify import OUTCOME_ORDER, Outcome
from repro.ir.basic_block import BasicBlock
from repro.machine.config import MachineConfig
from repro.passes.scheduler import BlockSchedule
from repro.pipeline import CompiledProgram


def render_block_schedule(
    block: BasicBlock,
    schedule: BlockSchedule,
    machine: MachineConfig,
    max_cell: int = 26,
) -> str:
    """A cycle x cluster grid like the paper's Fig. 2/3 schedule tables."""
    grid: dict[tuple[int, int], list[str]] = {}
    for i, insn in enumerate(block.instructions):
        text = insn.info.mnemonic
        if insn.dests:
            text += f" {insn.dests[0]}"
        if insn.role.value != "orig":
            text += f" [{insn.role.value}]"
        grid.setdefault((schedule.cycle_of[i], insn.cluster), []).append(
            text[:max_cell]
        )

    widths = [
        max(
            [len(f"cluster {c}")]
            + [
                len(cell)
                for (cy, cl), cells in grid.items()
                if cl == c
                for cell in cells
            ]
        )
        for c in range(machine.n_clusters)
    ]
    header = "cycle | " + " | ".join(
        f"cluster {c}".ljust(widths[c]) for c in range(machine.n_clusters)
    )
    lines = [f"block {block.label} ({schedule.length} cycles)", header,
             "-" * len(header)]
    for cycle in range(schedule.length):
        rows = max(
            [1] + [len(grid.get((cycle, c), [])) for c in range(machine.n_clusters)]
        )
        for slot in range(rows):
            cells = []
            for c in range(machine.n_clusters):
                items = grid.get((cycle, c), [])
                cells.append(
                    (items[slot] if slot < len(items) else "").ljust(widths[c])
                )
            label = f"{cycle:5d}" if slot == 0 else "     "
            lines.append(f"{label} | " + " | ".join(cells))
    return "\n".join(lines)


def render_occupancy(compiled: CompiledProgram) -> str:
    """Issue-slot utilization per block and overall."""
    machine = compiled.machine
    capacity_per_cycle = machine.n_clusters * machine.issue_width
    lines = ["block               cycles  instrs  slot use"]
    total_cycles = total_insns = 0
    for block in compiled.program.main.blocks():
        sched = compiled.schedules.blocks[block.label]
        n = len(block.instructions)
        use = n / (sched.length * capacity_per_cycle) if sched.length else 0.0
        total_cycles += sched.length
        total_insns += n
        lines.append(
            f"{block.label:18s} {sched.length:7d} {n:7d}  "
            f"{'#' * int(use * 20):20s} {use * 100:4.0f}%"
        )
    overall = (
        total_insns / (total_cycles * capacity_per_cycle) if total_cycles else 0.0
    )
    lines.append(
        f"{'TOTAL':18s} {total_cycles:7d} {total_insns:7d}  "
        f"{'#' * int(overall * 20):20s} {overall * 100:4.0f}%"
    )
    return "\n".join(lines)


def dfg_to_dot(block: BasicBlock, name: str | None = None) -> str:
    """Graphviz DOT text of a block's dependence graph (paper Fig. 2/3.c).

    Edge styles: solid = true data dependence, dashed = memory order,
    dotted = anti/output, bold = control (check guards, terminator
    barrier).  Render with ``dot -Tsvg`` if graphviz is available; the text
    itself is also a readable dump.
    """
    from repro.ir.dfg import DFG, DepKind

    dfg = DFG(block)
    lines = [f'digraph "{name or block.label}" {{', "  rankdir=TB;"]
    for i, insn in enumerate(block.instructions):
        label = insn.info.mnemonic
        if insn.dests:
            label += f" {insn.dests[0]}"
        shape = "box"
        if insn.role.value == "dup":
            shape = "box, style=filled, fillcolor=lightblue"
        elif insn.role.value == "check":
            shape = "diamond"
        elif insn.info.is_store or insn.info.is_out or insn.info.is_terminator:
            shape = "box, style=bold"
        lines.append(f'  n{i} [label="{i}: {label}", shape={shape}];')
    style = {
        DepKind.DATA: "",
        DepKind.MEM: " [style=dashed]",
        DepKind.ANTI: " [style=dotted]",
        DepKind.OUTPUT: " [style=dotted]",
        DepKind.CTRL: " [style=bold]",
    }
    for e in dfg.edges:
        lines.append(f"  n{e.src} -> n{e.dst}{style[e.kind]};")
    lines.append("}")
    return "\n".join(lines)


#: Glyph per outcome value, in the taxonomy's canonical stacking order.
_BAR_GLYPHS: dict[str, str] = {
    o.value: glyph for o, glyph in zip(OUTCOME_ORDER, ".DEXT")
}


def render_coverage_bars(
    data: dict[str, dict[str, float]], width: int = 50
) -> str:
    """Stacked horizontal bars like the paper's Fig. 9.

    ``data`` maps a row label to {outcome value: fraction}.
    """
    lines = [
        "legend: " + "  ".join(f"{g}={name}" for name, g in _BAR_GLYPHS.items())
    ]
    label_w = max((len(k) for k in data), default=5)
    for label, fractions in data.items():
        bar = ""
        for outcome, glyph in _BAR_GLYPHS.items():
            bar += glyph * round(fractions.get(outcome, 0.0) * width)
        bar = (bar + " " * width)[:width]
        sdc = fractions.get(Outcome.SDC.value, 0.0) + fractions.get(
            Outcome.TIMEOUT.value, 0.0
        )
        lines.append(f"{label.ljust(label_w)} |{bar}| SDC+TO {sdc * 100:4.1f}%")
    return "\n".join(lines)
