"""h263dec stand-in: motion-compensated macroblock decode.

Character: per-pixel reference fetch + residual add + clipping, a regular
mix of loads, adds and stores with moderate ILP — the profile the paper's
h263dec shows (benefits from dual-core placement at narrow issue widths).
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global refframe[1024];   // 32x32 reference
global residual[64];
global frame[1024];
global mvstream[48];     // encoded motion vectors, 2 per macroblock

func decode_mb(mbx, mby, mvx, mvy) {
    var total = 0;
    for (var py = 0; py < 8; py = py + 1) {
        for (var px = 0; px < 8; px = px + 1) {
            var sy = mby * 8 + py + mvy;
            var sx = mbx * 8 + px + mvx;
            var pred = refframe[sy * 32 + sx];
            var v = pred + residual[py * 8 + px];
            if (v < 0) { v = 0; }
            if (v > 255) { v = 255; }
            frame[(mby * 8 + py) * 32 + mbx * 8 + px] = v;
            total = total + v;
        }
    }
    return total;
}

func main() {
    var seed = 1998;
    for (var i = 0; i < 1024; i = i + 1) {
        seed = lcg(seed);
        refframe[i] = lcg_range(seed, 256);
    }
    for (var j = 0; j < 64; j = j + 1) {
        seed = lcg(seed);
        residual[j] = lcg_range(seed, 64) - 32;
    }
    for (var k = 0; k < 48; k = k + 1) {
        seed = lcg(seed);
        mvstream[k] = lcg_range(seed, 5) - 2;
    }

    var check = 0;
    var mb = 0;
    // 24 macroblocks over a 3x2 grid region, repeated with shifting vectors
    for (var pass = 0; pass < 3; pass = pass + 1) {
        for (var my = 0; my < 2; my = my + 1) {
            for (var mx = 0; mx < 3; mx = mx + 1) {
                var vx = mvstream[mb * 2 % 48];
                var vy = mvstream[(mb * 2 + 1) % 48];
                var s = decode_mb(mx + 1, my + 1, vx, vy);
                check = (check * 33 + s) % 1000003;
                mb = mb + 1;
            }
        }
        out(check);
    }
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="h263dec",
        paper_benchmark="h263dec",
        suite="MediaBench2",
        description="motion-compensated decode kernel (balanced load/ALU/store mix)",
        source=_SOURCE,
    )
)
