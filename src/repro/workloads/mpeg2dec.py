"""mpeg2dec stand-in: dequantization + inverse transform + saturation.

Character: the decode-side mirror of cjpeg — multiply-heavy inverse
transform with good ILP, followed by saturation and per-pixel stores.
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global qcoeffs[384];     // 6 blocks of 8x8 quantized coefficients
global qtab[64];
global basis[64];
global block_out[64];
global picture[384];

func idct_block(base) {
    // dequantize in place
    for (var i = 0; i < 64; i = i + 1) {
        qcoeffs[base + i] = qcoeffs[base + i] * qtab[i];
    }
    // separable inverse transform (rows then columns)
    for (var row = 0; row < 8; row = row + 1) {
        for (var x = 0; x < 8; x = x + 1) {
            var s = 0;
            for (var u = 0; u < 8; u = u + 1) {
                s = s + qcoeffs[base + row * 8 + u] * basis[x * 8 + u];
            }
            block_out[row * 8 + x] = s >> 6;
        }
    }
    var checksum = 0;
    for (var y = 0; y < 8; y = y + 1) {
        for (var col = 0; col < 8; col = col + 1) {
            var v = block_out[y * 8 + col];
            // saturate to signed 9-bit video range
            if (v < -256) { v = -256; }
            if (v > 255) { v = 255; }
            picture[base + y * 8 + col] = v;
            checksum = checksum + v;
        }
    }
    return checksum;
}

func main() {
    var seed = 4772;
    for (var i = 0; i < 384; i = i + 1) {
        seed = lcg(seed);
        // sparse coefficients, like real quantized video
        var r = lcg_range(seed, 100);
        if (r < 70) {
            qcoeffs[i] = 0;
        } else {
            qcoeffs[i] = lcg_range(seed, 32) - 16;
        }
    }
    for (var k = 0; k < 64; k = k + 1) {
        seed = lcg(seed);
        qtab[k] = 1 + lcg_range(seed, 30);
        seed = lcg(seed);
        basis[k] = lcg_range(seed, 13) - 6;
    }

    var check = 0;
    for (var b = 0; b < 6; b = b + 1) {
        var s = idct_block(b * 64);
        check = (check * 131 + s) % 16777213;
        out(check);
    }
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="mpeg2dec",
        paper_benchmark="mpeg2dec",
        suite="MediaBench2",
        description="dequant + inverse DCT + saturation (multiply-heavy, good ILP)",
        source=_SOURCE,
    )
)
