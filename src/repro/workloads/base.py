"""Workload registry.

Each workload is a named minic program plus the metadata the evaluation
harness needs (which paper benchmark it stands in for, which suite, and the
workload-character notes that the character tests assert).  Compiled source
IR is cached per workload; callers must not mutate the returned program
(the pipeline clones before transforming).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.frontend import compile_source
from repro.ir.program import Program

#: Shared library preamble: the unprotected pseudo-random generator every
#: workload uses to synthesize its input data (the paper's system-library
#: stand-in; faults inside it are the residual SDC channel).
LIB_PRELUDE = """
lib func lcg(s) {
    return s * 6364136223846793005 + 1442695040888963407;
}
lib func lcg_range(s, n) {
    // upper bits have better statistical quality
    var x = (s >> 33) & 0x7fffffff;
    return x % n;
}
"""


@dataclass(frozen=True)
class Workload:
    """One benchmark program."""

    name: str
    paper_benchmark: str
    suite: str  # "MediaBench2" | "SPEC CINT2000"
    description: str
    source: str

    @functools.cached_property
    def program(self) -> Program:
        """Compiled (front-end only) IR; treated as immutable by callers."""
        return compile_source(self.source, name=self.name)


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def _ensure_loaded() -> None:
    # Import the kernel modules lazily to avoid import cycles; each module
    # registers its workload at import time.
    from repro.workloads import (  # noqa: F401
        cjpeg,
        h263dec,
        h263enc,
        mcf,
        mpeg2dec,
        parser_bench,
        vpr,
    )


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def all_workloads() -> list[Workload]:
    _ensure_loaded()
    return list(_REGISTRY.values())


def workload_names() -> list[str]:
    _ensure_loaded()
    return list(_REGISTRY)
