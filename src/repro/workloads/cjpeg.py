"""cjpeg stand-in: blocked forward DCT + quantization (JPEG encode core).

Character (matches the paper's observations for cjpeg): high ILP (the
transform is a dense independent multiply/accumulate grid), few stores per
arithmetic op, and *output compression* — quantization discards low-order
bits, so many injected faults are masked before reaching the output
(paper §IV-C: "encoding benchmarks are less prone to errors").
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global pixels[512];    // 8 blocks of 8x8
global costab[64];     // integer cosine-ish basis
global qshift[8] = { 4, 4, 5, 5, 6, 6, 7, 7 };
global coeffs[512];

func dct_block(base) {
    // 1-D transform over rows then columns of one 8x8 block.
    for (var u = 0; u < 8; u = u + 1) {
        for (var row = 0; row < 8; row = row + 1) {
            var s = 0;
            for (var x = 0; x < 8; x = x + 1) {
                s = s + pixels[base + row * 8 + x] * costab[u * 8 + x];
            }
            coeffs[base + row * 8 + u] = s >> 3;
        }
    }
    for (var v = 0; v < 8; v = v + 1) {
        for (var colu = 0; colu < 8; colu = colu + 1) {
            var s2 = 0;
            for (var y = 0; y < 8; y = y + 1) {
                s2 = s2 + coeffs[base + y * 8 + colu] * costab[v * 8 + y];
            }
            // quantization: keep the high bits only (masks faults)
            coeffs[base + v * 8 + colu] = s2 >> qshift[v];
        }
    }
    return 0;
}

func main() {
    // synthesize the input image with the library generator
    var seed = 20130521;
    for (var i = 0; i < 512; i = i + 1) {
        seed = lcg(seed);
        pixels[i] = lcg_range(seed, 256) - 128;
    }
    for (var k = 0; k < 64; k = k + 1) {
        seed = lcg(seed);
        costab[k] = lcg_range(seed, 15) - 7;
    }

    var check = 0;
    for (var b = 0; b < 4; b = b + 1) {
        dct_block(b * 64);
        // entropy-coding stand-in: run-length count of zero coefficients
        var zeros = 0;
        var sum = 0;
        for (var j = 0; j < 64; j = j + 1) {
            var c = coeffs[b * 64 + j];
            if (c == 0) {
                zeros = zeros + 1;
            } else {
                sum = sum + c;
            }
        }
        check = check ^ (sum * 31 + zeros);
        out(check);
    }
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="cjpeg",
        paper_benchmark="cjpeg",
        suite="MediaBench2",
        description="forward DCT + quantization encode kernel (high ILP, masking)",
        source=_SOURCE,
    )
)
