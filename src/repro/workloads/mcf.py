"""181.mcf stand-in: pointer-chasing over a successor array.

Character (matches the paper's §IV-B2 discussion of 181.mcf): a serial
dependent-load chain — each iteration's address depends on the previous
load — so the original code has almost no ILP and barely scales with issue
width, while the duplicated stream supplies the *extra* ILP that makes SCED
scale better than NOED.
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global nxt[256];       // successor permutation (one big cycle)
global cost[256];
global potential[256];

func main() {
    // Build a single-cycle permutation with a Sattolo shuffle driven by the
    // library RNG, so the chase visits every node.
    var seed = 181;
    for (var i = 0; i < 256; i = i + 1) {
        nxt[i] = i;
        seed = lcg(seed);
        cost[i] = lcg_range(seed, 1000) - 500;
        potential[i] = 0;
    }
    for (var j = 255; j > 0; j = j - 1) {
        seed = lcg(seed);
        var k = lcg_range(seed, j);
        var t = nxt[j];
        nxt[j] = nxt[k];
        nxt[k] = t;
    }

    // Network-simplex-ish sweeps: chase the cycle updating node potentials.
    var check = 0;
    var node = 0;
    for (var round = 0; round < 10; round = round + 1) {
        var acc = 0;
        for (var s = 0; s < 256; s = s + 1) {
            var c = cost[node];
            var p = potential[node];
            var reduced = c - p;
            if (reduced < 0) {
                potential[node] = p + reduced / 2;
            } else {
                potential[node] = p + 1;
            }
            acc = acc + reduced;
            node = nxt[node];           // the serial dependence
        }
        check = (check * 65599 + acc) % 1000000007;
        out(check);
    }
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="mcf",
        paper_benchmark="181.mcf",
        suite="SPEC CINT2000",
        description="pointer-chasing potential updates (serial chain, low ILP)",
        source=_SOURCE,
    )
)
