"""The benchmark programs (paper Table II), written in minic.

Seven kernels mirror the published character of the paper's MediaBench II
video + SPEC CINT2000 selection; each generates its own input with an
in-program LCG provided by a ``lib func`` (the unprotected-library channel)
and emits checksums through ``out``.
"""

from repro.workloads.base import (
    Workload,
    all_workloads,
    get_workload,
    workload_names,
)

__all__ = ["Workload", "get_workload", "all_workloads", "workload_names"]
