"""h263enc stand-in: SAD-based motion estimation (encode side).

Character (the paper's problem child): branch- and store-dense code.  The
per-pixel absolute difference uses a branch, and the best-match update is
another branch + stores, so the error-detection pass emits a check pair
before almost everything — the redundant code becomes sequential
(compare+jump chains) and SCED stops scaling with issue width (paper
§IV-B2, the Amdahl's-law discussion).
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global cur[256];       // current 16x16 region
global ref[1024];      // 32x32 search window
global best_mv[32];    // chosen vectors, 2 per block
global best_sad[16];

func sad_8x8(cbase, rbase) {
    var acc = 0;
    for (var y = 0; y < 8; y = y + 1) {
        for (var x = 0; x < 8; x = x + 1) {
            var d = cur[cbase + y * 16 + x] - ref[rbase + y * 32 + x];
            if (d < 0) { d = 0 - d; }
            acc = acc + d;
        }
    }
    return acc;
}

func main() {
    var seed = 263;
    for (var i = 0; i < 256; i = i + 1) {
        seed = lcg(seed);
        cur[i] = lcg_range(seed, 256);
    }
    for (var j = 0; j < 1024; j = j + 1) {
        seed = lcg(seed);
        ref[j] = lcg_range(seed, 256);
    }

    var check = 0;
    // four 8x8 blocks of the current region, +/-2 search around center
    for (var b = 0; b < 4; b = b + 1) {
        var bx = (b % 2) * 8;
        var by = (b / 2) * 8;
        var best = 0x7fffffff;
        var bestdx = 0;
        var bestdy = 0;
        for (var dy = -1; dy <= 1; dy = dy + 1) {
            for (var dx = -1; dx <= 1; dx = dx + 1) {
                var rb = (by + 8 + dy) * 32 + bx + 8 + dx;
                var s = sad_8x8(by * 16 + bx, rb);
                if (s < best) {
                    best = s;
                    bestdx = dx;
                    bestdy = dy;
                    best_sad[b] = s;
                    best_mv[b * 2] = dx;
                    best_mv[b * 2 + 1] = dy;
                }
            }
        }
        check = check ^ (best * 7 + bestdx * 3 + bestdy);
        out(check);
    }
    out(best_sad[0] + best_sad[1] + best_sad[2] + best_sad[3]);
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="h263enc",
        paper_benchmark="h263enc",
        suite="MediaBench2",
        description="SAD motion estimation (branch/store heavy, check-dense)",
        source=_SOURCE,
    )
)
