"""175.vpr stand-in: simulated-annealing placement inner loop.

Character: randomized swap proposals (library RNG), Manhattan wire-length
delta evaluation with data-dependent branches, and acceptance logic — a mix
of integer arithmetic and irregular control typical of SPEC CINT.
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global cellx[128];
global celly[128];
global net_a[96];
global net_b[96];
global cell_net[128];   // one net id per cell (simplified netlist)

func net_cost(n) {
    var ax = cellx[net_a[n]];
    var ay = celly[net_a[n]];
    var bx = cellx[net_b[n]];
    var by = celly[net_b[n]];
    var dx = ax - bx;
    if (dx < 0) { dx = 0 - dx; }
    var dy = ay - by;
    if (dy < 0) { dy = 0 - dy; }
    return dx + dy;
}

func main() {
    var seed = 175;
    for (var i = 0; i < 128; i = i + 1) {
        seed = lcg(seed);
        cellx[i] = lcg_range(seed, 16);
        seed = lcg(seed);
        celly[i] = lcg_range(seed, 16);
        seed = lcg(seed);
        cell_net[i] = lcg_range(seed, 96);
    }
    for (var n = 0; n < 96; n = n + 1) {
        seed = lcg(seed);
        net_a[n] = lcg_range(seed, 128);
        seed = lcg(seed);
        net_b[n] = lcg_range(seed, 128);
    }

    var accepted = 0;
    var cost_trace = 0;
    var temperature = 64;
    for (var it = 0; it < 400; it = it + 1) {
        seed = lcg(seed);
        var c1 = lcg_range(seed, 128);
        seed = lcg(seed);
        var c2 = lcg_range(seed, 128);
        var n1 = cell_net[c1];
        var n2 = cell_net[c2];
        var before = net_cost(n1) + net_cost(n2);
        // propose: swap the two cells' positions
        var tx = cellx[c1]; var ty = celly[c1];
        cellx[c1] = cellx[c2]; celly[c1] = celly[c2];
        cellx[c2] = tx; celly[c2] = ty;
        var after = net_cost(n1) + net_cost(n2);
        var delta = after - before;
        seed = lcg(seed);
        var threshold = lcg_range(seed, 64);
        if (delta < 0 || threshold < temperature) {
            accepted = accepted + 1;
            cost_trace = cost_trace + delta;
        } else {
            // reject: swap back
            var ux = cellx[c1]; var uy = celly[c1];
            cellx[c1] = cellx[c2]; celly[c1] = celly[c2];
            cellx[c2] = ux; celly[c2] = uy;
        }
        if (it % 128 == 127) {
            temperature = temperature - temperature / 4;
            out(cost_trace);
        }
    }
    out(accepted);
    var final_cost = 0;
    for (var m = 0; m < 96; m = m + 1) {
        final_cost = final_cost + net_cost(m);
    }
    out(final_cost);
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="vpr",
        paper_benchmark="175.vpr",
        suite="SPEC CINT2000",
        description="annealing placement loop (randomized swaps, branchy deltas)",
        source=_SOURCE,
    )
)
