"""197.parser stand-in: table-driven tokenizer/parser state machine.

Character: long if/else chains over a synthetic token stream, per-token
counter updates and a small explicit parse stack — irregular control flow
with modest ILP, like SPEC's link-grammar parser front end.
"""

from repro.workloads.base import LIB_PRELUDE, Workload, register

_SOURCE = (
    LIB_PRELUDE
    + """
global stream[2048];
global stack[64];
global counts[8];

func classify(t) {
    // 0 word, 1 number, 2 open, 3 close, 4 connector, 5 punctuation
    if (t < 50) { return 0; }
    if (t < 70) { return 1; }
    if (t < 78) { return 2; }
    if (t < 86) { return 3; }
    if (t < 95) { return 4; }
    return 5;
}

func main() {
    var seed = 197;
    for (var i = 0; i < 1280; i = i + 1) {
        seed = lcg(seed);
        stream[i] = lcg_range(seed, 100);
    }

    var sp = 0;
    var state = 0;
    var errors = 0;
    var links = 0;
    var check = 0;
    for (var p = 0; p < 1280; p = p + 1) {
        var cls = classify(stream[p]);
        counts[cls] = counts[cls] + 1;
        if (cls == 2) {
            if (sp < 63) {
                stack[sp] = state;
                sp = sp + 1;
                state = 0;
            } else {
                errors = errors + 1;
            }
        } else if (cls == 3) {
            if (sp > 0) {
                sp = sp - 1;
                state = stack[sp];
                links = links + 1;
            } else {
                errors = errors + 1;
            }
        } else if (cls == 4) {
            if (state == 1) {
                links = links + 1;
                state = 2;
            } else {
                state = 1;
            }
        } else if (cls == 0 || cls == 1) {
            if (state == 2) {
                state = 0;
            } else {
                state = state + 1;
                if (state > 3) { state = 3; }
            }
        } else {
            // punctuation resets the clause
            state = 0;
        }
        if (p % 256 == 255) {
            check = (check * 31 + links * 7 + errors * 3 + state) % 1000003;
            out(check);
        }
    }
    for (var c = 0; c < 8; c = c + 1) {
        out(counts[c]);
    }
    out(links);
    out(errors);
    return 0;
}
"""
)

WORKLOAD = register(
    Workload(
        name="parser",
        paper_benchmark="197.parser",
        suite="SPEC CINT2000",
        description="table-driven parsing state machine (branch-dominated)",
        source=_SOURCE,
    )
)
