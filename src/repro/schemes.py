"""Scheme metadata registry: one place that knows what each scheme *is*.

Before this module existed the pipeline, the protection linter, the
evaluator, the CLI and the figures each hard-coded their own copy of the
per-scheme facts (does it replicate?  where does each role go?  does the
inter-cluster delay matter?).  Adding a fifth scheme meant edits in seven
places.  This registry follows the :mod:`repro.faults.models` idiom — a
dict of declarative records plus a ``@register_scheme`` hook — so a new
scheme (CFCSS block signatures, replay detection, ...) lands by
registering one :class:`SchemeInfo` and providing an assignment pass.

The :class:`repro.pipeline.Scheme` enum remains the typed handle the rest
of the code passes around; its behaviour-determining properties now read
from this registry.  The static coverage prover
(:mod:`repro.analysis.coverage`) consumes the same records: a scheme
*declares* its detection semantics (``replicates`` + ``check_placement``)
as data rather than the prover special-casing scheme names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from repro.passes.base import FunctionPass


#: How a scheme distributes code over the clusters.
#:
#: ``unified``    everything on one fixed cluster (``home_cluster``);
#: ``role-split`` original stream on cluster 0, redundant stream on 1;
#: ``adaptive``   per-block placement chosen by the assignment pass, only
#:                the single-home-cluster-per-register rule applies.
CLUSTER_POLICIES = ("unified", "role-split", "adaptive")


@dataclass(frozen=True)
class SchemeInfo:
    """Declarative metadata for one code-generation scheme."""

    name: str
    description: str
    #: Does the error-detection pass run (instruction duplication + shadow
    #: registers)?  ``False`` means an unprotected binary.
    replicates: bool
    #: Where checks go: ``"pre-consumer"`` (a compare+CHKBR pair guards every
    #: register before a store/branch/OUT consumes it, Algorithm 1 step iii)
    #: or ``"none"`` for unprotected binaries.
    check_placement: str
    #: One of :data:`CLUSTER_POLICIES`.
    cluster_policy: str
    #: The fixed cluster for ``unified`` placement (ignored otherwise).
    home_cluster: int = 0
    #: Minimum clusters the scheme needs to compile at all.
    min_clusters: int = 1
    #: Does the machine's inter-cluster delay affect this scheme's schedule?
    #: (Single-cluster schemes never pay it — the evaluator normalises the
    #: delay axis away for them so cache keys collapse.)
    uses_delay: bool = False
    #: Builds the cluster-assignment pass.  Receives the ``compile_program``
    #: knobs relevant to assignment; simple schemes ignore them.
    make_assignment: Callable[..., "FunctionPass"] | None = None


#: Registry keyed by scheme name, in paper presentation order.
SCHEMES: dict[str, SchemeInfo] = {}


def register_scheme(info: SchemeInfo) -> SchemeInfo:
    """Add ``info`` to :data:`SCHEMES` (last registration wins)."""
    if info.cluster_policy not in CLUSTER_POLICIES:
        raise ValueError(
            f"unknown cluster policy {info.cluster_policy!r} "
            f"(expected one of {CLUSTER_POLICIES})"
        )
    SCHEMES[info.name] = info
    return info


def scheme_names() -> list[str]:
    """Registered scheme names in registration (presentation) order."""
    return list(SCHEMES)


def get_scheme_info(name: str) -> SchemeInfo:
    """Look up one scheme's metadata; raises ``ValueError`` when unknown."""
    try:
        return SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r} (available: {', '.join(scheme_names())})"
        ) from None


# ---------------------------------------------------------------------------
# The paper's four schemes
# ---------------------------------------------------------------------------


def _sced_assignment(**_: Any) -> "FunctionPass":
    from repro.passes.assignment import ScedAssignmentPass

    return ScedAssignmentPass(cluster=0)


def _dced_assignment(**_: Any) -> "FunctionPass":
    from repro.passes.assignment import DcedAssignmentPass

    return DcedAssignmentPass()


def _casted_assignment(
    casted_candidates: tuple[str, ...] | None = None,
    casted_safety_net: bool = True,
    block_profile: dict[str, int] | None = None,
    **_: Any,
) -> "FunctionPass":
    from repro.passes.assignment import CastedAssignmentPass

    kwargs: dict[str, Any] = {
        "safety_net": casted_safety_net,
        "block_profile": block_profile,
    }
    if casted_candidates is not None:
        kwargs["candidates"] = casted_candidates
    return CastedAssignmentPass(**kwargs)


register_scheme(
    SchemeInfo(
        name="noed",
        description="no error detection, single cluster",
        replicates=False,
        check_placement="none",
        cluster_policy="unified",
        home_cluster=0,
        min_clusters=1,
        uses_delay=False,
        make_assignment=_sced_assignment,
    )
)

register_scheme(
    SchemeInfo(
        name="sced",
        description="error detection, everything on one cluster",
        replicates=True,
        check_placement="pre-consumer",
        cluster_policy="unified",
        home_cluster=0,
        min_clusters=1,
        uses_delay=False,
        make_assignment=_sced_assignment,
    )
)

register_scheme(
    SchemeInfo(
        name="dced",
        description="error detection, fixed original/checker cluster split",
        replicates=True,
        check_placement="pre-consumer",
        cluster_policy="role-split",
        min_clusters=2,
        uses_delay=True,
        make_assignment=_dced_assignment,
    )
)

register_scheme(
    SchemeInfo(
        name="casted",
        description="error detection, adaptive BUG placement",
        replicates=True,
        check_placement="pre-consumer",
        cluster_policy="adaptive",
        min_clusters=2,
        uses_delay=True,
        make_assignment=_casted_assignment,
    )
)
