"""Detection-triggered recovery (extension beyond the paper).

CASTED detects transient errors; it does not recover from them.  The paper's
related work (§V) surveys the standard answer — checkpoint/restart (SRTR,
CRTR) or process-restart (PLR) — and transient faults strike *once* by
definition (§I), so the simplest sound recovery is: on detection, roll back
to the last checkpoint and re-execute.  With the sphere of replication
limited to the processor (§III-B), memory is protected by ECC and every
checked store was verified before commit, so program start is always a
valid checkpoint and restart is correct.

:class:`RecoveringExecutor` wraps the interpreter with that policy and
:func:`run_recovery_campaign` extends the fault-injection methodology with
it: *detected* outcomes become *recovered* (plus the re-execution cost),
turning the paper's coverage metric into an availability metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimError
from repro.faults.classify import Outcome, classify
from repro.faults.injector import FaultInjector
from repro.faults.models import DEFAULT_FAULT_MODEL
from repro.ir.interp import ExitKind, FaultSpec, Interpreter, RunResult
from repro.ir.program import Program
from repro.obs.progress import ProgressCallback, ProgressTracker
from repro.parallel import SHARD_TRIALS, plan_shards
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class RecoveryResult:
    """One run under the restart policy."""

    final: RunResult
    attempts: int
    total_dyn_instructions: int

    @property
    def recovered(self) -> bool:
        return self.attempts > 1 and self.final.kind is ExitKind.OK


class RecoveringExecutor:
    """Re-execute on detection, up to ``max_attempts`` times.

    ``fault_schedule`` maps the attempt number to the faults injected during
    that attempt — attempt 1 gets the trial's faults; re-executions run
    fault-free (a transient fault does not repeat), unless the caller
    supplies faults for later attempts to model back-to-back strikes.
    """

    def __init__(
        self,
        program: Program,
        mem_words: int | None = None,
        frame_words: int = 0,
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise SimError("max_attempts must be >= 1")
        self.interp = Interpreter(program, mem_words=mem_words, frame_words=frame_words)
        self.max_attempts = max_attempts

    def run(
        self,
        faults: tuple[FaultSpec, ...] = (),
        max_steps: int | None = None,
        fault_schedule: dict[int, tuple[FaultSpec, ...]] | None = None,
    ) -> RecoveryResult:
        schedule = dict(fault_schedule or {})
        schedule.setdefault(1, faults)
        total_dyn = 0
        result: RunResult | None = None
        for attempt in range(1, self.max_attempts + 1):
            result = self.interp.run(
                faults=schedule.get(attempt, ()), max_steps=max_steps
            )
            total_dyn += result.dyn_instructions
            if result.kind is not ExitKind.DETECTED:
                return RecoveryResult(result, attempt, total_dyn)
        assert result is not None
        return RecoveryResult(result, self.max_attempts, total_dyn)


@dataclass
class RecoveryCampaignResult:
    """Fault campaign under the restart policy."""

    trials: int
    counts: dict[str, int] = field(default_factory=dict)
    recovery_instructions: int = 0  # extra dyn instructions spent re-executing
    golden_dyn: int = 0

    def fraction(self, key: str) -> float:
        return self.counts.get(key, 0) / self.trials if self.trials else 0.0

    @property
    def correct_completion_rate(self) -> float:
        """Runs that finished with the right answer (benign or recovered)."""
        return self.fraction(Outcome.BENIGN.value) + self.fraction("recovered")

    @property
    def recovery_overhead(self) -> float:
        """Mean re-execution cost per trial, in golden-run units."""
        if not self.trials or not self.golden_dyn:
            return 0.0
        return self.recovery_instructions / (self.trials * self.golden_dyn)


def run_recovery_campaign(
    program: Program,
    trials: int,
    seed: int,
    mem_words: int | None = None,
    frame_words: int = 0,
    reference_dyn: int | None = None,
    max_attempts: int = 3,
    fault_model: str = DEFAULT_FAULT_MODEL,
    progress: ProgressCallback | None = None,
    heartbeat: int = 25,
) -> RecoveryCampaignResult:
    """The §IV-C methodology with restart-on-detection added.

    Outcomes: ``benign`` / ``recovered`` / ``exception`` / ``data-corrupt``
    / ``timeout`` / ``unrecovered`` (detection fired on every attempt —
    impossible for genuinely transient faults, present for completeness).

    Trials are sharded exactly like :meth:`FaultInjector.run_campaign`:
    the budget is split by :func:`repro.parallel.plan_shards` and every
    shard draws from its own ``(seed, shard_index)`` RNG stream, so results
    are reproducible shard by shard and independent of any future executor
    layout.  ``progress`` receives a heartbeat every ``heartbeat`` trials.
    """
    injector = FaultInjector(
        program, mem_words=mem_words, frame_words=frame_words,
        fault_model=fault_model,
    )
    recoverer = RecoveringExecutor(
        program,
        mem_words=mem_words,
        frame_words=frame_words,
        max_attempts=max_attempts,
    )
    golden = injector.golden
    tracker = ProgressTracker(trials, progress, every=heartbeat)
    counts: dict[str, int] = {}
    extra_dyn = 0

    for shard_index, shard_trials in enumerate(plan_shards(trials, SHARD_TRIALS)):
        rng = make_rng(seed, "recovery-campaign", shard_index)
        for _ in range(shard_trials):
            faults = injector.faults_for_trial(rng, reference_dyn)
            rec = recoverer.run(faults=faults, max_steps=injector.max_steps)
            if rec.attempts > 1:
                extra_dyn += rec.total_dyn_instructions - rec.final.dyn_instructions
            if rec.final.kind is ExitKind.DETECTED:
                key = "unrecovered"
            elif rec.recovered:
                key = (
                    "recovered"
                    if classify(golden, rec.final) is Outcome.BENIGN
                    else Outcome.SDC.value
                )
            else:
                key = classify(golden, rec.final).value
            counts[key] = counts.get(key, 0) + 1
            tracker.step(dict(counts))

    return RecoveryCampaignResult(
        trials=trials,
        counts=counts,
        recovery_instructions=extra_dyn,
        golden_dyn=golden.dyn_instructions,
    )
