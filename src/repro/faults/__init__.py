"""Monte-Carlo transient-fault injection (paper §IV-C)."""

from repro.faults.checkpoint import CampaignCheckpoint, CheckpointError
from repro.faults.classify import Outcome, classify, detection_latency
from repro.faults.injector import (
    CampaignResult,
    FaultInjector,
    ShardResult,
    run_campaign,
)
from repro.faults.models import (
    DEFAULT_FAULT_MODEL,
    FAULT_MODELS,
    FaultModel,
    fault_model_names,
    get_fault_model,
)

__all__ = [
    "Outcome",
    "classify",
    "detection_latency",
    "FaultInjector",
    "CampaignResult",
    "ShardResult",
    "run_campaign",
    "CampaignCheckpoint",
    "CheckpointError",
    "FaultModel",
    "FAULT_MODELS",
    "DEFAULT_FAULT_MODEL",
    "fault_model_names",
    "get_fault_model",
]
