"""Monte-Carlo transient-fault injection (paper §IV-C)."""

from repro.faults.classify import Outcome, classify
from repro.faults.injector import (
    CampaignResult,
    FaultInjector,
    run_campaign,
)

__all__ = ["Outcome", "classify", "FaultInjector", "CampaignResult", "run_campaign"]
