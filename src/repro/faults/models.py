"""Pluggable fault models for the Monte-Carlo campaigns.

The paper's §IV-C evaluation flips a single bit in an instruction's output
register.  That is one point in a much larger SEU/SET design space: the
software-fault-injection literature (Azambuja et al.; RepTFD) shows that
coverage claims shift dramatically under control-flow and memory fault
models, so the campaign driver accepts any model registered here:

``reg-bit`` (default)
    The paper's model, bit-for-bit: one flip in the output register of a
    uniformly sampled output-producing dynamic instruction.  Its sampling
    path (and therefore its RNG stream) is **frozen** — default campaigns
    must reproduce historical results for a given seed.
``burst``
    Same sites, but 2–4 *adjacent* bits flip at once (a multi-bit upset
    from a single strike).
``cf``
    Control-flow corruption: a uniformly sampled dynamic branch takes the
    other target; a sampled jump is redirected to a random other block.
``mem``
    A bit flip in a uniformly sampled data-memory word at a uniformly
    sampled point of execution (the sphere of replication normally assumes
    ECC memory — this model measures what happens without it).
``opcode``
    The result of a sampled output-producing instruction is recomputed
    with a different legal operation over the same source values
    (:data:`repro.ir.interp.ALT_OPS`).

A model is an object with ``prepare(injector)`` (build per-binary tables
once, after the golden profiling run) and ``sample(injector, rng) ->
FaultSpec``.  Models must draw from ``rng`` deterministically — campaign
reproducibility and checkpoint/resume both rely on a trial's faults being a
pure function of the (seed, shard) RNG stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimError
from repro.ir.interp import ALT_OPS, FaultSpec
from repro.isa.opcodes import Opcode

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.faults.injector import FaultInjector

#: Registry of fault-model classes keyed by their public name.
FAULT_MODELS: dict[str, type["FaultModel"]] = {}

#: The model every campaign uses unless told otherwise.
DEFAULT_FAULT_MODEL = "reg-bit"


def register(cls: type["FaultModel"]) -> type["FaultModel"]:
    """Class decorator: add a model to :data:`FAULT_MODELS` by its name."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no name")
    FAULT_MODELS[cls.name] = cls
    return cls


def fault_model_names() -> list[str]:
    """Registered model names, default first, then alphabetical."""
    rest = sorted(n for n in FAULT_MODELS if n != DEFAULT_FAULT_MODEL)
    return [DEFAULT_FAULT_MODEL, *rest]


def get_fault_model(name: str) -> "FaultModel":
    """Instantiate the model registered as ``name``."""
    try:
        cls = FAULT_MODELS[name]
    except KeyError:
        raise SimError(
            f"unknown fault model {name!r} "
            f"(available: {', '.join(fault_model_names())})"
        ) from None
    return cls()


class FaultModel:
    """Base class: a way to turn an RNG stream into :class:`FaultSpec`\\ s."""

    #: Public name (the CLI's ``--fault-model`` value).
    name = ""
    #: One-line description for docs and ``--help``.
    description = ""

    def prepare(self, injector: FaultInjector) -> None:
        """Build per-binary tables (called once, after profiling)."""

    def sample(self, injector: FaultInjector, rng: np.random.Generator) -> FaultSpec:
        raise NotImplementedError


@register
class RegBitModel(FaultModel):
    """The paper's §IV-C model — delegates to the injector's frozen sampler."""

    name = "reg-bit"
    description = "single bit flip in a sampled instruction's output register"

    def sample(self, injector: FaultInjector, rng: np.random.Generator) -> FaultSpec:
        # The legacy sampling path: do not touch — its RNG draw sequence is
        # part of the reproducibility contract for default campaigns.
        return injector.sample_fault(rng)


@register
class BurstModel(FaultModel):
    """2–4 adjacent bits flip in the sampled output register."""

    name = "burst"
    description = "2-4 adjacent-bit burst in a sampled output register"

    def sample(self, injector: FaultInjector, rng: np.random.Generator) -> FaultSpec:
        base = injector.sample_fault(rng)
        width = int(rng.integers(2, 5))
        return FaultSpec(
            dyn_index=base.dyn_index,
            bit=min(base.bit, 64 - width),
            width=width,
        )


@register
class ControlFlowModel(FaultModel):
    """A sampled dynamic branch/jump transfers control to the wrong block."""

    name = "cf"
    description = "invert a sampled branch decision / redirect a sampled jump"

    def prepare(self, injector: FaultInjector) -> None:
        program = injector.program
        func = program.main
        self._labels = sorted(b.label for b in func.blocks())
        # Per-block static tables: positions of control transfers, and
        # whether each is a jump (needs a redirect target) or a branch.
        block_cf_positions: dict[str, list[int]] = {}
        block_cf_is_jmp: dict[str, list[bool]] = {}
        block_cf_target: dict[str, list[str]] = {}
        for block in func.blocks():
            positions: list[int] = []
            is_jmp: list[bool] = []
            target: list[str] = []
            for i, insn in enumerate(block.instructions):
                if insn.opcode in (Opcode.BRT, Opcode.BRF):
                    positions.append(i)
                    is_jmp.append(False)
                    target.append("")
                elif insn.opcode is Opcode.JMP:
                    positions.append(i)
                    is_jmp.append(True)
                    target.append(insn.targets[0])
            block_cf_positions[block.label] = positions
            block_cf_is_jmp[block.label] = is_jmp
            block_cf_target[block.label] = target
        self._positions = block_cf_positions
        self._is_jmp = block_cf_is_jmp
        self._target = block_cf_target
        # Per-visit cumulative count of control transfers over the trace.
        trace = injector.golden.block_trace
        counts = np.array(
            [len(block_cf_positions[lb]) for lb in trace], dtype=np.int64
        )
        self._cf_cum = np.cumsum(counts)
        self.n_cf_sites = int(self._cf_cum[-1]) if len(trace) else 0
        if self.n_cf_sites == 0:
            raise SimError("program executes no branches — cf model unusable")

    def sample(self, injector: FaultInjector, rng: np.random.Generator) -> FaultSpec:
        site = int(rng.integers(self.n_cf_sites))
        visit = int(np.searchsorted(self._cf_cum, site, side="right"))
        label = injector.golden.block_trace[visit]
        prior = int(self._cf_cum[visit - 1]) if visit else 0
        within = site - prior
        pos = self._positions[label][within]
        dyn_index = int(injector._visit_dyn_start[visit]) + pos
        arg: str | None = None
        if self._is_jmp[label][within]:
            # Redirect the jump to a uniformly sampled *other* block.
            actual = self._target[label][within]
            others = [lb for lb in self._labels if lb != actual]
            arg = others[int(rng.integers(len(others)))] if others else actual
        return FaultSpec(dyn_index=dyn_index, kind="cf", arg=arg)


@register
class MemoryModel(FaultModel):
    """A bit flip in a sampled data-memory word at a sampled time."""

    name = "mem"
    description = "single bit flip in a sampled data-memory word"

    def prepare(self, injector: FaultInjector) -> None:
        self._mem_words = injector.interp.mem_words
        if self._mem_words <= 1:
            raise SimError("program has no addressable data memory")

    def sample(self, injector: FaultInjector, rng: np.random.Generator) -> FaultSpec:
        dyn_index = int(rng.integers(max(1, injector.golden.dyn_instructions)))
        addr = int(rng.integers(1, self._mem_words))
        bit = int(rng.integers(64))
        return FaultSpec(dyn_index=dyn_index, bit=bit, kind="mem", arg=addr)


@register
class OpcodeModel(FaultModel):
    """A sampled instruction's result is recomputed with another legal op."""

    name = "opcode"
    description = "replace a sampled instruction's result with another op's"

    def sample(self, injector: FaultInjector, rng: np.random.Generator) -> FaultSpec:
        base = injector.sample_fault(rng)
        alt = int(rng.integers(len(ALT_OPS)))
        return FaultSpec(
            dyn_index=base.dyn_index, bit=base.bit, kind="opcode", arg=alt
        )
